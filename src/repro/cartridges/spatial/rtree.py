"""An R-tree (Guttman 1984) — the paper's canonical example of a
specialized spatial structure ("efficient processing of the Overlaps
operator requires a specialized indexing structure such as R-trees").

Used by the E7 ablation: RtreeIndexType serves the same ``Sdo_Relate``
operator as the tile index, demonstrating that the indexing algorithm
can change behind an indextype without any change to end-user queries.

Quadratic-split insertion; deletion reinserts orphaned entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle (the R-tree's bounding-box key)."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def area(self) -> float:
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def union(self, other: "Rect") -> "Rect":
        return Rect(min(self.xmin, other.xmin), min(self.ymin, other.ymin),
                    max(self.xmax, other.xmax), max(self.ymax, other.ymax))

    def enlargement(self, other: "Rect") -> float:
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return not (self.xmax < other.xmin or other.xmax < self.xmin
                    or self.ymax < other.ymin or other.ymax < self.ymin)

    @classmethod
    def from_box(cls, box: Tuple[float, float, float, float]) -> "Rect":
        return cls(*box)


class _Node:
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        # leaf entries: (Rect, payload); interior entries: (Rect, _Node)
        self.entries: List[Tuple[Rect, Any]] = []
        self.parent: Optional["_Node"] = None

    def mbr(self) -> Rect:
        rect = self.entries[0][0]
        for r, __ in self.entries[1:]:
            rect = rect.union(r)
        return rect


class RTree:
    """R-tree over (Rect, payload) entries."""

    def __init__(self, max_entries: int = 8):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self._root = _Node(leaf=True)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- queries -----------------------------------------------------------

    def search(self, rect: Rect) -> Iterator[Any]:
        """Yield payloads whose rectangles intersect ``rect``."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry_rect, child in node.entries:
                if not entry_rect.intersects(rect):
                    continue
                if node.leaf:
                    yield child
                else:
                    stack.append(child)

    def items(self) -> Iterator[Tuple[Rect, Any]]:
        """Yield every (rect, payload) entry."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry_rect, child in node.entries:
                if node.leaf:
                    yield entry_rect, child
                else:
                    stack.append(child)

    @property
    def height(self) -> int:
        """Levels from root to leaves."""
        height = 1
        node = self._root
        while not node.leaf:
            node = node.entries[0][1]
            height += 1
        return height

    # -- bulk loading ------------------------------------------------------

    def bulk_load(self, entries: List[Tuple[Rect, Any]]) -> None:
        """Replace the tree's contents via Sort-Tile-Recursive packing.

        STR (Leutenegger et al. 1997): sort entries by x-center, cut
        into vertical slices of ~sqrt(n/M) tiles, sort each slice by
        y-center, and pack runs of ``max_entries`` into leaves; repeat
        on the leaf MBRs to build each interior level.  Produces
        near-full nodes with low overlap, with no per-entry descent or
        quadratic splits.
        """
        self._count = len(entries)
        if not entries:
            self._root = _Node(leaf=True)
            return
        level = self._str_pack(list(entries), leaf=True)
        while len(level) > 1:
            parents = self._str_pack([(n.mbr(), n) for n in level],
                                     leaf=False)
            level = parents
        self._root = level[0]
        self._root.parent = None

    def _str_pack(self, entries: List[Tuple[Rect, Any]],
                  leaf: bool) -> List[_Node]:
        """Pack (rect, child) entries into one level of nodes via STR."""
        cap = self.max_entries
        node_count = math.ceil(len(entries) / cap)
        slices = max(1, math.ceil(math.sqrt(node_count)))
        per_slice = slices * cap
        entries.sort(key=lambda e: e[0].xmin + e[0].xmax)
        nodes: List[_Node] = []
        for start in range(0, len(entries), per_slice):
            strip = entries[start:start + per_slice]
            strip.sort(key=lambda e: e[0].ymin + e[0].ymax)
            for tile_start in range(0, len(strip), cap):
                node = _Node(leaf=leaf)
                node.entries = strip[tile_start:tile_start + cap]
                if not leaf:
                    for __, child in node.entries:
                        child.parent = node
                nodes.append(node)
        return nodes

    # -- insertion --------------------------------------------------------------

    def insert(self, rect: Rect, payload: Any) -> None:
        """Insert an entry, splitting nodes quadratically on overflow."""
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append((rect, payload))
        self._count += 1
        self._handle_overflow(leaf)
        self._refresh_mbrs(leaf)

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.leaf:
            best = min(node.entries,
                       key=lambda e: (e[0].enlargement(rect), e[0].area()))
            node = best[1]
        return node

    def _handle_overflow(self, node: _Node) -> None:
        while len(node.entries) > self.max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                new_root.entries = [(node.mbr(), node),
                                    (sibling.mbr(), sibling)]
                node.parent = sibling.parent = new_root
                self._root = new_root
                return
            parent.entries = [(r, c) for r, c in parent.entries
                              if c is not node]
            parent.entries.append((node.mbr(), node))
            parent.entries.append((sibling.mbr(), sibling))
            sibling.parent = parent
            self._refresh_mbrs(parent)
            node = parent

    def _split(self, node: _Node) -> _Node:
        # Guttman quadratic split: pick the two seeds wasting the most
        # area together, then assign entries by least enlargement.
        entries = node.entries
        worst, seeds = -1.0, (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (entries[i][0].union(entries[j][0]).area()
                         - entries[i][0].area() - entries[j][0].area())
                if waste > worst:
                    worst, seeds = waste, (i, j)
        i, j = seeds
        group_a = [entries[i]]
        group_b = [entries[j]]
        rest = [e for k, e in enumerate(entries) if k not in (i, j)]
        rect_a, rect_b = entries[i][0], entries[j][0]
        for entry in rest:
            if len(group_a) + len(rest) <= self.min_entries:
                group_a.append(entry)
                continue
            if len(group_b) + len(rest) <= self.min_entries:
                group_b.append(entry)
                continue
            if rect_a.enlargement(entry[0]) <= rect_b.enlargement(entry[0]):
                group_a.append(entry)
                rect_a = rect_a.union(entry[0])
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry[0])
        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        if not node.leaf:
            for __, child in group_b:
                child.parent = sibling
        return sibling

    def _refresh_mbrs(self, node: _Node) -> None:
        # AdjustTree: recompute child MBRs on the path back to the root
        while node.parent is not None:
            parent = node.parent
            parent.entries = [(child.mbr(), child)
                              for __, child in parent.entries
                              if child.entries]
            node = parent

    # -- deletion ------------------------------------------------------------------

    def delete(self, rect: Rect, payload: Any) -> bool:
        """Remove one entry matching (rect, payload); True if found."""
        leaf = self._find_leaf(self._root, rect, payload)
        if leaf is None:
            return False
        leaf.entries = [(r, p) for r, p in leaf.entries
                        if not (r == rect and p == payload)]
        self._count -= 1
        self._condense(leaf)
        self._recompute_interior(self._root)
        if not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]
            self._root.parent = None
        return True

    def _recompute_interior(self, node: _Node) -> None:
        if node.leaf:
            return
        rebuilt = []
        for __, child in node.entries:
            self._recompute_interior(child)
            if child.entries:
                rebuilt.append((child.mbr(), child))
        node.entries = rebuilt

    def _find_leaf(self, node: _Node, rect: Rect,
                   payload: Any) -> Optional[_Node]:
        if node.leaf:
            for r, p in node.entries:
                if r == rect and p == payload:
                    return node
            return None
        for r, child in node.entries:
            if r.intersects(rect):
                found = self._find_leaf(child, rect, payload)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: List[Tuple[Rect, Any]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries = [(r, c) for r, c in parent.entries
                                  if c is not node]
                if node.leaf:
                    orphans.extend(node.entries)
                else:
                    stack = [node]
                    while stack:
                        inner = stack.pop()
                        if inner.leaf:
                            orphans.extend(inner.entries)
                        else:
                            stack.extend(c for __, c in inner.entries)
            else:
                parent.entries = [(c.mbr() if c is node else r, c)
                                  for r, c in parent.entries]
            node = parent
        for rect, payload in orphans:
            self._count -= 1
            self.insert(rect, payload)
