"""Linear-quadtree tessellation with z-order (Morton) tile codes.

"The spatial index consists of a collection of tiles (unit of space)
corresponding to every spatial object" (§3.2.2).  Space is the square
``[0, WORLD_SIZE)²``; a geometry is covered by quadtree tiles down to
``MAX_LEVEL``.  Each covering tile maps to the Morton-code *range* of
the finest-level cells it spans — the ``(sdo_code, sdo_maxcode)`` pair
of the paper's legacy schema — and carries the ``grpcode`` of its
``GROUP_LEVEL`` ancestor, so two tiles can only interact when their
group codes are equal (the legacy query's ``r.grpcode = p.grpcode``
equi-join).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cartridges.spatial.geometry import (
    Relation, bounding_box, boxes_interact, relate)
from repro.errors import ExecutionError
from repro.types.objects import ObjectValue

#: Side length of the (square) indexed world.
WORLD_SIZE = 1024.0
#: Finest tessellation level (2^MAX_LEVEL cells per side).
MAX_LEVEL = 5
#: Level whose tiles define the group code.
GROUP_LEVEL = 2


@dataclass(frozen=True)
class TileRange:
    """One covering tile as a Morton range at MAX_LEVEL granularity."""

    grpcode: int
    code: int      # first MAX_LEVEL Morton code covered
    maxcode: int   # last MAX_LEVEL Morton code covered

    def intersects(self, other: "TileRange") -> bool:
        """Range intersection — the paper's BETWEEN-OR-BETWEEN test."""
        return (self.grpcode == other.grpcode
                and self.code <= other.maxcode
                and other.code <= self.maxcode)


def morton(x: int, y: int, level: int) -> int:
    """Interleave the low ``level`` bits of x (even) and y (odd)."""
    code = 0
    for bit in range(level):
        code |= ((x >> bit) & 1) << (2 * bit)
        code |= ((y >> bit) & 1) << (2 * bit + 1)
    return code


def _tile_box(level: int, tx: int, ty: int) -> Tuple[float, float, float, float]:
    size = WORLD_SIZE / (1 << level)
    return tx * size, ty * size, (tx + 1) * size, (ty + 1) * size


def _tile_polygon_coords(box: Tuple[float, float, float, float]):
    xmin, ymin, xmax, ymax = box
    return [(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)]


def _range_for_tile(level: int, tx: int, ty: int) -> Tuple[int, int]:
    shift = MAX_LEVEL - level
    base = morton(tx, ty, level) << (2 * shift)
    return base, base + (1 << (2 * shift)) - 1


def _grpcode_for(code: int) -> int:
    return code >> (2 * (MAX_LEVEL - GROUP_LEVEL))


def tessellate(geometry: ObjectValue,
               max_level: int = MAX_LEVEL) -> List[TileRange]:
    """Quadtree cover of ``geometry`` as a list of tile ranges.

    Recursion emits a tile when it is entirely interior to the geometry
    or when ``max_level`` is reached; tiles above GROUP_LEVEL are always
    subdivided so every emitted range lies within one group.
    """
    if not 0 < max_level <= MAX_LEVEL:
        raise ExecutionError(f"max_level must be in (0, {MAX_LEVEL}]")
    box = bounding_box(geometry)
    if box[0] < 0 or box[1] < 0 or box[2] > WORLD_SIZE or box[3] > WORLD_SIZE:
        raise ExecutionError(
            f"geometry bbox {box} lies outside the indexed world "
            f"[0, {WORLD_SIZE})^2")
    out: List[TileRange] = []
    _cover(geometry, 0, 0, 0, max_level, out)
    return out


def _cover(geometry: ObjectValue, level: int, tx: int, ty: int,
           max_level: int, out: List[TileRange]) -> None:
    tile_box = _tile_box(level, tx, ty)
    if not boxes_interact(tile_box, bounding_box(geometry)):
        return
    from repro.cartridges.spatial.geometry import (
        GTYPE_POLYGON, make_polygon)
    tile_geom = geometry.object_type.new(
        GTYPE_POLYGON,
        tuple(c for p in _tile_polygon_coords(tile_box) for c in p))
    relation = relate(tile_geom, geometry)
    if relation is Relation.DISJOINT:
        return
    fully_inside = relation in (Relation.INSIDE, Relation.EQUAL)
    if (fully_inside and level >= GROUP_LEVEL) or level == max_level:
        lo, hi = _range_for_tile(level, tx, ty)
        out.append(TileRange(grpcode=_grpcode_for(lo), code=lo, maxcode=hi))
        return
    for dx in (0, 1):
        for dy in (0, 1):
            _cover(geometry, level + 1, 2 * tx + dx, 2 * ty + dy,
                   max_level, out)


def ranges_interact(a: List[TileRange], b: List[TileRange]) -> bool:
    """Primary filter: do any tile ranges of the two covers intersect?"""
    by_group = {}
    for r in a:
        by_group.setdefault(r.grpcode, []).append(r)
    for r in b:
        for other in by_group.get(r.grpcode, ()):
            if r.intersects(other):
                return True
    return False
