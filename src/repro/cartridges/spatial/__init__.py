"""Spatial cartridge (§3.2.2): tile-indexed geometries and Sdo_Relate.

"The spatial index consists of a collection of tiles (unit of space)
corresponding to every spatial object, and is stored in an Oracle
table."  ``Sdo_Relate`` evaluates in two phases: a primary filter over
tile ranges, then an exact geometric filter over the candidates.

``install(db)`` registers the SDO_GEOMETRY object type, constructor
functions, the Sdo_Relate operator, and SpatialIndexType;
``install_rtree(db)`` registers RtreeIndexType over the *same* operator
(the E7 ablation: "changing the underlying spatial indexing algorithms
without requiring the end users to change their queries").
"""

from repro.cartridges.spatial.geometry import (
    Relation, bounding_box, geometry_coords, make_point, make_polygon,
    make_rect, relate)
from repro.cartridges.spatial.tiling import (
    GROUP_LEVEL, MAX_LEVEL, WORLD_SIZE, TileRange, tessellate)
from repro.cartridges.spatial.rtree import RTree, Rect
from repro.cartridges.spatial.indextype import (
    SpatialIndexMethods, SpatialStatsMethods, RtreeIndexMethods,
    install, install_rtree, sdo_relate_functional)
from repro.cartridges.spatial.legacy import LegacySpatialLayer, install_legacy

__all__ = [
    "Relation",
    "relate",
    "make_point",
    "make_rect",
    "make_polygon",
    "bounding_box",
    "geometry_coords",
    "tessellate",
    "TileRange",
    "WORLD_SIZE",
    "MAX_LEVEL",
    "GROUP_LEVEL",
    "RTree",
    "Rect",
    "SpatialIndexMethods",
    "SpatialStatsMethods",
    "RtreeIndexMethods",
    "install",
    "install_rtree",
    "sdo_relate_functional",
    "LegacySpatialLayer",
    "install_legacy",
]
