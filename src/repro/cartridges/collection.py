"""Collection cartridge: indexing VARRAY / nested-table columns (§3.1).

"In Oracle8i, collection type columns cannot be indexed using built-in
indexing schemes.  Consider the operator Contains(VARRAY, elem_value)
which returns TRUE if the VARRAY contains an element with the value
elem_value.  For such an operator, the user can provide both a
functional implementation as well as an indextype based implementation
and use it for processing queries such as:

    SELECT * FROM Employees WHERE Contains(Hobbies, 'Skiing');"

This module is that example, end to end: the ``Coll_Contains`` operator
(named to avoid colliding with the text cartridge's Contains), an
element inverted index stored in an IOT, and the usual implicit
maintenance.  It also indexes element *counts*, supporting the
ancillary ``Coll_Count(label)`` operator (occurrences of the element in
the matched collection).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.core.odci import (
    FetchResult, IndexMethods, ODCIEnv, ODCIIndexInfo, ODCIPredInfo,
    ODCIQueryInfo)
from repro.core.scan_context import PrecomputedScan
from repro.core.stats import IndexCost, StatsMethods
from repro.errors import ODCIError
from repro.types.objects import iter_collection
from repro.types.values import is_null

#: Per-call optimizer cost of the functional implementation.
FUNCTIONAL_COST = 0.05


def coll_contains(collection: Any, element: Any) -> int:
    """Functional implementation: occurrences of ``element`` (0 = absent)."""
    if is_null(collection) or is_null(element):
        return 0
    return sum(1 for item in iter_collection(collection)
               if not is_null(item) and item == element)


def _elements_table(ia: ODCIIndexInfo) -> str:
    return f"{ia.index_name.lower()}_elems"


def _element_key(element: Any) -> str:
    """Normalize an element to the index's VARCHAR2 key space."""
    return repr(element) if not isinstance(element, str) else element


class CollectionIndexMethods(IndexMethods):
    """ODCIIndex routines of CollectionIndexType.

    Storage: an IOT ``(elem, rid, occurrences)`` keyed on (elem, rid) —
    the same shape as the text cartridge's inverted index, with
    collection elements instead of tokens.
    """

    def index_create(self, ia: ODCIIndexInfo, parameters: str,
                     env: ODCIEnv) -> None:
        table = _elements_table(ia)
        env.callback.execute(
            f"CREATE TABLE {table} (elem VARCHAR2(256), rid ROWID,"
            " occurrences INTEGER, PRIMARY KEY (elem, rid))"
            " ORGANIZATION INDEX")
        column = ia.column_names[0]
        rows = env.callback.query(
            f"SELECT rowid, {column} FROM {ia.table_name}")
        entries: List[List[Any]] = []
        for rid, collection in rows:
            for key, count in self._element_counts(collection).items():
                entries.append([key, rid, count])
        if entries:
            env.callback.insert_rows(table, entries)

    @staticmethod
    def _element_counts(collection: Any) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        if is_null(collection):
            return counts
        for item in iter_collection(collection):
            if is_null(item):
                continue
            key = _element_key(item)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def index_drop(self, ia: ODCIIndexInfo, env: ODCIEnv) -> None:
        env.callback.execute(f"DROP TABLE {_elements_table(ia)}")

    def index_truncate(self, ia: ODCIIndexInfo, env: ODCIEnv) -> None:
        env.callback.execute(f"TRUNCATE TABLE {_elements_table(ia)}")

    def index_insert(self, ia: ODCIIndexInfo, rowid: Any,
                     new_values: Sequence[Any], env: ODCIEnv) -> None:
        counts = self._element_counts(new_values[0])
        if counts:
            env.callback.insert_rows(
                _elements_table(ia),
                [[key, rowid, count] for key, count in counts.items()])

    def index_delete(self, ia: ODCIIndexInfo, rowid: Any,
                     old_values: Sequence[Any], env: ODCIEnv) -> None:
        env.callback.execute(
            f"DELETE FROM {_elements_table(ia)} WHERE rid = :1", [rowid])

    def index_start(self, ia: ODCIIndexInfo, op_info: ODCIPredInfo,
                    query_info: ODCIQueryInfo, env: ODCIEnv) -> Any:
        if not op_info.operator_args:
            raise ODCIError("ODCIIndexStart",
                            "Coll_Contains requires an element argument")
        element = op_info.operator_args[0]
        if is_null(element):
            return PrecomputedScan([])
        rows = env.callback.query(
            f"SELECT rid, occurrences FROM {_elements_table(ia)}"
            " WHERE elem = :1", [_element_key(element)])
        accepted = sorted(
            (rid, count) for rid, count in rows
            if op_info.bound_accepts(count))
        if query_info.ancillary_label is not None:
            scan = PrecomputedScan(accepted)
            scan.want_aux = True  # type: ignore[attr-defined]
        else:
            scan = PrecomputedScan([rid for rid, __ in accepted])
        return scan

    def index_fetch(self, context: Any, nrows: int,
                    env: ODCIEnv) -> FetchResult:
        batch = context.next_batch(nrows)
        if getattr(context, "want_aux", False):
            return FetchResult(rowids=[rid for rid, __ in batch],
                               aux=[count for __, count in batch],
                               done=len(batch) < nrows)
        return FetchResult(rowids=list(batch), done=len(batch) < nrows)

    def index_close(self, context: Any, env: ODCIEnv) -> None:
        context.close()


class CollectionStatsMethods(StatsMethods):
    """ODCIStats routines for CollectionIndexType."""

    def selectivity(self, pred_info: ODCIPredInfo, args: Sequence[Any],
                    env: ODCIEnv) -> float:
        return 0.02  # element membership is usually selective

    def index_cost(self, ia: ODCIIndexInfo, pred_info: ODCIPredInfo,
                   selectivity: float, args: Sequence[Any],
                   env: ODCIEnv) -> IndexCost:
        return IndexCost(io_cost=2.0, cpu_cost=selectivity * 10)


def install(db) -> None:
    """Register the collection cartridge."""
    if db.catalog.has_indextype("CollectionIndexType"):
        return
    db.create_function("CollContainsFunc", coll_contains,
                       cost=FUNCTIONAL_COST)
    db.register_methods("CollectionIndexMethods", CollectionIndexMethods)
    db.register_stats_type("CollectionStatsMethods", CollectionStatsMethods)
    db.execute("CREATE OPERATOR Coll_Contains "
               "BINDING (ANY, ANY) RETURN NUMBER USING CollContainsFunc")
    db.execute("CREATE OPERATOR Coll_Count ANCILLARY TO Coll_Contains")
    db.execute("CREATE INDEXTYPE CollectionIndexType "
               "FOR Coll_Contains(ANY, ANY) "
               "USING CollectionIndexMethods")
    db.execute("ASSOCIATE STATISTICS WITH INDEXTYPES CollectionIndexType "
               "USING CollectionStatsMethods")
