"""The durability manager: WAL policy, fuzzy checkpoints, group commit.

This is the seam between the in-memory engine and the durable state on
disk (``wal.log`` + ``pages.db`` + ``catalog.pkl`` under the engine's
``data_dir``).  It owns:

* **Row logging.**  Every DML write point calls :meth:`log_row` /
  :meth:`log_bulk` *after* mutating storage; the record carries redo and
  undo images and chains into the transaction's ``prev`` list.  Undo
  closures are wrapped (:meth:`wrap_undo`) so rollback writes
  compensation records (CLRs) — statement rollback, full rollback, and
  restart undo all leave a redo-able trace, which is what makes
  recovery idempotent.

* **The WAL rule.**  Dirty pages are only made durable inside
  :meth:`checkpoint`, which flushes the log first.  The dirty-page
  table records a conservative ``rec_lsn`` for every page/IOT dirtied
  since the last checkpoint; the checkpoint record carries the DPT and
  active-transaction table so restart redo can start at the right LSN
  without quiescing writers (a fuzzy checkpoint).

* **Group commit.**  Commit records are made durable through the
  :class:`~repro.storage.wal.LogWriter`, batching fsyncs across
  sessions.  Read-only transactions never log and never fsync.

* **Log truncation.**  When a checkpoint finds no active transactions,
  everything is flushed and the log resets to a fresh generation (epoch
  + 1) whose first record is the checkpoint itself — undo information
  for in-flight transactions is never discarded.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import WALError
from repro.storage.pagestore import PageStore
from repro.storage.wal import (LogWriter, WriteAheadLog,
                               REC_ABORT, REC_CHECKPOINT, REC_CLR,
                               REC_COMMIT, REC_UPDATE)

__all__ = ["DurabilityManager"]

WAL_FILE = "wal.log"
PAGES_FILE = "pages.db"
CATALOG_FILE = "catalog.pkl"


class DurabilityManager:
    """Coordinates WAL, page store, and catalog snapshots for one engine."""

    def __init__(self, engine: Any, data_dir: str,
                 group_commit: bool = True,
                 fsync_delay: float = 0.0,
                 checkpoint_interval: int = 256,
                 event_hook: Optional[Callable[[str], None]] = None,
                 fault_plan: Any = None):
        self.engine = engine
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        self.group_commit = group_commit
        self.checkpoint_interval = checkpoint_interval
        self.event_hook = event_hook
        fault_check = fault_plan.check if fault_plan is not None else None
        self.wal = WriteAheadLog(os.path.join(data_dir, WAL_FILE),
                                 fsync_delay=fsync_delay,
                                 fault_check=fault_check,
                                 event_hook=event_hook)
        self.pages = PageStore(os.path.join(data_dir, PAGES_FILE),
                               fault_check=fault_check,
                               event_hook=event_hook)
        self.catalog_path = os.path.join(data_dir, CATALOG_FILE)
        self.log_writer = LogWriter(self.wal) if group_commit else None
        #: dirty-page table: ("page", seg, pno) | ("iot", seg) -> rec_lsn
        #: (conservative: <= the LSN of the first record that dirtied it)
        self._dpt: Dict[Tuple, int] = {}
        #: active-transaction table: txn_id -> last logged LSN
        self._att: Dict[int, int] = {}
        self._dpt_latch = threading.Lock()
        self._ckpt_latch = threading.RLock()
        self._commits_since_ckpt = 0
        self.closed = False

    # ------------------------------------------------------------------
    # dirty tracking (called by the buffer cache / log_row)
    # ------------------------------------------------------------------

    def note_dirty(self, key: Tuple[int, int]) -> None:
        """A heap page went dirty; remember where its redo must start."""
        entry = ("page", key[0], key[1])
        with self._dpt_latch:
            if entry not in self._dpt:
                self._dpt[entry] = self.wal.end_lsn

    def _note_iot_dirty(self, segment_id: int) -> None:
        entry = ("iot", segment_id)
        with self._dpt_latch:
            if entry not in self._dpt:
                self._dpt[entry] = self.wal.end_lsn

    def segment_dropped(self, segment_id: int) -> None:
        """DROP/TRUNCATE discarded a segment: durably tombstone it so its
        old page images cannot resurrect at the next recovery."""
        if self.closed:
            return
        with self._dpt_latch:
            for key in [k for k in self._dpt if k[1] == segment_id]:
                del self._dpt[key]
        self.pages.tombstone(segment_id)

    # ------------------------------------------------------------------
    # row logging (called by the DML layer, after mutating storage)
    # ------------------------------------------------------------------

    def log_row(self, txn: Any, table_key: str, storage: Any, op: str,
                rid: Any, old: Optional[List[Any]],
                new: Optional[List[Any]]) -> Optional[int]:
        """Append one row-change record; returns the txn's previous LSN
        (the ``undo_next`` target for a CLR compensating this record).

        ``rid`` is a :class:`~repro.storage.heap.RowId` for heap tables
        (physiological record: replay targets the slot) and ``None`` for
        IOTs (logical record: replay works on full rows, because IOT
        surrogate rowids do not survive a restart).
        """
        prev = txn.last_lsn
        payload = {"t": REC_UPDATE, "x": txn.txn_id, "tb": table_key,
                   "op": op, "rid": rid.sort_key if rid is not None else None,
                   "old": old, "new": new, "prev": prev}
        if rid is None:
            self._note_iot_dirty(storage.segment_id)
        lsn = self.wal.append(payload)
        txn.last_lsn = lsn
        txn.logged = True
        self._att[txn.txn_id] = lsn
        if rid is None:
            storage.stamp_lsn(lsn)
        else:
            storage.stamp_lsn(rid, lsn)
        return prev

    def log_bulk(self, txn: Any, table_key: str, storage: Any,
                 rows: List[List[Any]], rowids: Optional[List[Any]]
                 ) -> Optional[int]:
        """Append one record covering a whole direct-path load."""
        prev = txn.last_lsn
        rid_tuples = ([r.sort_key for r in rowids]
                      if rowids is not None else None)
        payload = {"t": REC_UPDATE, "x": txn.txn_id, "tb": table_key,
                   "op": "bulk_insert", "rid": None,
                   "old": None, "new": rows, "rids": rid_tuples,
                   "prev": prev}
        if rid_tuples is None:
            self._note_iot_dirty(storage.segment_id)
        lsn = self.wal.append(payload)
        txn.last_lsn = lsn
        txn.logged = True
        self._att[txn.txn_id] = lsn
        if rid_tuples is None:
            storage.stamp_lsn(lsn)
        else:
            for seg, page_no, __ in rid_tuples:
                page = self.engine.buffer.peek_page(seg, page_no)
                if page is not None and lsn > page.page_lsn:
                    page.page_lsn = lsn
        return prev

    def wrap_undo(self, action: Callable[[], None], txn: Any,
                  table_key: str, storage: Any, comp_op: str, rid: Any,
                  old: Optional[List[Any]], new: Optional[List[Any]],
                  undo_next: Optional[int]) -> Callable[[], None]:
        """Wrap an in-memory undo closure so running it also logs a CLR.

        The CLR encodes the *compensating* operation as a redo-able
        record (undo-of-insert logs a delete, and so on), chained via
        ``undo_next`` to the record before the one being undone — the
        ARIES trick that makes repeated undo skip already-compensated
        work.
        """
        def undo_with_clr():
            action()
            try:
                self.log_clr(txn, table_key, storage, comp_op, rid,
                             old, new, undo_next)
            except WALError:
                # the log is dead; in-memory undo still ran, and restart
                # recovery will undo from the surviving records
                pass
        return undo_with_clr

    def log_clr(self, txn: Any, table_key: str, storage: Any, comp_op: str,
                rid: Any, old: Optional[List[Any]],
                new: Optional[List[Any]],
                undo_next: Optional[int]) -> int:
        rid_t = rid.sort_key if rid is not None and hasattr(rid, "sort_key") \
            else rid
        payload = {"t": REC_CLR, "x": txn.txn_id, "tb": table_key,
                   "op": comp_op, "rid": rid_t, "old": old, "new": new,
                   "prev": txn.last_lsn, "un": undo_next}
        if rid_t is None and comp_op != "truncate":
            self._note_iot_dirty(storage.segment_id)
        lsn = self.wal.append(payload)
        txn.last_lsn = lsn
        txn.logged = True
        self._att[txn.txn_id] = lsn
        if comp_op != "truncate":
            if rid_t is None:
                storage.stamp_lsn(lsn)
            else:
                page = self.engine.buffer.peek_page(rid_t[0], rid_t[1])
                if page is not None and lsn > page.page_lsn:
                    page.page_lsn = lsn
        return lsn

    # ------------------------------------------------------------------
    # commit / abort
    # ------------------------------------------------------------------

    def commit(self, txn: Any) -> None:
        """Write and durably flush the commit record (the ack point)."""
        if self.wal.failed:
            raise WALError("write-ahead log has failed; the instance "
                           "cannot accept commits until restart")
        if not txn.logged:
            self._att.pop(txn.txn_id, None)
            return  # read-only: nothing to make durable, no fsync
        payload = {"t": REC_COMMIT, "x": txn.txn_id,
                   "scn": txn.commit_scn, "prev": txn.last_lsn}
        lsn = self.wal.append(payload)
        self.wal.stats.commit_records += 1
        self.wal.commit_flush(lsn)
        self._att.pop(txn.txn_id, None)
        self._commits_since_ckpt += 1
        if (self.checkpoint_interval
                and self._commits_since_ckpt >= self.checkpoint_interval):
            self.checkpoint(reason="auto")

    def abort(self, txn: Any) -> None:
        """Log the abort (undo already ran and logged its CLRs)."""
        self._att.pop(txn.txn_id, None)
        if not txn.logged or self.wal.failed:
            return
        try:
            self.wal.append({"t": REC_ABORT, "x": txn.txn_id,
                             "prev": txn.last_lsn})
        except WALError:
            pass  # a dead log already implies the txn will be undone

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self, reason: str = "manual") -> int:
        """Take a fuzzy checkpoint; returns the checkpoint record's LSN.

        Order matters: catalog snapshot → **log flush (the WAL rule)** →
        dirty page/IOT flush → page-store fsync → checkpoint record.
        With no active transactions everything is durable, so the log
        truncates into a new epoch whose first record is the checkpoint.
        """
        with self._ckpt_latch:
            if self.event_hook is not None:
                self.event_hook("checkpoint.begin")
            self._commits_since_ckpt = 0
            self._write_catalog_snapshot()
            self.wal.flush_all()
            # drain the DPT: concurrent writers re-add entries with
            # fresh rec_lsns, so nothing dirtied mid-drain is lost
            with self._dpt_latch:
                drain = dict(self._dpt)
                self._dpt.clear()
            iot_by_segment = self._iot_storages()
            buffer = self.engine.buffer
            for entry in sorted(drain):
                if entry[0] == "page":
                    page = buffer.peek_page(entry[1], entry[2])
                    if page is not None:
                        self.pages.write_page(entry[1], page.state())
            # IOT dumps: anything in the drained DPT plus anything whose
            # tree changed without a WAL record (DDL TRUNCATE sets
            # dump_dirty directly — no log record carries that change)
            for storage in iot_by_segment.values():
                if (storage.dump_dirty
                        or ("iot", storage.segment_id) in drain):
                    snap_lsn = storage.applied_lsn
                    self.pages.write_iot(storage.segment_id,
                                         storage.dump_rows(), snap_lsn)
                    storage.dump_dirty = False
            self.pages.fsync()
            att = dict(self._att)
            with self._dpt_latch:
                dpt = dict(self._dpt)
            record = {"t": REC_CHECKPOINT,
                      "epoch": self.wal.epoch,
                      "scn": self.engine.mvcc.current_scn,
                      "next_txn": self.engine.peek_next_txn_id(),
                      "next_seg": buffer.peek_next_segment_id(),
                      "att": att, "dpt": dpt, "clean": not att,
                      "reason": reason}
            if not att and not self.wal.failed:
                # quiet point: every committed effect is durable in the
                # page store, so the log can start a new generation
                self.wal.reset(self.wal.epoch + 1)
                record["epoch"] = self.wal.epoch
            lsn = self.wal.append(record)
            self.wal.flush_all()
            self.wal.stats.checkpoints += 1
            self.wal.stats.last_checkpoint_lsn = lsn
            if self.pages.should_compact():
                self.pages.compact()
            return lsn

    def _iot_storages(self) -> Dict[int, Any]:
        catalog = self.engine.catalog
        with catalog.latch:
            return {t.storage.segment_id: t.storage
                    for t in catalog.tables.values() if t.is_iot}

    # ------------------------------------------------------------------
    # catalog snapshot
    # ------------------------------------------------------------------

    def _write_catalog_snapshot(self) -> None:
        snapshot = self.describe_catalog()
        tmp = self.catalog_path + ".tmp"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, pickle.dumps(snapshot,
                                      protocol=pickle.HIGHEST_PROTOCOL))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.catalog_path)

    def describe_catalog(self) -> Dict[str, Any]:
        """Plain-data description of the schema (no live objects except
        pickled DataType/ObjectType instances).

        Functions, operators, indextypes, and implementation classes are
        *not* captured: they are code, re-registered by the application
        at startup exactly like loading a cartridge library.  Domain
        indexes are captured by definition + state; their ``methods``
        instances are rebuilt by ``ALTER INDEX ... REBUILD``.
        """
        catalog = self.engine.catalog
        with catalog.latch:
            tables = []
            for table in catalog.tables.values():
                storage = table.storage
                tables.append({
                    "name": table.name,
                    "columns": [(c.name, c.datatype, c.not_null)
                                for c in table.columns],
                    "primary_key": list(table.primary_key),
                    "is_iot": table.is_iot,
                    "key_width": getattr(storage, "key_width", 0),
                    "unique": getattr(storage, "unique", True),
                    "segment_id": storage.segment_id,
                    "owner": table.owner,
                })
            indexes = []
            for index in catalog.indexes.values():
                desc = {"name": index.name, "table_name": index.table_name,
                        "column_names": tuple(index.column_names),
                        "kind": index.kind, "unique": index.unique,
                        "domain": None}
                if index.domain is not None:
                    d = index.domain
                    desc["domain"] = {
                        "name": d.name, "table_name": d.table_name,
                        "column_names": tuple(d.column_names),
                        "column_types": tuple(d.column_types),
                        "indextype_name": d.indextype_name,
                        "parameters": d.parameters,
                        "state": d.state.value, "owner": d.owner,
                    }
                indexes.append(desc)
            return {
                "tables": tables,
                "indexes": indexes,
                "grants": {k: set(v) for k, v in catalog.grants.items()},
                "next_segment_id": self.engine.buffer.peek_next_segment_id(),
                "next_txn_id": self.engine.peek_next_txn_id(),
                "scn": self.engine.mvcc.current_scn,
            }

    def read_catalog_snapshot(self) -> Optional[Dict[str, Any]]:
        if not os.path.exists(self.catalog_path):
            return None
        with open(self.catalog_path, "rb") as fh:
            return pickle.loads(fh.read())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def open(self) -> Any:
        """Run restart recovery, then start the group-commit writer."""
        from repro.txn.recovery import run_recovery
        stats = run_recovery(self.engine, self)
        if self.log_writer is not None:
            self.log_writer.start()
        return stats

    def close(self) -> None:
        """Clean shutdown: stop the writer, flush, final checkpoint."""
        if self.closed:
            return
        if self.log_writer is not None:
            self.log_writer.stop()
        if not self.wal.failed:
            try:
                self.wal.flush_all()
                self.checkpoint(reason="shutdown")
            except WALError:
                pass
        self.closed = True
        self.wal.close()
        self.pages.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def wal_stats(self) -> Dict[str, Any]:
        snap = self.wal.stats.snapshot()
        snap["epoch"] = self.wal.epoch
        snap["end_lsn"] = self.wal.end_lsn
        snap["flushed_lsn"] = self.wal.flushed_lsn
        snap["group_commit"] = self.group_commit
        snap["active_transactions"] = len(self._att)
        snap["dirty_entries"] = len(self._dpt)
        snap["failed"] = self.wal.failed
        return snap
