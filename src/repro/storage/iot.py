"""Index-organized tables (IOTs).

Section 1 of the paper lists IOTs as a framework component: "an index is
modeled as a table, where each row is an index entry", and §2.5 reports
that "index-organized tables are commonly used as index data stores" —
the text cartridge stores its inverted index in one.

An IOT here is a B+-tree whose key is a prefix of the row and whose
payload is the rest of the row.  Rows are addressed by logical rowids
(their key), but we also hand out :class:`~repro.storage.heap.RowId`-like
surrogate ids so the executor can treat heap tables and IOTs uniformly.
"""

from __future__ import annotations

import threading
from operator import itemgetter
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import ConstraintError, InvalidRowIdError
from repro.storage.buffer import BufferCache
from repro.storage.heap import RowId
from repro.index.btree import BTree
from repro.txn.mvcc import Snapshot, VersionStore


class IndexOrganizedTable:
    """A table stored as a B+-tree on its first ``key_width`` columns.

    Unlike a heap table, rows live in key order: a range scan over the
    key prefix is the native access path.  Node visits are charged to the
    shared buffer-cache statistics as logical reads.
    """

    def __init__(self, buffer_cache: BufferCache, key_width: int,
                 name: str = "?", unique: bool = True,
                 segment_id: Optional[int] = None):
        if key_width < 1:
            raise ConstraintError("IOT key width must be >= 1")
        self.buffer = buffer_cache
        self.name = name
        self.key_width = key_width
        self.unique = unique
        # Recovery re-creates IOTs with their original segment ids so
        # durable dumps and WAL records keep addressing them.
        self.segment_id = (segment_id if segment_id is not None
                           else buffer_cache.allocate_segment())
        self._tree = BTree(unique=unique, touch=self._touch)
        #: LSN of the last WAL record applied to the tree; IOT redo is
        #: logical (surrogates don't survive restarts), so the whole
        #: table carries one applied-LSN watermark instead of per-page
        #: stamps.  Persisted as the durable dump's snap_lsn.
        self.applied_lsn = 0
        #: True when the tree changed since the last durable dump
        self.dump_dirty = False
        # surrogate rowid -> key mapping for executor uniformity
        self._key_of_surrogate: dict = {}
        self._surrogate_of_key: dict = {}
        self._next_surrogate = 0
        #: MVCC version chains keyed by surrogate rowid
        self.versions = VersionStore()
        #: guards tree + surrogate maps against snapshot readers; DML is
        #: already single-writer per table (X lock), but snapshot scans
        #: materialize concurrently with writers.  Reentrant: the scan
        #: paths allocate surrogates while holding it.
        self._latch = threading.RLock()

    def _touch(self, nodes: int) -> None:
        self.buffer.stats.logical_reads += nodes

    # -- DML ------------------------------------------------------------

    def _split_row(self, row: List[Any]) -> Tuple[Tuple[Any, ...], List[Any]]:
        key = tuple(row[:self.key_width])
        return key, list(row[self.key_width:])

    def insert(self, row: List[Any], on_rowid=None) -> RowId:
        """Insert ``row``; its first ``key_width`` values form the key.

        ``on_rowid`` (MVCC) is invoked with the surrogate rowid *before*
        the tree mutates, under the structure latch, so a concurrent
        snapshot scan either misses the entry or finds its version chain
        already registered — never a bare uncommitted row.
        """
        key, payload = self._split_row(row)
        with self._latch:
            if on_rowid is not None:
                on_rowid(self._surrogate(key))
            self._tree.insert(key, payload)
            rid = self._surrogate(key)
        self.buffer.stats.logical_writes += 1
        return rid

    def insert_bulk(self, rows: List[List[Any]],
                    with_rowids: bool = True,
                    presorted: bool = False) -> Optional[List[RowId]]:
        """Insert ``rows`` via the B-tree's sorted bulk build.

        Only valid on an empty IOT (the bulk build replaces the tree
        wholesale); callers gate on ``row_count == 0``.  Returns the
        surrogate rowids in input order, or None when ``with_rowids``
        is False — surrogates then materialize lazily on first scan,
        which is what direct-path loads of secondary-index-free tables
        want (the rowids would otherwise be built and thrown away).
        ``presorted`` promises the rows already arrive in strictly
        increasing key order (verified by the tree), skipping the sort
        and duplicate-grouping passes entirely.
        """
        if self._tree.entry_count:
            raise ConstraintError(
                f"bulk load requires empty IOT {self.name}")
        kw = self.key_width
        if kw == 1:
            keys = [(row[0],) for row in rows]
        else:
            key_of = itemgetter(*range(kw))  # C-level key extraction
            keys = [key_of(row) for row in rows]
        payloads = [row[kw:] for row in rows]
        with self._latch:
            if presorted:
                self._tree.bulk_load_sorted(keys, payloads)
            else:
                self._tree.bulk_load(zip(keys, payloads))
        self.buffer.stats.logical_writes += len(rows)
        if not with_rowids:
            return None
        with self._latch:
            return [self._surrogate(key) for key in keys]

    def fetch(self, rowid: RowId) -> List[Any]:
        """Fetch by surrogate rowid (first match under the key)."""
        key = self._key_of_surrogate.get(rowid)
        if key is None:
            raise InvalidRowIdError(f"{rowid} is not a rowid of IOT {self.name}")
        payloads = self._tree.search(key)
        if not payloads:
            raise InvalidRowIdError(f"{rowid}: key {key!r} no longer present")
        return list(key) + list(payloads[0])

    def fetch_or_none(self, rowid: RowId,
                      snapshot: Optional[Snapshot] = None
                      ) -> Optional[List[Any]]:
        """Like :meth:`fetch` but returns None for a dead surrogate.

        With a ``snapshot``, the surrogate's version chain wins over the
        tree: the caller sees the row as of the snapshot's SCN.
        """
        if snapshot is None:
            try:
                return self.fetch(rowid)
            except InvalidRowIdError:
                return None
        with self._latch:  # concurrent writers restructure the tree
            try:
                current = self.fetch(rowid)
            except InvalidRowIdError:
                current = None
        return self.versions.resolve(rowid, current, snapshot)

    def update(self, rowid: RowId, row: List[Any]) -> List[Any]:
        """Replace the row at ``rowid``; key changes re-insert the entry."""
        old = self.fetch(rowid)
        old_key, old_payload = self._split_row(old)
        new_key, new_payload = self._split_row(row)
        with self._latch:
            self._tree.delete(old_key, old_payload)
            self._tree.insert(new_key, new_payload)
            if new_key != old_key:
                self._rebind_surrogate(rowid, old_key, new_key)
        self.buffer.stats.logical_writes += 1
        return old

    def delete(self, rowid: RowId) -> List[Any]:
        """Delete the row at ``rowid``; returns the old row."""
        old = self.fetch(rowid)
        key, payload = self._split_row(old)
        with self._latch:
            self._tree.delete(key, payload)
        self.buffer.stats.logical_writes += 1
        return old

    def undelete(self, rowid: RowId, row: List[Any]) -> None:
        """Restore a deleted row under its original surrogate (rollback)."""
        key, payload = self._split_row(row)
        with self._latch:
            self._tree.insert(key, payload)
            self._key_of_surrogate[rowid] = key
            self._surrogate_of_key.setdefault(key, rowid)

    def delete_by_key(self, key_values: List[Any]) -> int:
        """Delete every row matching a full key; returns the count."""
        key = tuple(key_values)
        with self._latch:
            removed = len(self._tree.search(key))
            if removed:
                self._tree.delete(key)
        if removed:
            self.buffer.stats.logical_writes += 1
        return removed

    def truncate(self) -> None:
        """Discard every row."""
        with self._latch:
            self._tree.clear()
            self._key_of_surrogate.clear()
            self._surrogate_of_key.clear()
            self.versions.clear()
            # not WAL-logged (DDL), so the next checkpoint must rewrite
            # the durable dump or recovery would resurrect the old rows
            self.dump_dirty = True

    # -- scans ------------------------------------------------------------

    def scan(self, snapshot: Optional[Snapshot] = None
             ) -> Iterator[Tuple[RowId, List[Any]]]:
        """Scan in key order, yielding (surrogate rowid, full row)."""
        if snapshot is not None:
            yield from self._snapshot_scan(snapshot)
            return
        for key, payload in self._tree.items():
            yield self._surrogate(key), list(key) + list(payload)

    def key_range_scan(self, low: Optional[Tuple[Any, ...]] = None,
                       high: Optional[Tuple[Any, ...]] = None,
                       low_inclusive: bool = True,
                       high_inclusive: bool = True,
                       snapshot: Optional[Snapshot] = None,
                       ) -> Iterator[Tuple[RowId, List[Any]]]:
        """Scan rows whose key lies in [low, high] (tuple bounds)."""
        if snapshot is not None:
            in_range = self._range_test(low, high, low_inclusive,
                                        high_inclusive)
            yield from self._snapshot_scan(
                snapshot, in_range,
                lambda: self._tree.range_scan(low, high, low_inclusive,
                                              high_inclusive))
            return
        for key, payload in self._tree.range_scan(
                low, high, low_inclusive, high_inclusive):
            yield self._surrogate(key), list(key) + list(payload)

    def key_prefix_scan(self, prefix: List[Any],
                        snapshot: Optional[Snapshot] = None
                        ) -> Iterator[Tuple[RowId, List[Any]]]:
        """Scan rows whose key starts with ``prefix`` (in key order).

        This is the IOT's native access path for queries like
        ``WHERE token = :1`` on a ``(token, rid)``-keyed table — a
        B-tree descent plus a bounded leaf walk, not a full scan.
        """
        prefix_tuple = tuple(prefix)
        width = len(prefix_tuple)
        if snapshot is not None:
            def in_prefix(key):
                return tuple(key[:width]) == prefix_tuple

            def current():
                for key, payload in self._tree.range_scan(low=prefix_tuple):
                    if not in_prefix(key):
                        break
                    yield key, payload

            yield from self._snapshot_scan(snapshot, in_prefix, current)
            return
        for key, payload in self._tree.range_scan(low=prefix_tuple):
            if tuple(key[:width]) != prefix_tuple:
                break
            yield self._surrogate(key), list(key) + list(payload)

    def _range_test(self, low, high, low_inclusive, high_inclusive):
        def in_range(key):
            if low is not None:
                if key < low or (key == low and not low_inclusive):
                    return False
            if high is not None:
                if key > high or (key == high and not high_inclusive):
                    return False
            return True
        return in_range

    def _snapshot_scan(self, snapshot: Snapshot, in_bounds=None,
                       current_fn=None) -> Iterator[Tuple[RowId, List[Any]]]:
        """Consistent-read scan: latched materialize + version overlay.

        The tree rows in bounds are materialized under the structure
        latch (writers restructure the tree mid-flight otherwise), each
        resolved through its version chain; tracked rowids the tree walk
        missed — deleted entries, or keys updated out of the scanned
        range — are overlaid, bounds-checked against their *resolved*
        key, and the merge re-sorted into key order.
        """
        kw = self.key_width
        with self._latch:
            pairs = [(self._surrogate(key), key, payload)
                     for key, payload in
                     (current_fn() if current_fn else self._tree.items())]
            tracked = self.versions.tracked_rowids()
        resolve = self.versions.resolve
        tracked_set = set(tracked)
        seen = set()
        results = []
        for rid, key, payload in pairs:
            if rid in seen and rid in tracked_set:
                # non-unique duplicate keys share a surrogate; a tracked
                # surrogate resolves once through its chain
                continue
            seen.add(rid)
            value = resolve(rid, list(key) + list(payload), snapshot)
            if value is None:
                continue
            vkey = tuple(value[:kw])
            if in_bounds is not None and not in_bounds(vkey):
                continue
            results.append((vkey, rid.sort_key, value, rid))
        for rid in tracked:
            if rid in seen:
                continue
            value = resolve(rid, None, snapshot)
            if value is None:
                continue
            vkey = tuple(value[:kw])
            if in_bounds is not None and not in_bounds(vkey):
                continue
            results.append((vkey, rid.sort_key, value, rid))
        results.sort(key=lambda item: (item[0], item[1]))
        for __, __, value, rid in results:
            yield rid, value

    def lookup(self, key_values: List[Any]) -> List[List[Any]]:
        """Return the full rows stored under an exact key."""
        key = tuple(key_values)
        return [list(key) + list(p) for p in self._tree.search(key)]

    # -- durability support ------------------------------------------------

    def stamp_lsn(self, lsn: int) -> None:
        """Advance the applied-LSN watermark (a WAL record hit this tree)."""
        if lsn > self.applied_lsn:
            self.applied_lsn = lsn
        self.dump_dirty = True

    def dump_rows(self) -> List[List[Any]]:
        """Materialize every row for a durable dump (latched)."""
        with self._latch:
            return [list(key) + list(payload)
                    for key, payload in self._tree.items()]

    def load_rows(self, rows: List[List[Any]], snap_lsn: int) -> None:
        """Replace the tree with a recovered dump image."""
        with self._latch:
            self._tree.clear()
            self._key_of_surrogate.clear()
            self._surrogate_of_key.clear()
            self._next_surrogate = 0
            for row in rows:
                key, payload = self._split_row(row)
                self._tree.insert(key, payload)
            self.applied_lsn = snap_lsn
            self.dump_dirty = False

    def recover_insert(self, row: List[Any]) -> None:
        """Redo/undo replay: insert without surrogate or MVCC tracking."""
        key, payload = self._split_row(row)
        with self._latch:
            self._tree.insert(key, payload)

    def recover_delete(self, row: List[Any]) -> None:
        """Redo/undo replay: delete by full row; missing rows tolerated
        (replay against a fuzzy image may target an already-gone row)."""
        key, payload = self._split_row(row)
        with self._latch:
            try:
                self._tree.delete(key, payload)
            except Exception:
                pass

    def recover_update(self, old: List[Any], new: List[Any]) -> None:
        """Redo/undo replay: replace ``old`` with ``new``."""
        self.recover_delete(old)
        self.recover_insert(new)

    # -- statistics --------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of rows (== B-tree entries)."""
        return self._tree.entry_count

    @property
    def page_count(self) -> int:
        """Approximate node count, used by the optimizer's cost model."""
        return max(1, self._tree.entry_count // 32)

    # -- internals ----------------------------------------------------------

    def _surrogate(self, key: Tuple[Any, ...]) -> RowId:
        rid = self._surrogate_of_key.get(key)
        if rid is None:
            with self._latch:  # check-then-allocate must be atomic
                rid = self._surrogate_of_key.get(key)
                if rid is None:
                    rid = RowId(self.segment_id, 0, self._next_surrogate)
                    self._next_surrogate += 1
                    self._surrogate_of_key[key] = rid
                    self._key_of_surrogate[rid] = key
        return rid

    def _rebind_surrogate(self, rowid: RowId, old_key: Tuple[Any, ...],
                          new_key: Tuple[Any, ...]) -> None:
        self._key_of_surrogate[rowid] = new_key
        if self._surrogate_of_key.get(old_key) is rowid:
            del self._surrogate_of_key[old_key]
        self._surrogate_of_key[new_key] = rowid
