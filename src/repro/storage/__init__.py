"""Storage engine: pages, buffer cache, heap tables, IOTs, LOBs, file store."""

from repro.storage.page import Page, PAGE_SIZE, estimate_size
from repro.storage.buffer import BufferCache, IOStats
from repro.storage.heap import HeapTable, RowId
from repro.storage.iot import IndexOrganizedTable
from repro.storage.lob import LobManager, LobLocator
from repro.storage.filestore import FileStore, ExternalFile

__all__ = [
    "Page",
    "PAGE_SIZE",
    "estimate_size",
    "BufferCache",
    "IOStats",
    "HeapTable",
    "RowId",
    "IndexOrganizedTable",
    "LobManager",
    "LobLocator",
    "FileStore",
    "ExternalFile",
]
