"""Large objects (LOBs) with a file-like locator API.

Section 3.2.4 of the paper: the Daylight cartridge migrated a file-based
index into database LOBs "since LOBs can be accessed and manipulated
with a file-like interface ... minimal changes were required to the
index management software".  :class:`LobLocator` therefore deliberately
mirrors :class:`~repro.storage.filestore.ExternalFile` — ``read``,
``write``, ``seek``, ``tell``, ``truncate`` — so the chemistry cartridge
can run the *same* index code over either store.

LOB bytes are chunked onto pages that flow through the shared buffer
cache, which is how the paper's observations fall out naturally: reads
hit disk only when cold ("reads are done only for cold start queries and
the data is cached in memory for subsequent operations") and writes are
buffered rather than hitting the file system per call.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import StorageError
from repro.storage.buffer import BufferCache

#: Bytes stored per LOB page.
LOB_CHUNK = 4096


class LobManager:
    """Allocates LOBs and stores their chunks in a buffer-cached segment.

    When constructed with a lock manager, LOBs support *byte-range
    locking* at chunk granularity — §5's proposed solution for index
    structures migrated into LOBs: "treat the LOB as a page-based
    store, and use general byte-range locking of LOB bytes to implement
    appropriate concurrency control algorithms."
    """

    def __init__(self, buffer_cache: BufferCache, lock_manager=None):
        self.buffer = buffer_cache
        self.locks = lock_manager
        self.segment_id = buffer_cache.allocate_segment()
        self._next_lob_id = 1
        self._next_page = 0
        # lob id -> (list of page numbers, length in bytes)
        self._directory: Dict[int, List[int]] = {}
        self._length: Dict[int, int] = {}

    def lock_range(self, txn_id: int, lob_id: int, offset: int,
                   length: int, exclusive: bool = True) -> int:
        """Lock the chunk-aligned byte range [offset, offset+length).

        Returns the number of chunk locks taken.  Conflicting requests
        from other transactions raise
        :class:`~repro.errors.LockTimeoutError`; locks are released by
        the lock manager's ``release_all`` at commit/rollback.
        """
        if self.locks is None:
            raise StorageError("this LobManager has no lock manager")
        if lob_id not in self._directory:
            raise StorageError(f"no such LOB {lob_id}")
        if length <= 0:
            return 0
        from repro.txn.locks import LockMode
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        first = offset // LOB_CHUNK
        last = (offset + length - 1) // LOB_CHUNK
        for chunk in range(first, last + 1):
            self.locks.acquire(txn_id, f"lob:{lob_id}:chunk:{chunk}", mode)
        return last - first + 1

    def create(self, data: bytes = b"") -> "LobLocator":
        """Allocate a new LOB, optionally initialized with ``data``."""
        lob_id = self._next_lob_id
        self._next_lob_id += 1
        self._directory[lob_id] = []
        self._length[lob_id] = 0
        locator = LobLocator(self, lob_id)
        if data:
            locator.write(data)
            locator.seek(0)
        return locator

    def open(self, lob_id: int) -> "LobLocator":
        """Return a fresh locator for an existing LOB."""
        if lob_id not in self._directory:
            raise StorageError(f"no such LOB {lob_id}")
        return LobLocator(self, lob_id)

    def delete(self, lob_id: int) -> None:
        """Free a LOB and its pages."""
        self._directory.pop(lob_id, None)
        self._length.pop(lob_id, None)

    def length(self, lob_id: int) -> int:
        """Current byte length of a LOB."""
        if lob_id not in self._length:
            raise StorageError(f"no such LOB {lob_id}")
        return self._length[lob_id]

    def exists(self, lob_id: int) -> bool:
        """True when ``lob_id`` names a live LOB."""
        return lob_id in self._directory

    # -- chunk access (used by locators) ----------------------------------

    def _page_for_chunk(self, lob_id: int, chunk_idx: int,
                        create: bool, for_write: bool):
        pages = self._directory[lob_id]
        while create and chunk_idx >= len(pages):
            page = self.buffer.new_page(self.segment_id, self._next_page)
            page.slots.append([bytearray()])
            self._next_page += 1
            pages.append(page.page_no)
        if chunk_idx >= len(pages):
            return None
        return self.buffer.get_page(self.segment_id, pages[chunk_idx],
                                    for_write=for_write)

    def read_range(self, lob_id: int, offset: int, count: int) -> bytes:
        """Read ``count`` bytes at ``offset`` (clamped to LOB length)."""
        if lob_id not in self._directory:
            raise StorageError(f"no such LOB {lob_id}")
        length = self._length[lob_id]
        if offset >= length or count <= 0:
            return b""
        count = min(count, length - offset)
        out = bytearray()
        while count > 0:
            chunk_idx, chunk_off = divmod(offset, LOB_CHUNK)
            page = self._page_for_chunk(lob_id, chunk_idx,
                                        create=False, for_write=False)
            if page is None:
                break
            chunk: bytearray = page.slots[0][0]
            take = min(count, LOB_CHUNK - chunk_off)
            out += chunk[chunk_off:chunk_off + take]
            offset += take
            count -= take
        return bytes(out)

    def write_range(self, lob_id: int, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``, growing the LOB as needed.

        A zero-byte write is a no-op and never extends the LOB (POSIX
        file semantics, which the file store mirrors).
        """
        if lob_id not in self._directory:
            raise StorageError(f"no such LOB {lob_id}")
        if not data:
            return 0
        remaining = memoryview(data)
        pos = offset
        while remaining:
            chunk_idx, chunk_off = divmod(pos, LOB_CHUNK)
            page = self._page_for_chunk(lob_id, chunk_idx,
                                        create=True, for_write=True)
            chunk: bytearray = page.slots[0][0]
            take = min(len(remaining), LOB_CHUNK - chunk_off)
            if len(chunk) < chunk_off:
                chunk.extend(b"\x00" * (chunk_off - len(chunk)))
            chunk[chunk_off:chunk_off + take] = remaining[:take]
            remaining = remaining[take:]
            pos += take
        self._length[lob_id] = max(self._length[lob_id], offset + len(data))
        return len(data)

    def truncate(self, lob_id: int, new_length: int) -> None:
        """Shrink a LOB to ``new_length`` bytes."""
        if lob_id not in self._directory:
            raise StorageError(f"no such LOB {lob_id}")
        if new_length >= self._length[lob_id]:
            return
        self._length[lob_id] = new_length
        keep_chunks = (new_length + LOB_CHUNK - 1) // LOB_CHUNK
        pages = self._directory[lob_id]
        del pages[keep_chunks:]
        if new_length % LOB_CHUNK and pages:
            page = self._page_for_chunk(lob_id, keep_chunks - 1,
                                        create=False, for_write=True)
            chunk: bytearray = page.slots[0][0]
            del chunk[new_length % LOB_CHUNK:]


class LobLocator:
    """A positioned handle onto one LOB, API-compatible with ExternalFile.

    Locators are cheap; many may address the same LOB.  Equality and
    hashing are by LOB id so a locator can be stored in a table column
    and fetched back meaningfully.
    """

    def __init__(self, manager: LobManager, lob_id: int):
        self._manager = manager
        self.lob_id = lob_id
        self._pos = 0

    def read(self, count: int = -1) -> bytes:
        """Read up to ``count`` bytes from the current position (-1 = rest)."""
        if count < 0:
            count = self._manager.length(self.lob_id) - self._pos
        data = self._manager.read_range(self.lob_id, self._pos, count)
        self._pos += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write ``data`` at the current position, advancing it."""
        written = self._manager.write_range(self.lob_id, self._pos, data)
        self._pos += written
        return written

    def seek(self, offset: int, whence: int = 0) -> int:
        """Reposition like ``io`` seek: 0=absolute, 1=relative, 2=from end."""
        if whence == 0:
            self._pos = offset
        elif whence == 1:
            self._pos += offset
        elif whence == 2:
            self._pos = self._manager.length(self.lob_id) + offset
        else:
            raise StorageError(f"bad whence {whence}")
        if self._pos < 0:
            raise StorageError("negative LOB position")
        return self._pos

    def tell(self) -> int:
        """Current position."""
        return self._pos

    def truncate(self, size: Optional[int] = None) -> int:
        """Shrink the LOB to ``size`` (default: current position)."""
        if size is None:
            size = self._pos
        self._manager.truncate(self.lob_id, size)
        return size

    def length(self) -> int:
        """Total LOB length in bytes."""
        return self._manager.length(self.lob_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LobLocator) and other.lob_id == self.lob_id

    def __lt__(self, other: "LobLocator") -> bool:
        return self.lob_id < other.lob_id

    def __hash__(self) -> int:
        return hash(("LOB", self.lob_id))

    def __repr__(self) -> str:
        return f"LobLocator(id={self.lob_id}, len={self._manager.length(self.lob_id)})"
