"""Write-ahead log: redo/undo records, group commit, torn-tail-safe scan.

The durability contract Oracle8i gives the paper's domain indexes —
"index data stored in the database rides the kernel's recovery
machinery" (§2.5) — needs a redo log underneath the buffer cache.  This
module provides it:

* **Records.**  Each record is ``<u32 body-length><u32 crc32><pickled
  payload>``.  Payloads are plain dicts tagged with a one-letter type:
  row changes (``U``), compensation records written by rollback/undo
  (``C``), commit (``X``), abort (``A``), and fuzzy checkpoints (``K``).
  Row changes are physiological for heap tables (segment/page/slot plus
  before/after images — replay is a slot-targeted, idempotent set) and
  logical for index-organized tables (full before/after rows — their
  surrogate rowids do not survive a restart).

* **LSNs.**  A record's LSN is ``(epoch << 40) | byte offset``.  The
  epoch bumps every time the log is truncated at a quiet checkpoint, so
  LSNs stay monotonic across truncation and page-image stamps from an
  old log generation always compare below new records.

* **Group commit.**  Sessions do not fsync their own commit record;
  they enqueue the commit LSN with :class:`LogWriter` and wait.  The
  log-writer thread drains all waiting sessions, issues **one** fsync
  covering the highest LSN in the batch, and wakes everyone — the
  classic commit-throughput win, benchmarked in
  ``benchmarks/bench_wal.py``.

* **Torn-tail scan.**  :func:`scan_log` stops cleanly at the first
  truncated or checksum-failing record — a crash mid-append leaves a
  torn tail, never a corrupt replay.

* **Failure model.**  A log-device error (including injected torn
  writes / I/O errors from :class:`repro.testing.faults.StorageFaultPlan`)
  marks the log **failed**; every later append or commit raises
  :class:`~repro.errors.WALError`.  Like Oracle after an LGWR failure,
  the instance must restart and recover.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
import zlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import WALError

__all__ = ["LogDevice", "LogWriter", "WALStats", "WriteAheadLog",
           "lsn_epoch", "lsn_offset", "make_lsn", "scan_log",
           "REC_UPDATE", "REC_CLR", "REC_COMMIT", "REC_ABORT",
           "REC_CHECKPOINT"]

#: record header: little-endian (body length, crc32 of body)
_HEADER = struct.Struct("<II")

#: record type tags ("t" key of every payload)
REC_UPDATE = "U"      # row change: redo + (logical) undo images
REC_CLR = "C"         # compensation record: redo-only, undo_next chain
REC_COMMIT = "X"      # transaction commit {txn, scn}
REC_ABORT = "A"       # transaction fully rolled back
REC_CHECKPOINT = "K"  # fuzzy checkpoint {att, dpt, scn, next ids}

#: bits reserved for the byte offset within one log generation (1 TiB)
LSN_OFFSET_BITS = 40
_OFFSET_MASK = (1 << LSN_OFFSET_BITS) - 1


def make_lsn(epoch: int, offset: int) -> int:
    return (epoch << LSN_OFFSET_BITS) | offset


def lsn_epoch(lsn: int) -> int:
    return lsn >> LSN_OFFSET_BITS


def lsn_offset(lsn: int) -> int:
    return lsn & _OFFSET_MASK


def encode_record(payload: Dict[str, Any]) -> bytes:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


class LogDevice:
    """The log's file descriptor plus the fault-injection seam.

    All real I/O goes through here so :class:`~repro.testing.faults.
    StorageFaultPlan` can inject device-level failures the SIGKILL
    harness cannot produce (the OS keeps completed writes):

    * ``io_error`` — the write/fsync raises; the device marks itself
      failed.
    * ``torn`` — a write persists only a prefix of the record (crash
      mid-sector); the device fails afterwards.
    * ``short_fsync`` — fsync "succeeds" but the device lies: the last
      bytes are not durable.  :meth:`simulate_crash` truncates the file
      to the durable prefix, modeling the power cut that exposes the
      lie.

    ``fsync_delay`` simulates device latency (tmpfs CI makes real fsync
    nearly free, which would hide the group-commit win the benchmark
    gates on).
    """

    def __init__(self, path: str, fsync_delay: float = 0.0,
                 fault_check: Optional[Callable[[str], Any]] = None,
                 event_hook: Optional[Callable[[str], None]] = None,
                 fault_scope: str = "wal"):
        self.path = path
        self.fsync_delay = fsync_delay
        self.fault_check = fault_check
        self.event_hook = event_hook
        self.fault_scope = fault_scope
        self.failed = False
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        #: bytes physically written (append position)
        self.size = os.fstat(self._fd).st_size
        #: bytes actually persisted by the device (== size except after
        #: an injected short fsync)
        self.durable_size = self.size

    # -- fault seam ---------------------------------------------------

    def _fault(self, op: str):
        if self.fault_check is None:
            return None
        return self.fault_check(f"{self.fault_scope}.{op}")

    def _event(self, op: str) -> None:
        if self.event_hook is not None:
            self.event_hook(f"{self.fault_scope}.{op}")

    # -- I/O -----------------------------------------------------------

    def append(self, data: bytes) -> int:
        """Write ``data`` at the end; returns the record's start offset."""
        if self.failed:
            raise WALError(f"log device {self.path} has failed; "
                           "restart the instance")
        rule = self._fault("append")
        offset = self.size
        if rule is not None and rule.kind == "io_error":
            self.failed = True
            raise WALError(f"injected I/O error on {self.path}")
        if rule is not None and rule.kind == "torn":
            keep = max(1, int(len(data) * rule.fraction))
            os.pwrite(self._fd, data[:keep], offset)
            self.size = offset + keep
            self.failed = True
            self._event("append")
            raise WALError(f"injected torn write on {self.path} "
                           f"({keep}/{len(data)} bytes)")
        os.pwrite(self._fd, data, offset)
        self.size = offset + len(data)
        self._event("append")
        return offset

    def fsync(self) -> None:
        if self.failed:
            raise WALError(f"log device {self.path} has failed; "
                           "restart the instance")
        rule = self._fault("fsync")
        if rule is not None and rule.kind == "io_error":
            self.failed = True
            raise WALError(f"injected fsync error on {self.path}")
        if self.fsync_delay > 0.0:
            time.sleep(self.fsync_delay)
        os.fsync(self._fd)
        if rule is not None and rule.kind == "short_fsync":
            # the device acknowledged the fsync but silently dropped
            # the last bytes; visible only after simulate_crash()
            self.durable_size = max(self.durable_size,
                                    self.size - rule.shortfall)
        else:
            self.durable_size = self.size
        self._event("fsync")

    def pread(self, length: int, offset: int) -> bytes:
        return os.pread(self._fd, length, offset)

    def truncate(self, size: int = 0) -> None:
        os.ftruncate(self._fd, size)
        self.size = size
        self.durable_size = min(self.durable_size, size)

    def simulate_crash(self) -> None:
        """Drop every byte the device never actually persisted."""
        os.ftruncate(self._fd, self.durable_size)
        self.size = self.durable_size

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


def scan_log(device: LogDevice, epoch: int
             ) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(lsn, payload)`` for every intact record; stop at a torn
    tail (truncated header/body or checksum mismatch)."""
    offset = 0
    size = device.size
    header_len = _HEADER.size
    while offset + header_len <= size:
        body_len, crc = _HEADER.unpack(device.pread(header_len, offset))
        body_off = offset + header_len
        if body_off + body_len > size:
            return  # torn tail: body truncated
        body = device.pread(body_len, body_off)
        if len(body) != body_len or zlib.crc32(body) != crc:
            return  # torn tail: checksum failure
        try:
            payload = pickle.loads(body)
        except Exception:
            return  # torn tail: garbage body that happened to checksum
        yield make_lsn(epoch, offset), payload
        offset = body_off + body_len


class WALStats:
    """Counters behind the ``user_wal_stats`` dictionary view."""

    def __init__(self):
        self.records = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.commit_records = 0
        self.commit_waits = 0
        self.group_batches = 0
        self.group_commits = 0
        self.max_batch = 0
        #: group-commit batch-size histogram: batch size -> batches
        self.batch_histogram: Dict[int, int] = {}
        self.checkpoints = 0
        self.truncations = 0
        self.last_checkpoint_lsn = 0

    def record_batch(self, size: int) -> None:
        self.group_batches += 1
        self.group_commits += size
        self.max_batch = max(self.max_batch, size)
        self.batch_histogram[size] = self.batch_histogram.get(size, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "records": self.records,
            "bytes_written": self.bytes_written,
            "fsyncs": self.fsyncs,
            "commit_records": self.commit_records,
            "commit_waits": self.commit_waits,
            "group_batches": self.group_batches,
            "group_commits": self.group_commits,
            "max_batch": self.max_batch,
            "batch_histogram": dict(sorted(self.batch_histogram.items())),
            "checkpoints": self.checkpoints,
            "truncations": self.truncations,
            "last_checkpoint_lsn": self.last_checkpoint_lsn,
        }


class WriteAheadLog:
    """Append-only redo log with group commit.

    Appends write straight to the OS file (page cache); durability is
    exactly the fsync boundary, tracked as ``flushed_lsn``.  The append
    latch serializes record placement; ``flush_to`` is idempotent and
    safe from any thread.
    """

    def __init__(self, path: str, fsync_delay: float = 0.0,
                 fault_check: Optional[Callable[[str], Any]] = None,
                 event_hook: Optional[Callable[[str], None]] = None):
        self.device = LogDevice(path, fsync_delay=fsync_delay,
                                fault_check=fault_check,
                                event_hook=event_hook, fault_scope="wal")
        self.epoch = 0
        self.stats = WALStats()
        self._latch = threading.Lock()
        self._flush_latch = threading.Lock()
        self.flushed_lsn = 0
        self.writer: Optional["LogWriter"] = None

    @property
    def failed(self) -> bool:
        return self.device.failed

    @property
    def end_lsn(self) -> int:
        """LSN just past the last appended record."""
        return make_lsn(self.epoch, self.device.size)

    def append(self, payload: Dict[str, Any]) -> int:
        """Append one record; returns its LSN (not yet durable)."""
        data = encode_record(payload)
        with self._latch:
            offset = self.device.append(data)
            self.stats.records += 1
            self.stats.bytes_written += len(data)
            return make_lsn(self.epoch, offset)

    def flush_to(self, lsn: int) -> None:
        """Make the record starting at ``lsn`` durable (WAL rule).

        ``lsn`` is a record's *start* position, so durability requires
        ``flushed_lsn`` strictly beyond it — ``>=`` would skip the fsync
        for a record appended exactly at the flushed boundary (the first
        commit after a checkpoint) and ack a commit that is not durable.
        """
        if self.flushed_lsn > lsn:
            return
        with self._flush_latch:
            if self.flushed_lsn > lsn:
                return
            target = self.end_lsn  # all bytes below are already written
            self.device.fsync()
            self.stats.fsyncs += 1
            self.flushed_lsn = target

    def flush_all(self) -> None:
        if self.device.size == 0:
            return  # empty generation: nothing to make durable
        self.flush_to(self.end_lsn - 1)  # start of the last byte written

    def commit_flush(self, lsn: int) -> None:
        """Durably flush a commit record.

        With the group-commit writer running, the commit joins the
        writer's next batch and shares its fsync.  Without it this is
        literal per-commit-fsync mode: every commit pays its own fsync,
        even when a concurrent flush already covered this LSN —
        ``flush_to``'s coverage skip is itself a batching optimisation,
        and the no-writer mode exists to be the unbatched baseline.
        """
        self.stats.commit_waits += 1
        writer = self.writer
        if writer is not None and writer.running:
            writer.commit_wait(lsn)
        else:
            with self._flush_latch:
                target = self.end_lsn
                self.device.fsync()
                self.stats.fsyncs += 1
                if target > self.flushed_lsn:
                    self.flushed_lsn = target
        if self.failed:
            raise WALError("write-ahead log failed during commit flush; "
                           "restart the instance")

    # -- truncation at quiet checkpoints --------------------------------

    def reset(self, epoch: int) -> None:
        """Truncate the log and start a new generation (quiet checkpoint:
        no active transactions, all dirty pages flushed)."""
        with self._latch, self._flush_latch:
            self.device.truncate(0)
            self.epoch = epoch
            self.flushed_lsn = make_lsn(epoch, 0)
            self.stats.truncations += 1

    def scan(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        return scan_log(self.device, self.epoch)

    def close(self) -> None:
        self.device.close()


class LogWriter:
    """The group-commit thread: batches commit fsyncs across sessions.

    Mirrors the futures-over-a-queue idiom of the async writers in
    ``/root/related/opendatacube__dea-proto``: committers enqueue
    ``(lsn, event)`` and block on the event; the writer drains the whole
    queue, fsyncs once through the highest LSN, and releases the batch.
    """

    def __init__(self, wal: WriteAheadLog):
        self.wal = wal
        self._cond = threading.Condition()
        self._queue: List[Tuple[int, threading.Event]] = []
        self._stop = False
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop = False
        self._thread = threading.Thread(target=self._loop,
                                        name="wal-log-writer", daemon=True)
        self._thread.start()
        self.wal.writer = self

    def stop(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.wal.writer is self:
            self.wal.writer = None

    def commit_wait(self, lsn: int) -> None:
        """Enqueue a commit LSN and block until it is durable (or failed)."""
        done = threading.Event()
        with self._cond:
            if self._stop or not self.running:
                # writer wound down between the caller's check and here
                self.wal.flush_to(lsn)
                return
            self._queue.append((lsn, done))
            self._cond.notify()
        done.wait()

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                batch, self._queue = self._queue, []
                stopping = self._stop
            if batch:
                target = max(lsn for lsn, __ in batch)
                try:
                    self.wal.flush_to(target)
                except WALError:
                    pass  # waiters observe wal.failed and raise
                self.wal.stats.record_batch(len(batch))
                for __, event in batch:
                    event.set()
            if stopping:
                # drain anything that raced the stop flag
                with self._cond:
                    leftovers, self._queue = self._queue, []
                for lsn, event in leftovers:
                    try:
                        self.wal.flush_to(lsn)
                    except WALError:
                        pass
                    event.set()
                return
