"""Buffer cache and I/O statistics.

All heap and LOB page access goes through one :class:`BufferCache` per
database, so every execution path — native index scans, domain-index
callbacks, legacy temp-table plans — is charged the same way.  The cache
is an LRU over (segment, page_no) keys backed by a simulated disk; the
counters it maintains are what the E1/E4 benchmarks report.

The paper notes (§2.5) that when index data is stored inside the
database, "data buffering [is] also applicable to the user index data" —
this module is precisely that shared buffering.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import StorageError
from repro.storage.page import Page


@dataclass
class IOStats:
    """Counters for simulated I/O and callback activity.

    ``logical_reads``/``logical_writes`` count buffer accesses;
    ``physical_reads``/``physical_writes`` count simulated disk transfers
    (cache misses and dirty-page writebacks).  ``file_reads``/
    ``file_writes`` count external file-store operations, kept separate
    because the chemistry experiment (E4) contrasts the two.

    Thread-safety: counters are plain ints deliberately *not* guarded by
    a lock of their own — the hot increments happen under the buffer
    cache / file store latches, and the remaining bare ``bump`` calls
    from cartridges tolerate benign drift (they are diagnostics, never
    correctness inputs).  Exact counter assertions belong in
    single-session tests.
    """

    logical_reads: int = 0
    logical_writes: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    file_reads: int = 0
    file_writes: int = 0
    file_bytes_read: int = 0
    file_bytes_written: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter (used by cartridges/benchmarks)."""
        self.extra[counter] = self.extra.get(counter, 0) + amount

    def snapshot(self) -> Dict[str, int]:
        """Return all counters as a flat dict (copy)."""
        out = {
            "logical_reads": self.logical_reads,
            "logical_writes": self.logical_writes,
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "file_reads": self.file_reads,
            "file_writes": self.file_writes,
            "file_bytes_read": self.file_bytes_read,
            "file_bytes_written": self.file_bytes_written,
        }
        out.update(self.extra)
        return out

    def reset(self) -> None:
        """Zero every counter."""
        self.logical_reads = 0
        self.logical_writes = 0
        self.physical_reads = 0
        self.physical_writes = 0
        self.file_reads = 0
        self.file_writes = 0
        self.file_bytes_read = 0
        self.file_bytes_written = 0
        self.extra.clear()

    def diff(self, before: Dict[str, int]) -> Dict[str, int]:
        """Return current counters minus a prior :meth:`snapshot`."""
        now = self.snapshot()
        return {k: now.get(k, 0) - before.get(k, 0)
                for k in set(now) | set(before)}


PageKey = Tuple[int, int]  # (segment_id, page_no)


class BufferCache:
    """LRU page cache over a simulated disk.

    Segments (heap tables, IOT overflow, LOB segments) allocate pages
    through the cache; reads that miss fetch from the simulated disk and
    count a physical read, dirty evictions count a physical write.
    """

    def __init__(self, stats: IOStats, capacity: int = 256):
        if capacity < 1:
            raise StorageError("buffer cache capacity must be positive")
        self.stats = stats
        self.capacity = capacity
        self._cache: "OrderedDict[PageKey, Page]" = OrderedDict()
        self._disk: Dict[PageKey, Page] = {}
        self._next_segment_id = 1
        #: set by the engine when durability is on; the cache reports
        #: dirty-making accesses (for the dirty-page table) and segment
        #: drops (for durable tombstones)
        self.durability = None
        #: latch: the cache is engine-wide; even read-only access
        #: mutates the LRU order (``move_to_end``), so every operation
        #: takes the latch.  Individual I/O counters are *not* under a
        #: separate lock — they are only mutated latch-held here (other
        #: IOStats writers tolerate benign drift, see IOStats docs).
        self._latch = threading.RLock()

    # -- segment management -------------------------------------------------

    def allocate_segment(self) -> int:
        """Return a fresh segment id for a new table/LOB."""
        with self._latch:
            seg = self._next_segment_id
            self._next_segment_id += 1
            return seg

    def drop_segment(self, segment_id: int) -> None:
        """Discard every page of a segment (DROP/TRUNCATE)."""
        with self._latch:
            for key in [k for k in self._cache if k[0] == segment_id]:
                del self._cache[key]
            for key in [k for k in self._disk if k[0] == segment_id]:
                del self._disk[key]
        if self.durability is not None:
            self.durability.segment_dropped(segment_id)

    def segment_page_count(self, segment_id: int) -> int:
        """Number of allocated pages in a segment (cached or on disk)."""
        with self._latch:
            keys = {k for k in self._disk if k[0] == segment_id}
            keys |= {k for k in self._cache if k[0] == segment_id}
            return len(keys)

    # -- page access --------------------------------------------------------

    def new_page(self, segment_id: int, page_no: int) -> Page:
        """Allocate a fresh page in the cache (counts a logical write)."""
        key = (segment_id, page_no)
        with self._latch:
            if key in self._disk or key in self._cache:
                raise StorageError(f"page {key} already exists")
            page = Page(page_no)
            page.dirty = True
            self._put(key, page)
            self.stats.logical_writes += 1
        if self.durability is not None:
            self.durability.note_dirty(key)
        return page

    def get_page(self, segment_id: int, page_no: int,
                 for_write: bool = False) -> Page:
        """Fetch a page, counting logical (and physical, on miss) I/O."""
        key = (segment_id, page_no)
        with self._latch:
            self.stats.logical_reads += 1
            if for_write:
                self.stats.logical_writes += 1
            page = self._cache.get(key)
            if page is None:
                page = self._disk.get(key)
                if page is None:
                    raise StorageError(f"no such page {key}")
                self.stats.physical_reads += 1
                self._put(key, page)
            else:
                self._cache.move_to_end(key)
            if for_write:
                page.dirty = True
        if for_write and self.durability is not None:
            self.durability.note_dirty(key)
        return page

    def flush(self) -> None:
        """Write back every dirty cached page (checkpoint)."""
        with self._latch:
            for key, page in self._cache.items():
                if page.dirty:
                    self._disk[key] = page
                    page.dirty = False
                    self.stats.physical_writes += 1

    def clear(self) -> None:
        """Flush and empty the cache — simulates a cold restart for E4."""
        with self._latch:
            self.flush()
            self._cache.clear()

    def resident(self, segment_id: int, page_no: int) -> bool:
        """True when the page is currently cached (no I/O counted)."""
        with self._latch:
            return (segment_id, page_no) in self._cache

    # -- recovery support ---------------------------------------------------

    def install_page(self, key: PageKey, page: Page) -> None:
        """Place a recovered page image on the simulated disk (no I/O
        accounting — recovery happens before any workload runs)."""
        with self._latch:
            page.dirty = False
            self._disk[key] = page
            self._cache.pop(key, None)

    def ensure_page(self, segment_id: int, page_no: int) -> Page:
        """Fetch-or-create a page during redo, without I/O accounting.

        Redo may target a page that was allocated after the last
        checkpoint image was taken — it simply materializes it.
        """
        key = (segment_id, page_no)
        with self._latch:
            page = self._cache.get(key) or self._disk.get(key)
            if page is None:
                page = Page(page_no)
                self._disk[key] = page
            return page

    def peek_page(self, segment_id: int, page_no: int) -> Optional[Page]:
        """Return the page if allocated, else None (no I/O accounting)."""
        key = (segment_id, page_no)
        with self._latch:
            return self._cache.get(key) or self._disk.get(key)

    def segment_pages(self, segment_id: int) -> Dict[int, Page]:
        """Every allocated page of a segment, keyed by page_no."""
        with self._latch:
            pages: Dict[int, Page] = {}
            for (seg, pno), page in self._disk.items():
                if seg == segment_id:
                    pages[pno] = page
            for (seg, pno), page in self._cache.items():
                if seg == segment_id:
                    pages[pno] = page
            return pages

    def dirty_pages(self) -> Dict[PageKey, Page]:
        """Snapshot of the currently dirty cached pages (checkpointing)."""
        with self._latch:
            return {k: p for k, p in self._cache.items() if p.dirty}

    def restore_next_segment_id(self, next_id: int) -> None:
        """Advance the segment allocator past recovered segments."""
        with self._latch:
            self._next_segment_id = max(self._next_segment_id, next_id)

    def peek_next_segment_id(self) -> int:
        """Current allocator position (checkpointed, not allocated)."""
        with self._latch:
            return self._next_segment_id

    # -- internals ----------------------------------------------------------

    def _put(self, key: PageKey, page: Page) -> None:
        self._cache[key] = page
        self._cache.move_to_end(key)
        while len(self._cache) > self.capacity:
            old_key, old_page = self._cache.popitem(last=False)
            if old_page.dirty:
                self.stats.physical_writes += 1
                old_page.dirty = False
            self._disk[old_key] = old_page
