"""Simulated external file store.

Several parts of the paper hinge on index data stored *outside* the
database: §1 ("the index structure itself can either be stored in Oracle
database as tables, or externally in files"), §3.2.4's Daylight
file-based index baseline, and §5's transactional gap ("changes to the
index data are not [rolled back]").  This module is that external world:
an in-memory file system whose every operation *immediately* counts as a
file read/write — unlike LOB pages, there is no buffer cache between the
caller and the "disk", which is exactly why the paper observes the
file-based scheme doing more intermediate writes.

Writes to this store are **not** covered by the engine's transaction
rollback; the chemistry cartridge demonstrates repairing that with
database events (:mod:`repro.txn.events`).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.errors import StorageError
from repro.storage.buffer import IOStats


class FileStore:
    """A flat namespace of named byte files with eager I/O accounting."""

    def __init__(self, stats: IOStats):
        self.stats = stats
        self._files: Dict[str, bytearray] = {}
        #: latch: the store is engine-wide and bytearray splices are not
        #: atomic; each operation (including the I/O counters it bumps)
        #: runs latch-held
        self._latch = threading.RLock()

    def create(self, name: str, data: bytes = b"") -> "ExternalFile":
        """Create a file (error if it exists) and return an open handle."""
        with self._latch:
            return self._create(name, data)

    def _create(self, name: str, data: bytes) -> "ExternalFile":
        if name in self._files:
            raise StorageError(f"file {name!r} already exists")
        self._files[name] = bytearray(data)
        if data:
            self.stats.file_writes += 1
            self.stats.file_bytes_written += len(data)
        return ExternalFile(self, name)

    def open(self, name: str, create: bool = False) -> "ExternalFile":
        """Open an existing file (or create it when ``create=True``)."""
        with self._latch:
            if name not in self._files:
                if not create:
                    raise StorageError(f"no such file {name!r}")
                self._files[name] = bytearray()
            return ExternalFile(self, name)

    def delete(self, name: str) -> None:
        """Remove a file."""
        with self._latch:
            if name not in self._files:
                raise StorageError(f"no such file {name!r}")
            del self._files[name]

    def exists(self, name: str) -> bool:
        """True when ``name`` is a file in the store."""
        with self._latch:
            return name in self._files

    def listdir(self) -> List[str]:
        """All file names, sorted."""
        with self._latch:
            return sorted(self._files)

    def size(self, name: str) -> int:
        """Byte length of a file."""
        with self._latch:
            try:
                return len(self._files[name])
            except KeyError:
                raise StorageError(f"no such file {name!r}") from None

    # -- raw access used by ExternalFile ---------------------------------

    def _read(self, name: str, offset: int, count: int) -> bytes:
        with self._latch:
            return self._read_locked(name, offset, count)

    def _read_locked(self, name: str, offset: int, count: int) -> bytes:
        data = self._files.get(name)
        if data is None:
            raise StorageError(f"no such file {name!r}")
        self.stats.file_reads += 1
        out = bytes(data[offset:offset + count]) if count >= 0 else bytes(data[offset:])
        self.stats.file_bytes_read += len(out)
        return out

    def _write(self, name: str, offset: int, payload: bytes) -> int:
        with self._latch:
            return self._write_locked(name, offset, payload)

    def _write_locked(self, name: str, offset: int, payload: bytes) -> int:
        data = self._files.get(name)
        if data is None:
            raise StorageError(f"no such file {name!r}")
        if not payload:
            return 0  # zero-byte writes never extend the file
        if offset > len(data):
            data.extend(b"\x00" * (offset - len(data)))
        data[offset:offset + len(payload)] = payload
        self.stats.file_writes += 1
        self.stats.file_bytes_written += len(payload)
        return len(payload)

    def _truncate(self, name: str, size: int) -> None:
        with self._latch:
            data = self._files.get(name)
            if data is None:
                raise StorageError(f"no such file {name!r}")
            del data[size:]
            self.stats.file_writes += 1


class ExternalFile:
    """A positioned handle on a store file; same API as LobLocator."""

    def __init__(self, store: FileStore, name: str):
        self._store = store
        self.name = name
        self._pos = 0

    def read(self, count: int = -1) -> bytes:
        """Read up to ``count`` bytes from the current position (-1 = rest)."""
        data = self._store._read(self.name, self._pos, count)
        self._pos += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write ``data`` at the current position, advancing it."""
        written = self._store._write(self.name, self._pos, data)
        self._pos += written
        return written

    def seek(self, offset: int, whence: int = 0) -> int:
        """Reposition like ``io`` seek: 0=absolute, 1=relative, 2=from end."""
        if whence == 0:
            self._pos = offset
        elif whence == 1:
            self._pos += offset
        elif whence == 2:
            self._pos = self._store.size(self.name) + offset
        else:
            raise StorageError(f"bad whence {whence}")
        if self._pos < 0:
            raise StorageError("negative file position")
        return self._pos

    def tell(self) -> int:
        """Current position."""
        return self._pos

    def truncate(self, size: Optional[int] = None) -> int:
        """Shrink the file to ``size`` (default: current position)."""
        if size is None:
            size = self._pos
        self._store._truncate(self.name, size)
        return size

    def length(self) -> int:
        """Total file length in bytes."""
        return self._store.size(self.name)

    def __repr__(self) -> str:
        return f"ExternalFile({self.name!r}, len={self.length()})"
