"""Durable page store: checkpointed page images and IOT dumps.

``pages.db`` is an append-only file of checksummed records — heap page
images, whole-tree IOT dumps, and segment tombstones.  Startup scans the
file once to build an in-memory directory (last record wins, tombstones
erase a segment's earlier images) and stops cleanly at a torn tail, the
same discipline as the WAL.  Fuzzy checkpoints append the dirty page set
and may compact the file (rewrite live records to a temp file, fsync,
atomic rename) once dead records dominate.

A page image written here is *fuzzy*: DML may race the checkpoint.  That
is safe because rows are stored as fresh list copies (never mutated in
place) and recovery redo re-applies any record with ``lsn > page_lsn``,
repeating history over whatever image the checkpoint caught.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import WALError

__all__ = ["PageStore", "REC_PAGE", "REC_IOT", "REC_TOMB"]

#: record header: little-endian (record type, body length, crc32 of body)
_HEADER = struct.Struct("<BII")

REC_PAGE = 1  # {"seg", "page": Page.state() dict}
REC_IOT = 2   # {"seg", "rows": [...], "snap_lsn": int}
REC_TOMB = 3  # {"seg"}


class PageStore:
    """Append-only durable store for page images and IOT dumps."""

    #: compact when dead records exceed live ones by this factor
    COMPACT_RATIO = 3

    def __init__(self, path: str,
                 fault_check: Optional[Callable[[str], Any]] = None,
                 event_hook: Optional[Callable[[str], None]] = None):
        self.path = path
        self.fault_check = fault_check
        self.event_hook = event_hook
        self._latch = threading.RLock()
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        self._size = os.fstat(self._fd).st_size
        #: (seg, page_no) -> latest page-image payload
        self.pages: Dict[Tuple[int, int], Dict[str, Any]] = {}
        #: seg -> latest IOT dump payload
        self.iot_dumps: Dict[int, Dict[str, Any]] = {}
        self.records_written = 0
        self._live_records = 0

    # -- startup scan ---------------------------------------------------

    def load(self) -> None:
        """Build the in-memory directory from the file; truncate a torn
        tail so later appends start on a record boundary."""
        offset = 0
        size = self._size
        header_len = _HEADER.size
        with self._latch:
            self.pages.clear()
            self.iot_dumps.clear()
            while offset + header_len <= size:
                rec_type, body_len, crc = _HEADER.unpack(
                    os.pread(self._fd, header_len, offset))
                body_off = offset + header_len
                if body_off + body_len > size:
                    break  # torn tail
                body = os.pread(self._fd, body_len, body_off)
                if len(body) != body_len or zlib.crc32(body) != crc:
                    break  # torn tail
                try:
                    payload = pickle.loads(body)
                except Exception:
                    break
                self._index_record(rec_type, payload)
                offset = body_off + body_len
            if offset < size:
                os.ftruncate(self._fd, offset)
                self._size = offset
            self._live_records = len(self.pages) + len(self.iot_dumps)

    def _index_record(self, rec_type: int, payload: Dict[str, Any]) -> None:
        if rec_type == REC_PAGE:
            self.pages[(payload["seg"], payload["page"]["page_no"])] = payload
        elif rec_type == REC_IOT:
            self.iot_dumps[payload["seg"]] = payload
        elif rec_type == REC_TOMB:
            seg = payload["seg"]
            for key in [k for k in self.pages if k[0] == seg]:
                del self.pages[key]
            self.iot_dumps.pop(seg, None)

    # -- appends --------------------------------------------------------

    def _append(self, rec_type: int, payload: Dict[str, Any]) -> None:
        if self.fault_check is not None:
            rule = self.fault_check("page.flush")
            if rule is not None and rule.kind == "io_error":
                raise WALError(f"injected I/O error on {self.path}")
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        data = _HEADER.pack(rec_type, len(body), zlib.crc32(body)) + body
        with self._latch:
            os.pwrite(self._fd, data, self._size)
            self._size += len(data)
            self.records_written += 1
            self._index_record(rec_type, payload)
        if self.event_hook is not None:
            self.event_hook("page.flush")

    def write_page(self, seg: int, page_state: Dict[str, Any]) -> None:
        self._append(REC_PAGE, {"seg": seg, "page": page_state})

    def write_iot(self, seg: int, rows: List[List[Any]],
                  snap_lsn: int) -> None:
        self._append(REC_IOT, {"seg": seg, "rows": rows,
                               "snap_lsn": snap_lsn})

    def tombstone(self, seg: int) -> None:
        self._append(REC_TOMB, {"seg": seg})

    def fsync(self) -> None:
        os.fsync(self._fd)

    # -- directory reads ------------------------------------------------

    def segments(self) -> List[int]:
        with self._latch:
            segs = {seg for seg, __ in self.pages}
            segs.update(self.iot_dumps)
            return sorted(segs)

    def max_segment(self) -> int:
        segs = self.segments()
        return max(segs) if segs else 0

    def max_page_lsn(self) -> int:
        """Highest LSN stamped on any stored image (epoch recovery aid)."""
        with self._latch:
            lsns = [p["page"]["lsn"] for p in self.pages.values()]
            lsns.extend(d["snap_lsn"] for d in self.iot_dumps.values())
            return max(lsns) if lsns else 0

    def pages_of(self, seg: int) -> List[Dict[str, Any]]:
        with self._latch:
            return [p["page"] for (s, __), p in sorted(self.pages.items())
                    if s == seg]

    def iot_dump_of(self, seg: int) -> Optional[Dict[str, Any]]:
        with self._latch:
            return self.iot_dumps.get(seg)

    # -- compaction -----------------------------------------------------

    def should_compact(self) -> bool:
        with self._latch:
            dead = self.records_written - self._live_records
            return dead > max(16, self._live_records * self.COMPACT_RATIO)

    def compact(self) -> None:
        """Rewrite only the live directory to a fresh file, atomically."""
        with self._latch:
            tmp = self.path + ".tmp"
            fd = os.open(tmp, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                size = 0
                for payload in self.pages.values():
                    body = pickle.dumps(payload,
                                        protocol=pickle.HIGHEST_PROTOCOL)
                    data = _HEADER.pack(REC_PAGE, len(body),
                                        zlib.crc32(body)) + body
                    os.pwrite(fd, data, size)
                    size += len(data)
                for payload in self.iot_dumps.values():
                    body = pickle.dumps(payload,
                                        protocol=pickle.HIGHEST_PROTOCOL)
                    data = _HEADER.pack(REC_IOT, len(body),
                                        zlib.crc32(body)) + body
                    os.pwrite(fd, data, size)
                    size += len(data)
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, self.path)
            os.close(self._fd)
            self._fd = os.open(self.path, os.O_RDWR, 0o644)
            self._size = size
            self.records_written = len(self.pages) + len(self.iot_dumps)
            self._live_records = self.records_written

    def close(self) -> None:
        with self._latch:
            if self._fd >= 0:
                os.close(self._fd)
                self._fd = -1
