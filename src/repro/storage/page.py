"""Slotted pages: the unit of storage and of I/O accounting.

The engine simulates disk pages so the benchmarks can report the I/O
story the paper tells (e.g. §3.2.1's "reduced I/O because of no temporary
result table").  A page holds row slots up to a simulated byte budget;
deleted slots stay in place so rowids remain stable.
"""

from __future__ import annotations

from typing import Any, List, Optional

#: Simulated page size in bytes.
PAGE_SIZE = 4096

#: Per-slot bookkeeping overhead charged against the page budget.
SLOT_OVERHEAD = 16


def estimate_size(value: Any) -> int:
    """Rough byte-size estimate of a SQL value for page-budget accounting."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return SLOT_OVERHEAD + sum(estimate_size(v) for v in value)
    if hasattr(value, "as_dict"):  # ObjectValue
        return SLOT_OVERHEAD + sum(
            estimate_size(v) for v in value.as_dict().values())
    return 32


def estimate_row_size(row: List[Any]) -> int:
    """Byte-size estimate of a whole row including slot overhead."""
    return SLOT_OVERHEAD + sum(estimate_size(v) for v in row)


class Page:
    """A slotted page of rows.

    ``slots[i]`` is either a row (a list of values) or ``None`` for a
    deleted slot.  ``used`` tracks the simulated byte occupancy; a page
    accepts a new row while ``used + size <= PAGE_SIZE``.
    """

    __slots__ = ("page_no", "slots", "used", "dirty", "page_lsn")

    def __init__(self, page_no: int):
        self.page_no = page_no
        self.slots: List[Optional[List[Any]]] = []
        self.used = 0
        self.dirty = False
        #: LSN of the last WAL record applied to this page (0 = never
        #: logged).  The durable store persists it with the page image;
        #: recovery redo skips records with lsn <= page_lsn, and the
        #: WAL rule flushes the log through page_lsn before the page.
        self.page_lsn = 0

    def has_room(self, size: int) -> bool:
        """True when a row of ``size`` simulated bytes fits on this page."""
        return self.used + size <= PAGE_SIZE

    def insert(self, row: List[Any], size: int) -> int:
        """Append ``row`` and return its slot number."""
        self.slots.append(row)
        self.used += size
        self.dirty = True
        return len(self.slots) - 1

    def read_slot(self, slot: int) -> Optional[List[Any]]:
        """Return the row at ``slot`` or None when the slot is deleted/bad."""
        if 0 <= slot < len(self.slots):
            return self.slots[slot]
        return None

    def update(self, slot: int, row: List[Any], old_size: int, new_size: int) -> None:
        """Replace the row at ``slot`` in place (rowids never change)."""
        self.slots[slot] = row
        self.used += new_size - old_size
        self.dirty = True

    def delete(self, slot: int, size: int) -> None:
        """Mark ``slot`` deleted; the slot stays so later rowids are stable."""
        self.slots[slot] = None
        self.used -= size
        self.dirty = True

    def live_count(self) -> int:
        """Number of non-deleted rows on the page."""
        return sum(1 for s in self.slots if s is not None)

    def set_slot(self, slot: int, row: Optional[List[Any]]) -> None:
        """Slot-targeted write used by redo/undo replay.

        Pads the slot directory as needed and leaves ``used`` stale —
        replay is followed by :meth:`recompute_used` once per page.
        Idempotent: applying the same record twice lands the same state.
        """
        while len(self.slots) <= slot:
            self.slots.append(None)
        self.slots[slot] = row
        self.dirty = True

    def recompute_used(self) -> None:
        """Rebuild the byte-occupancy estimate from the live slots."""
        self.used = sum(min(estimate_row_size(r), PAGE_SIZE)
                        for r in self.slots if r is not None)

    def state(self) -> dict:
        """Plain-data image of the page for the durable page store."""
        return {"page_no": self.page_no, "slots": list(self.slots),
                "used": self.used, "lsn": self.page_lsn}

    @classmethod
    def from_state(cls, state: dict) -> "Page":
        page = cls(state["page_no"])
        page.slots = list(state["slots"])
        page.used = state["used"]
        page.page_lsn = state["lsn"]
        return page

    def __repr__(self) -> str:
        return (f"Page(no={self.page_no}, slots={len(self.slots)}, "
                f"live={self.live_count()}, used={self.used})")
