"""Heap tables and rowids.

A heap table is a segment of slotted pages; rows are addressed by a
:class:`RowId` (segment, page, slot) that stays valid across updates —
which is what lets domain indexes store rowids as index entries and
stream them back from ``ODCIIndexFetch`` (§2.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import InvalidRowIdError, StorageError
from repro.storage.buffer import BufferCache
from repro.storage.page import Page, PAGE_SIZE, estimate_row_size


@dataclass(frozen=True, order=True)
class RowId:
    """Physical row address: (segment, page, slot).  Ordered and hashable."""

    segment_id: int
    page_no: int
    slot: int

    def __repr__(self) -> str:
        return f"RID({self.segment_id}.{self.page_no}.{self.slot})"


class HeapTable:
    """An unordered table of rows stored on slotted pages.

    The table does not know its schema; the catalog layer owns column
    names/types and validates values before they reach here.
    """

    def __init__(self, buffer_cache: BufferCache, name: str = "?"):
        self.buffer = buffer_cache
        self.name = name
        self.segment_id = buffer_cache.allocate_segment()
        self._page_count = 0
        self._row_count = 0
        # Pages that most recently had room, checked before allocating.
        self._last_insert_page: Optional[int] = None

    # -- DML ------------------------------------------------------------

    def insert(self, row: List[Any]) -> RowId:
        """Store ``row`` and return its new rowid."""
        size = min(estimate_row_size(row), PAGE_SIZE)
        page = self._page_for_insert(size)
        slot = page.insert(list(row), size)
        self._row_count += 1
        return RowId(self.segment_id, page.page_no, slot)

    def fetch(self, rowid: RowId) -> List[Any]:
        """Return the row at ``rowid``; raises for dead or foreign rowids."""
        page = self._page_at(rowid)
        row = page.read_slot(rowid.slot)
        if row is None:
            raise InvalidRowIdError(f"{rowid} does not identify a live row")
        return row

    def fetch_or_none(self, rowid: RowId) -> Optional[List[Any]]:
        """Like :meth:`fetch` but returns None for a deleted slot."""
        try:
            page = self._page_at(rowid)
        except InvalidRowIdError:
            return None
        return page.read_slot(rowid.slot)

    def update(self, rowid: RowId, row: List[Any]) -> List[Any]:
        """Replace the row at ``rowid`` in place; returns the old row."""
        page = self._page_at(rowid, for_write=True)
        old = page.read_slot(rowid.slot)
        if old is None:
            raise InvalidRowIdError(f"{rowid} does not identify a live row")
        old_size = min(estimate_row_size(old), PAGE_SIZE)
        new_size = min(estimate_row_size(row), PAGE_SIZE)
        page.update(rowid.slot, list(row), old_size, new_size)
        return old

    def delete(self, rowid: RowId) -> List[Any]:
        """Delete the row at ``rowid``; returns the old row."""
        page = self._page_at(rowid, for_write=True)
        old = page.read_slot(rowid.slot)
        if old is None:
            raise InvalidRowIdError(f"{rowid} does not identify a live row")
        page.delete(rowid.slot, min(estimate_row_size(old), PAGE_SIZE))
        self._row_count -= 1
        return old

    def undelete(self, rowid: RowId, row: List[Any]) -> None:
        """Restore a deleted slot (used by transaction rollback)."""
        page = self._page_at(rowid, for_write=True)
        if page.read_slot(rowid.slot) is not None:
            raise StorageError(f"{rowid} is live; cannot undelete")
        size = min(estimate_row_size(row), PAGE_SIZE)
        page.update(rowid.slot, list(row), 0, size)
        self._row_count += 1

    def truncate(self) -> None:
        """Discard every row and page (DDL: fast, not undoable)."""
        self.buffer.drop_segment(self.segment_id)
        self._page_count = 0
        self._row_count = 0
        self._last_insert_page = None

    # -- scans ----------------------------------------------------------

    def scan(self) -> Iterator[Tuple[RowId, List[Any]]]:
        """Full table scan: yield (rowid, row) for every live row."""
        for page_no in range(self._page_count):
            page = self.buffer.get_page(self.segment_id, page_no)
            for slot, row in enumerate(page.slots):
                if row is not None:
                    yield RowId(self.segment_id, page_no, slot), row

    def scan_batches(self) -> Iterator[List[Tuple[RowId, List[Any]]]]:
        """Full scan, one page per batch.

        The batched executor pipeline consumes pages whole, so the
        buffer cache is latched once per page instead of once per row;
        empty pages produce no batch.
        """
        segment_id = self.segment_id
        for page_no in range(self._page_count):
            page = self.buffer.get_page(segment_id, page_no)
            batch = [(RowId(segment_id, page_no, slot), row)
                     for slot, row in enumerate(page.slots)
                     if row is not None]
            if batch:
                yield batch

    # -- statistics -------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Live row count (maintained incrementally)."""
        return self._row_count

    @property
    def page_count(self) -> int:
        """Allocated page count; proportional to full-scan cost."""
        return self._page_count

    # -- internals --------------------------------------------------------

    def _page_for_insert(self, size: int) -> Page:
        if self._last_insert_page is not None:
            page = self.buffer.get_page(
                self.segment_id, self._last_insert_page, for_write=True)
            if page.has_room(size):
                return page
        page = self.buffer.new_page(self.segment_id, self._page_count)
        self._page_count += 1
        self._last_insert_page = page.page_no
        return page

    def _page_at(self, rowid: RowId, for_write: bool = False) -> Page:
        if rowid.segment_id != self.segment_id:
            raise InvalidRowIdError(
                f"{rowid} belongs to another table (segment "
                f"{rowid.segment_id} != {self.segment_id})")
        if not 0 <= rowid.page_no < self._page_count:
            raise InvalidRowIdError(f"{rowid}: page out of range")
        return self.buffer.get_page(self.segment_id, rowid.page_no,
                                    for_write=for_write)
