"""Heap tables and rowids.

A heap table is a segment of slotted pages; rows are addressed by a
:class:`RowId` (segment, page, slot) that stays valid across updates —
which is what lets domain indexes store rowids as index entries and
stream them back from ``ODCIIndexFetch`` (§2.2.3).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import InvalidRowIdError, StorageError
from repro.storage.buffer import BufferCache
from repro.storage.page import Page, PAGE_SIZE, estimate_row_size
from repro.txn.mvcc import Snapshot, VersionStore


class RowId:
    """Physical row address: (segment, page, slot).  Ordered and hashable.

    Hand-rolled rather than a dataclass: rowids are created, hashed, and
    compared millions of times on index-build and sort paths, so the
    comparison methods work on one precomputed key tuple instead of the
    generated per-call tuple packing (and construction skips the frozen
    dataclass ``object.__setattr__`` detour).
    """

    __slots__ = ("segment_id", "page_no", "slot", "sort_key")

    def __init__(self, segment_id: int, page_no: int, slot: int):
        self.segment_id = segment_id
        self.page_no = page_no
        self.slot = slot
        #: plain-int tuple mirror of the address; sort paths decorate
        #: with it so comparisons stay C-level tuple compares
        self.sort_key = (segment_id, page_no, slot)

    def __hash__(self) -> int:
        return hash(self.sort_key)

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is RowId:
            return self.sort_key == other.sort_key
        return NotImplemented

    def __lt__(self, other: Any) -> Any:
        if other.__class__ is RowId:
            return self.sort_key < other.sort_key
        return NotImplemented

    def __le__(self, other: Any) -> Any:
        if other.__class__ is RowId:
            return self.sort_key <= other.sort_key
        return NotImplemented

    def __gt__(self, other: Any) -> Any:
        if other.__class__ is RowId:
            return self.sort_key > other.sort_key
        return NotImplemented

    def __ge__(self, other: Any) -> Any:
        if other.__class__ is RowId:
            return self.sort_key >= other.sort_key
        return NotImplemented

    def __repr__(self) -> str:
        return f"RID({self.segment_id}.{self.page_no}.{self.slot})"


class HeapTable:
    """An unordered table of rows stored on slotted pages.

    The table does not know its schema; the catalog layer owns column
    names/types and validates values before they reach here.
    """

    def __init__(self, buffer_cache: BufferCache, name: str = "?",
                 segment_id: Optional[int] = None):
        self.buffer = buffer_cache
        self.name = name
        # Recovery re-creates tables with their original segment ids so
        # logged rowids keep addressing the same pages.
        self.segment_id = (segment_id if segment_id is not None
                           else buffer_cache.allocate_segment())
        self._page_count = 0
        self._row_count = 0
        # Pages that most recently had room, checked before allocating.
        self._last_insert_page: Optional[int] = None
        #: MVCC version chains keyed by rowid (see repro.txn.mvcc)
        self.versions = VersionStore()

    # -- DML ------------------------------------------------------------

    def insert(self, row: List[Any], on_rowid=None) -> RowId:
        """Store ``row`` and return its new rowid.

        ``on_rowid`` closes the MVCC insert-visibility race: the slot is
        first filled with a ``None`` placeholder (invisible to scans),
        the callback registers the rowid's version chain, and only then
        is the real row written — so no snapshot reader can observe the
        uncommitted row through the untracked-rowid fast path.
        """
        size = min(estimate_row_size(row), PAGE_SIZE)
        page = self._page_for_insert(size)
        if on_rowid is None:
            slot = page.insert(list(row), size)
            self._row_count += 1
            return RowId(self.segment_id, page.page_no, slot)
        slot = page.insert(None, size)
        rowid = RowId(self.segment_id, page.page_no, slot)
        on_rowid(rowid)
        page.update(slot, list(row), size, size)
        self._row_count += 1
        return rowid

    def insert_bulk(self, rows: List[List[Any]],
                    with_rowids: bool = True,
                    presorted: bool = False) -> List[RowId]:
        """Store ``rows`` and return their rowids in input order.

        Pages fill append-only: each is latched for write once per run
        of rows it absorbs rather than once per row.  Heap rowids are
        byproducts of page placement, so ``with_rowids=False`` still
        returns them, and ``presorted`` is irrelevant to an unordered
        heap (both flags only matter for key-organized storage).
        """
        rowids: List[RowId] = []
        page: Optional[Page] = None
        for row in rows:
            size = min(estimate_row_size(row), PAGE_SIZE)
            if page is None or not page.has_room(size):
                page = self._page_for_insert(size)
            slot = page.insert(list(row), size)
            rowids.append(RowId(self.segment_id, page.page_no, slot))
        self._row_count += len(rows)
        return rowids

    def fetch(self, rowid: RowId) -> List[Any]:
        """Return the row at ``rowid``; raises for dead or foreign rowids."""
        page = self._page_at(rowid)
        row = page.read_slot(rowid.slot)
        if row is None:
            raise InvalidRowIdError(f"{rowid} does not identify a live row")
        return row

    def fetch_or_none(self, rowid: RowId,
                      snapshot: Optional[Snapshot] = None
                      ) -> Optional[List[Any]]:
        """Like :meth:`fetch` but returns None for a deleted slot.

        With a ``snapshot``, the slot value is resolved through the
        row's version chain (consistent read); index-returned rowids go
        through here, so the index may say "maybe" but the table says
        the truth for this snapshot.
        """
        try:
            page = self._page_at(rowid)
        except InvalidRowIdError:
            return None
        current = page.read_slot(rowid.slot)
        if snapshot is None:
            return current
        return self.versions.resolve(rowid, current, snapshot)

    def update(self, rowid: RowId, row: List[Any]) -> List[Any]:
        """Replace the row at ``rowid`` in place; returns the old row."""
        page = self._page_at(rowid, for_write=True)
        old = page.read_slot(rowid.slot)
        if old is None:
            raise InvalidRowIdError(f"{rowid} does not identify a live row")
        old_size = min(estimate_row_size(old), PAGE_SIZE)
        new_size = min(estimate_row_size(row), PAGE_SIZE)
        page.update(rowid.slot, list(row), old_size, new_size)
        return old

    def delete(self, rowid: RowId) -> List[Any]:
        """Delete the row at ``rowid``; returns the old row."""
        page = self._page_at(rowid, for_write=True)
        old = page.read_slot(rowid.slot)
        if old is None:
            raise InvalidRowIdError(f"{rowid} does not identify a live row")
        page.delete(rowid.slot, min(estimate_row_size(old), PAGE_SIZE))
        self._row_count -= 1
        return old

    def undelete(self, rowid: RowId, row: List[Any]) -> None:
        """Restore a deleted slot (used by transaction rollback)."""
        page = self._page_at(rowid, for_write=True)
        if page.read_slot(rowid.slot) is not None:
            raise StorageError(f"{rowid} is live; cannot undelete")
        size = min(estimate_row_size(row), PAGE_SIZE)
        page.update(rowid.slot, list(row), 0, size)
        self._row_count += 1

    def truncate(self) -> None:
        """Discard every row and page (DDL: fast, not undoable)."""
        self.buffer.drop_segment(self.segment_id)
        self._page_count = 0
        self._row_count = 0
        self._last_insert_page = None
        self.versions.clear()

    # -- scans ----------------------------------------------------------

    def scan(self) -> Iterator[Tuple[RowId, List[Any]]]:
        """Full table scan: yield (rowid, row) for every live row."""
        for page_no in range(self._page_count):
            page = self.buffer.get_page(self.segment_id, page_no)
            for slot, row in enumerate(page.slots):
                if row is not None:
                    yield RowId(self.segment_id, page_no, slot), row

    def scan_batches(self, snapshot: Optional[Snapshot] = None
                     ) -> Iterator[List[Tuple[RowId, List[Any]]]]:
        """Full scan, one page per batch.

        The batched executor pipeline consumes pages whole, so the
        buffer cache is latched once per page instead of once per row;
        empty pages produce no batch.  With a ``snapshot``, every slot —
        live or tombstoned — is resolved through its version chain, so
        the scan sees exactly the rows committed as of the snapshot's
        SCN plus the owning transaction's own writes.
        """
        segment_id = self.segment_id
        if snapshot is None:
            for page_no in range(self._page_count):
                page = self.buffer.get_page(segment_id, page_no)
                batch = [(RowId(segment_id, page_no, slot), row)
                         for slot, row in enumerate(page.slots)
                         if row is not None]
                if batch:
                    yield batch
            return
        resolve = self.versions.resolve
        for page_no in range(self._page_count):
            page = self.buffer.get_page(segment_id, page_no)
            batch = []
            for slot, row in enumerate(list(page.slots)):
                rowid = RowId(segment_id, page_no, slot)
                value = resolve(rowid, row, snapshot)
                if value is not None:
                    batch.append((rowid, value))
            if batch:
                yield batch

    def scan_batches_columnar(
            self, width: int, snapshot: Optional[Snapshot] = None
            ) -> Iterator[Tuple[List[RowId], List[List[Any]]]]:
        """Full scan, one page per batch, transposed into columns.

        Yields ``(rowids, columns)`` where ``columns[c][i]`` is column
        ``c`` of the batch's row ``i`` — the layer above wraps these in
        a ``ColumnBatch``.  ``width`` is the table's column count (the
        heap does not know its schema); it sizes the columns when a page
        is empty after filtering.  Same snapshot semantics as
        :meth:`scan_batches`: version-chain resolution fills the columns
        directly, no intermediate row-tuple batch is built.
        """
        yield from self.scan_page_range_columnar(
            0, self._page_count, width, snapshot)

    def scan_page_range_columnar(
            self, start: int, stop: int, width: int,
            snapshot: Optional[Snapshot] = None
            ) -> Iterator[Tuple[List[RowId], List[List[Any]]]]:
        """:meth:`scan_batches_columnar` restricted to ``[start, stop)``
        — the columnar morsel unit for parallel scans."""
        segment_id = self.segment_id
        stop = min(stop, self._page_count)
        resolve = self.versions.resolve if snapshot is not None else None
        for page_no in range(max(0, start), stop):
            page = self.buffer.get_page(segment_id, page_no)
            rowids: List[RowId] = []
            rows: List[List[Any]] = []
            if resolve is None:
                for slot, row in enumerate(page.slots):
                    if row is not None:
                        rowids.append(RowId(segment_id, page_no, slot))
                        rows.append(row)
            else:
                for slot, row in enumerate(list(page.slots)):
                    rowid = RowId(segment_id, page_no, slot)
                    value = resolve(rowid, row, snapshot)
                    if value is not None:
                        rowids.append(rowid)
                        rows.append(value)
            if rowids:
                columns = [list(col) for col in zip(*rows)]
                yield rowids, columns

    def scan_page_range(self, start: int, stop: int,
                        snapshot: Optional[Snapshot] = None
                        ) -> Iterator[List[Tuple[RowId, List[Any]]]]:
        """:meth:`scan_batches` restricted to pages ``[start, stop)``.

        The unit a parallel morsel covers: each worker scans a disjoint
        contiguous page range, so concurrent morsels of one statement
        never touch the same page.  Same snapshot semantics as
        :meth:`scan_batches` (version-chain resolution per slot).
        """
        segment_id = self.segment_id
        stop = min(stop, self._page_count)
        if snapshot is None:
            for page_no in range(max(0, start), stop):
                page = self.buffer.get_page(segment_id, page_no)
                batch = [(RowId(segment_id, page_no, slot), row)
                         for slot, row in enumerate(page.slots)
                         if row is not None]
                if batch:
                    yield batch
            return
        resolve = self.versions.resolve
        for page_no in range(max(0, start), stop):
            page = self.buffer.get_page(segment_id, page_no)
            batch = []
            for slot, row in enumerate(list(page.slots)):
                rowid = RowId(segment_id, page_no, slot)
                value = resolve(rowid, row, snapshot)
                if value is not None:
                    batch.append((rowid, value))
            if batch:
                yield batch

    # -- durability support ----------------------------------------------

    def stamp_lsn(self, rowid: RowId, lsn: int) -> None:
        """Record the WAL LSN of the last change to ``rowid``'s page.

        Only called when durability is on; the extra ``get_page`` does
        not disturb the exact-I/O benchmark assertions, which run with
        durability off.
        """
        page = self.buffer.get_page(self.segment_id, rowid.page_no)
        if lsn > page.page_lsn:
            page.page_lsn = lsn

    def rebuild_from_pages(self) -> None:
        """Recompute counters from recovered page images (restart)."""
        pages = self.buffer.segment_pages(self.segment_id)
        self._page_count = (max(pages) + 1) if pages else 0
        self._row_count = sum(p.live_count() for p in pages.values())
        self._last_insert_page = None
        for page in pages.values():
            page.recompute_used()

    # -- statistics -------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Live row count (maintained incrementally)."""
        return self._row_count

    @property
    def page_count(self) -> int:
        """Allocated page count; proportional to full-scan cost."""
        return self._page_count

    # -- internals --------------------------------------------------------

    def _page_for_insert(self, size: int) -> Page:
        if self._last_insert_page is not None:
            page = self.buffer.get_page(
                self.segment_id, self._last_insert_page, for_write=True)
            if page.has_room(size):
                return page
        page = self.buffer.new_page(self.segment_id, self._page_count)
        self._page_count += 1
        self._last_insert_page = page.page_no
        return page

    def _page_at(self, rowid: RowId, for_write: bool = False) -> Page:
        if rowid.segment_id != self.segment_id:
            raise InvalidRowIdError(
                f"{rowid} belongs to another table (segment "
                f"{rowid.segment_id} != {self.segment_id})")
        if not 0 <= rowid.page_no < self._page_count:
            raise InvalidRowIdError(f"{rowid}: page out of range")
        return self.buffer.get_page(self.segment_id, rowid.page_no,
                                    for_write=for_write)
