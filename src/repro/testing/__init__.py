"""Deterministic testing utilities for the extensible-indexing engine."""

from repro.testing.faults import (FaultPlan, LedgerEntry,
                                  StorageFaultPlan, StorageLedgerEntry)

__all__ = ["FaultPlan", "LedgerEntry",
           "StorageFaultPlan", "StorageLedgerEntry"]
