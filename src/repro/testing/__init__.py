"""Deterministic testing utilities for the extensible-indexing engine."""

from repro.testing.faults import FaultPlan, LedgerEntry

__all__ = ["FaultPlan", "LedgerEntry"]
