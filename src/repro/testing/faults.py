"""Deterministic fault injection at the ODCI dispatch seam.

Failure paths are the whole point of the dispatcher, and they must be
testable without sleeping, threading, or monkey-patching cartridge
internals.  A :class:`FaultPlan` installs itself on a database's
:class:`~repro.core.dispatch.CallbackDispatcher` and sees every ODCI
invocation *before* the cartridge routine runs.  Rules are matched by
routine name (``"ODCIIndexInsert"``) and optionally by index name, and
fire on exact invocation ordinals — the nth matching call, counted per
rule — so a test can say "kill the insert callback at row 3 of this
statement" and get exactly that, every run.

Three rule kinds cover the taxonomy:

* :meth:`FaultPlan.fail_on_call` — raise :class:`~repro.errors.ODCIError`
  on the nth matching invocation (a hard cartridge failure);
* :meth:`FaultPlan.fail_transient` — raise
  :class:`~repro.errors.TransientCallbackError` for the first ``times``
  matching invocations (exercises the dispatcher's bounded retry);
* :meth:`FaultPlan.delay` — report synthetic latency for matching
  invocations.  No real sleep happens; the dispatcher adds the synthetic
  seconds to the measured elapsed time, so wall-clock-budget tests are
  instant and deterministic.

Every invocation the plan observes — faulted or not — is appended to
:attr:`FaultPlan.ledger`, so tests can assert on exact callback
sequences ("ODCIIndexClose fired exactly once").

:class:`StorageFaultPlan` applies the same discipline one layer down, at
the durable-storage seam: it injects device-level failures — torn
writes, short fsyncs, I/O errors — into the write-ahead log and page
store, the failure modes a SIGKILL harness cannot produce because the
OS preserves completed writes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ODCIError, TransientCallbackError


@dataclass
class LedgerEntry:
    """One observed dispatch: what ran, for which index, what we did."""

    routine: str
    index_name: str
    #: "ok" (passed through), "fault", "transient", or "delay".
    outcome: str
    #: 1-based ordinal among invocations matching (routine, index) filters.
    ordinal: int


@dataclass
class _Rule:
    routine: str
    index_name: Optional[str]  # None matches any index
    kind: str                  # "fail" | "transient" | "delay"
    nth: int = 0               # "fail": fire on this ordinal
    times: int = 0             # "transient": fire on ordinals 1..times
    seconds: float = 0.0       # "delay": synthetic latency
    message: str = "injected fault"
    #: invocations matching this rule so far
    seen: int = 0

    def matches(self, routine: str, index_name: str) -> bool:
        if self.routine != routine:
            return False
        return self.index_name is None or self.index_name == index_name


class FaultPlan:
    """Context manager injecting deterministic faults into a database.

    Usage::

        with FaultPlan(db) as plan:
            plan.fail_on_call("ODCIIndexInsert", nth=3, index="docs_idx")
            with pytest.raises(...):
                db.execute("INSERT ...")
        assert plan.calls("ODCIIndexInsert") == 3

    Entering installs the plan on ``db.dispatcher``; exiting uninstalls
    it (restoring whatever was there before), so faults never leak
    between tests.
    """

    def __init__(self, db: Any):
        self.db = db
        self.rules: List[_Rule] = []
        self.ledger: List[LedgerEntry] = []
        self._counts: Dict[Tuple[str, str], int] = {}
        self._previous: Any = None
        self._installed = False
        #: ordinal counters, rule state, and the ledger are shared
        #: mutable state; parallel execution dispatches ODCI calls from
        #: worker threads, so matching must be atomic per invocation
        self._latch = threading.Lock()

    # ------------------------------------------------------------------
    # rule construction
    # ------------------------------------------------------------------

    def fail_on_call(self, routine: str, nth: int = 1,
                     index: Optional[str] = None,
                     message: str = "injected fault") -> "FaultPlan":
        """Raise ODCIError on the nth matching invocation (1-based)."""
        self.rules.append(_Rule(routine=routine, index_name=index,
                                kind="fail", nth=nth, message=message))
        return self

    def fail_transient(self, routine: str, times: int = 1,
                       index: Optional[str] = None) -> "FaultPlan":
        """Raise TransientCallbackError for the first ``times`` calls."""
        self.rules.append(_Rule(routine=routine, index_name=index,
                                kind="transient", times=times))
        return self

    def delay(self, routine: str, ms: float,
              index: Optional[str] = None) -> "FaultPlan":
        """Report ``ms`` of synthetic latency on every matching call."""
        self.rules.append(_Rule(routine=routine, index_name=index,
                                kind="delay", seconds=ms / 1000.0))
        return self

    # ------------------------------------------------------------------
    # ledger queries
    # ------------------------------------------------------------------

    def calls(self, routine: str, index: Optional[str] = None) -> int:
        """How many invocations of ``routine`` the plan observed."""
        return sum(1 for e in self.ledger
                   if e.routine == routine
                   and (index is None or e.index_name == index))

    def outcomes(self, routine: str) -> List[str]:
        """The outcome sequence for ``routine``, in invocation order."""
        return [e.outcome for e in self.ledger if e.routine == routine]

    # ------------------------------------------------------------------
    # dispatcher seam
    # ------------------------------------------------------------------

    def on_call(self, routine: str, index_name: str) -> float:
        """Called by the dispatcher before each cartridge invocation.

        Returns synthetic delay seconds to add to measured elapsed time;
        raises to inject a fault.  Each (routine, index) pair keeps its
        own 1-based ordinal counter.
        """
        with self._latch:
            key = (routine, index_name)
            ordinal = self._counts.get(key, 0) + 1
            self._counts[key] = ordinal
            delay = 0.0
            outcome = "ok"
            fault: Optional[BaseException] = None
            for rule in self.rules:
                if not rule.matches(routine, index_name):
                    continue
                rule.seen += 1
                if rule.kind == "fail" and rule.seen == rule.nth:
                    outcome = "fault"
                    fault = ODCIError(routine, rule.message)
                elif rule.kind == "transient" and rule.seen <= rule.times:
                    outcome = "transient"
                    fault = TransientCallbackError(routine)
                elif rule.kind == "delay":
                    delay += rule.seconds
                    if outcome == "ok":
                        outcome = "delay"
            self.ledger.append(
                LedgerEntry(routine=routine, index_name=index_name,
                            outcome=outcome, ordinal=ordinal))
        if fault is not None:
            raise fault
        return delay

    # ------------------------------------------------------------------
    # install / uninstall
    # ------------------------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        dispatcher = self.db.dispatcher
        self._previous = dispatcher.fault_plan
        dispatcher.fault_plan = self
        self._installed = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._installed:
            self.db.dispatcher.fault_plan = self._previous
            self._installed = False


# ---------------------------------------------------------------------------
# Storage-level fault injection (log device / page store)
# ---------------------------------------------------------------------------

@dataclass
class StorageLedgerEntry:
    """One observed storage event: which device op, what we did."""

    event: str
    #: "ok", "io_error", "torn", or "short_fsync".
    outcome: str
    #: 1-based ordinal among events with this name.
    ordinal: int


@dataclass
class _StorageRule:
    event: str       # "wal.append" | "wal.fsync" | "page.flush"
    kind: str        # "io_error" | "torn" | "short_fsync"
    nth: int = 1     # fire on this ordinal (1-based, counted per event)
    fraction: float = 0.5   # "torn": fraction of the record persisted
    shortfall: int = 64     # "short_fsync": trailing bytes silently dropped
    seen: int = 0


class StorageFaultPlan:
    """Deterministic device-level faults for the durability layer.

    Install via ``Engine(..., storage_fault_plan=plan)`` — the engine
    hands the plan's :meth:`check` to its :class:`~repro.storage.wal.
    LogDevice` and :class:`~repro.storage.pagestore.PageStore`, which
    consult it before each physical operation:

    * ``io_error`` — the op raises :class:`~repro.errors.WALError` and
      (for the log) marks the device failed, so later commits refuse.
    * ``torn`` — a WAL append persists only a ``fraction`` prefix of the
      record, modeling a crash mid-sector.  The checksum-guarded scan
      must stop cleanly at the torn record.
    * ``short_fsync`` — the fsync reports success but the device quietly
      drops the last ``shortfall`` bytes; the lie is exposed only by
      :meth:`~repro.storage.wal.LogDevice.simulate_crash`.

    Rules fire on exact per-event ordinals, and every observed event is
    ledgered, mirroring :class:`FaultPlan`.
    """

    def __init__(self):
        self.rules: List[_StorageRule] = []
        self.ledger: List[StorageLedgerEntry] = []
        self._counts: Dict[str, int] = {}

    # -- rule construction ---------------------------------------------

    def io_error(self, event: str, nth: int = 1) -> "StorageFaultPlan":
        """Fail the nth occurrence of ``event`` with a WALError."""
        self.rules.append(_StorageRule(event=event, kind="io_error", nth=nth))
        return self

    def torn_write(self, event: str = "wal.append", nth: int = 1,
                   fraction: float = 0.5) -> "StorageFaultPlan":
        """Persist only a prefix of the nth write (partial-sector crash)."""
        self.rules.append(_StorageRule(event=event, kind="torn", nth=nth,
                                       fraction=fraction))
        return self

    def short_fsync(self, event: str = "wal.fsync", nth: int = 1,
                    shortfall: int = 64) -> "StorageFaultPlan":
        """Make the nth fsync lie: the last ``shortfall`` bytes are lost."""
        self.rules.append(_StorageRule(event=event, kind="short_fsync",
                                       nth=nth, shortfall=shortfall))
        return self

    # -- ledger queries -------------------------------------------------

    def calls(self, event: str) -> int:
        return sum(1 for e in self.ledger if e.event == event)

    def outcomes(self, event: str) -> List[str]:
        return [e.outcome for e in self.ledger if e.event == event]

    # -- device seam ----------------------------------------------------

    def check(self, event: str) -> Optional[_StorageRule]:
        """Called by the device before each physical op.

        Returns the matching rule (the device applies its kind) or None.
        """
        ordinal = self._counts.get(event, 0) + 1
        self._counts[event] = ordinal
        hit: Optional[_StorageRule] = None
        for rule in self.rules:
            if rule.event != event:
                continue
            rule.seen += 1
            if rule.seen == rule.nth and hit is None:
                hit = rule
        self.ledger.append(StorageLedgerEntry(
            event=event, outcome=hit.kind if hit else "ok", ordinal=ordinal))
        return hit
