"""Kill-at-random-point crash-recovery harness.

The durability proof is empirical: run a seeded mixed-DML workload in a
subprocess, SIGKILL it at a scheduled storage event, reopen the data
directory, run restart recovery, and check the ACID ledger:

* **Durability** — every transaction the child *acked* (it wrote the
  tag to ``acked.log`` and fsynced it only after ``commit()`` returned)
  is fully present after recovery.
* **Atomicity** — every other attempted transaction is all-or-nothing:
  either every row it wrote survives or none does.  Losers killed
  mid-flight must leave no partial effects.
* **Consistency** — shared counters equal the number of recovered
  transactions that incremented them; native-index lookups agree with
  full scans; a transaction-snapshot read agrees with a current read.
* **Idempotence** — with some seeds the harness SIGKILLs the *recovery
  run itself* (at a ``recovery.redo``/``recovery.undo`` event) and then
  recovers again; the final state must still satisfy all of the above.

Everything is derived deterministically from one integer seed: the
workload plan, the kill point, and the re-kill decision.  A failing
seed therefore replays exactly::

    PYTHONPATH=src python -m repro.testing.crash --seed 1234 -v

and a sweep runs ``--seeds N``.  The scheduled kill arrives via the
engine's ``durability_event_hook`` — ``os.kill(os.getpid(), SIGKILL)``
from whatever thread trips the counter, which is as close to pulling
the plug as a process can get (the OS keeps completed writes, nothing
else).  Device-level lies (torn writes, short fsyncs) are the province
of :class:`~repro.testing.faults.StorageFaultPlan`, not this harness.
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

ACKED_FILE = "acked.log"
SETUP_TAG = "SETUP"

#: events a workload kill can target, with the nth-occurrence range the
#: seed draws from (small nth → early crash, large → late or clean run)
KILL_KINDS: List[Tuple[str, int]] = [
    ("wal.append", 260),
    ("wal.fsync", 90),
    ("page.flush", 40),
    ("checkpoint.begin", 8),
]
#: events a recovery re-kill can target
RECOVERY_KILL_KINDS: List[Tuple[str, int]] = [
    ("recovery.redo", 12),
    ("recovery.undo", 6),
]

COUNTER_KEYS = 8
KV_BASE = 10_000


@dataclass
class TxnPlan:
    """One transaction of the workload, derived purely from the seed."""

    index: int
    tag: str
    rows: List[Tuple[int, int]]          # (n, v) inserts into h
    update_n: Optional[int]              # own row updated: v -> v + 1000
    delete_n: Optional[int]              # own row deleted afterwards
    counters: List[int] = field(default_factory=list)

    @property
    def kv_key(self) -> int:
        return KV_BASE + self.index

    def expected_h_rows(self) -> Dict[int, int]:
        """Final (n -> v) content of h for this txn, if it committed."""
        out = dict(self.rows)
        if self.update_n is not None:
            out[self.update_n] += 1000
        if self.delete_n is not None:
            del out[self.delete_n]
        return out


def plan_workload(seed: int, txns: int = 40) -> List[TxnPlan]:
    """The deterministic transaction mix for one seed (pure function)."""
    rng = random.Random(seed)
    plans = []
    for i in range(txns):
        nrows = rng.randint(1, 5)
        rows = [(n, rng.randint(0, 999)) for n in range(nrows)]
        update_n = rng.randrange(nrows) if rng.random() < 0.5 else None
        delete_n = None
        if nrows >= 2 and rng.random() < 0.3:
            candidates = [n for n, __ in rows if n != update_n]
            if candidates:
                delete_n = rng.choice(candidates)
        counters = sorted(rng.sample(range(COUNTER_KEYS),
                                     rng.randint(0, 2)))
        plans.append(TxnPlan(index=i, tag=f"t{i:03d}", rows=rows,
                             update_n=update_n, delete_n=delete_n,
                             counters=counters))
    return plans


def kill_spec(seed: int) -> Tuple[str, int]:
    """(event kind, nth occurrence) at which the child SIGKILLs itself."""
    rng = random.Random(seed * 7919 + 13)
    kind, span = rng.choice(KILL_KINDS)
    return kind, rng.randint(1, span)


def recovery_kill_spec(seed: int) -> Optional[Tuple[str, int]]:
    """Whether (and where) to SIGKILL the recovery run itself."""
    rng = random.Random(seed * 104729 + 41)
    if rng.random() < 0.5:
        return None
    kind, span = rng.choice(RECOVERY_KILL_KINDS)
    return kind, rng.randint(1, span)


def checkpoint_interval(seed: int) -> int:
    """Commits between auto-checkpoints (small → checkpoints mid-sweep)."""
    return random.Random(seed * 31 + 7).randint(4, 12)


class _Killer:
    """Counts durability events; SIGKILLs the process at the nth match."""

    def __init__(self, kind: str, nth: int):
        self.kind = kind
        self.nth = nth
        self._count = 0
        self._latch = threading.Lock()

    def __call__(self, event: str) -> None:
        if event != self.kind:
            return
        with self._latch:
            self._count += 1
            fire = self._count == self.nth
        if fire:
            os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# child: run the workload, die on schedule
# ----------------------------------------------------------------------

def _ack(fd: int, tag: str) -> None:
    """Durably record that a commit was acknowledged to the 'client'."""
    os.write(fd, (tag + "\n").encode())
    os.fsync(fd)


def run_child(data_dir: str, seed: int, kind: str, nth: int) -> None:
    from repro.sql.session import Database

    ack_fd = os.open(os.path.join(data_dir, ACKED_FILE),
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    db = Database(data_dir=data_dir,
                  wal_checkpoint_interval=checkpoint_interval(seed),
                  durability_event_hook=_Killer(kind, nth))
    db.execute("CREATE TABLE h (tag VARCHAR2(10), n NUMBER, v NUMBER)")
    db.execute("CREATE INDEX h_tag ON h (tag)")
    db.execute("CREATE TABLE kv (a NUMBER, b NUMBER, "
               "PRIMARY KEY (a)) ORGANIZATION INDEX")
    db.execute("CREATE TABLE counters (id NUMBER, n NUMBER, "
               "PRIMARY KEY (id)) ORGANIZATION INDEX")
    db.begin()
    for c in range(COUNTER_KEYS):
        db.execute(f"INSERT INTO counters VALUES ({c}, 0)")
    db.commit()
    _ack(ack_fd, SETUP_TAG)

    plans = plan_workload(seed)
    workers = 2
    errors: List[BaseException] = []

    def run_plans(worker: int) -> None:
        session = db.engine.connect(user="main")
        try:
            for plan in plans[worker::workers]:
                session.begin()
                for n, v in plan.rows:
                    session.execute("INSERT INTO h VALUES "
                                    f"('{plan.tag}', {n}, {v})")
                if plan.update_n is not None:
                    session.execute("UPDATE h SET v = v + 1000 WHERE "
                                    f"tag = '{plan.tag}' "
                                    f"AND n = {plan.update_n}")
                if plan.delete_n is not None:
                    session.execute(f"DELETE FROM h WHERE "
                                    f"tag = '{plan.tag}' "
                                    f"AND n = {plan.delete_n}")
                session.execute(f"INSERT INTO kv VALUES "
                                f"({plan.kv_key}, {plan.index})")
                for c in plan.counters:
                    session.execute("UPDATE counters SET n = n + 1 "
                                    f"WHERE id = {c}")
                session.commit()
                _ack(ack_fd, plan.tag)
        except BaseException as exc:  # surfaced by the parent as failure
            errors.append(exc)

    threads = [threading.Thread(target=run_plans, args=(w,), daemon=True)
               for w in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    db.close()


def run_recover_child(data_dir: str, kind: str, nth: int) -> None:
    """Reopen with a kill scheduled inside recovery itself."""
    from repro.sql.session import Database
    db = Database(data_dir=data_dir,
                  durability_event_hook=_Killer(kind, nth))
    db.close()


# ----------------------------------------------------------------------
# parent: orchestrate, recover, verify
# ----------------------------------------------------------------------

class CrashVerifyError(AssertionError):
    pass


def _child_env() -> Dict[str, str]:
    import repro
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _read_acked(data_dir: str) -> List[str]:
    path = os.path.join(data_dir, ACKED_FILE)
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        return [line.strip() for line in fh if line.strip()]


def verify(data_dir: str, seed: int, acked: List[str]) -> Dict[str, Any]:
    """Reopen the directory, recover, and check the ACID ledger."""
    from repro.sql.session import Database

    plans = plan_workload(seed)
    by_tag = {p.tag: p for p in plans}
    db = Database(data_dir=data_dir)
    try:
        stats = db.engine.recovery_stats
        tables = {r[0] for r in
                  db.execute("SELECT table_name FROM user_tables")
                  .fetchall()}
        if not {"h", "kv", "counters"} <= tables:
            # killed before setup became durable; nothing may be acked
            if acked:
                raise CrashVerifyError(
                    f"seed {seed}: acked {acked} but schema absent")
            return {"recovered": 0, "acked": 0,
                    "stats": stats.snapshot() if stats else None}

        kv = dict(db.execute("SELECT a, b FROM kv").fetchall())
        h_rows = db.execute("SELECT tag, n, v FROM h").fetchall()
        h_by_tag: Dict[str, Dict[int, int]] = {}
        for tag, n, v in h_rows:
            h_by_tag.setdefault(tag, {})[n] = v
        recovered = {p.tag for p in plans if p.kv_key in kv}

        # durability: every acked transaction survived
        for tag in acked:
            if tag != SETUP_TAG and tag not in recovered:
                raise CrashVerifyError(
                    f"seed {seed}: acked txn {tag} lost after recovery")

        # atomicity: recovered txns are complete, others invisible
        for plan in plans:
            expected = plan.expected_h_rows()
            got = h_by_tag.get(plan.tag, {})
            if plan.tag in recovered:
                if got != expected:
                    raise CrashVerifyError(
                        f"seed {seed}: txn {plan.tag} partial: "
                        f"expected {expected}, got {got}")
                if kv[plan.kv_key] != plan.index:
                    raise CrashVerifyError(
                        f"seed {seed}: txn {plan.tag} kv payload "
                        f"{kv[plan.kv_key]} != {plan.index}")
            elif got:
                raise CrashVerifyError(
                    f"seed {seed}: loser {plan.tag} left rows {got}")

        # consistency: counters count exactly the recovered incrementers
        counters = dict(
            db.execute("SELECT id, n FROM counters").fetchall())
        for c in range(COUNTER_KEYS):
            expect = sum(1 for p in plans
                         if p.tag in recovered and c in p.counters)
            if counters.get(c, 0) != expect:
                raise CrashVerifyError(
                    f"seed {seed}: counter {c} = {counters.get(c)}, "
                    f"expected {expect}")

        # native-index parity: rebuilt h_tag agrees with the full scan
        for tag in sorted(recovered)[:5]:
            via_index = db.execute(
                f"SELECT n, v FROM h WHERE tag = '{tag}'").fetchall()
            if dict(via_index) != h_by_tag.get(tag, {}):
                raise CrashVerifyError(
                    f"seed {seed}: index lookup for {tag} disagrees "
                    f"with scan: {via_index} vs {h_by_tag.get(tag)}")

        # MVCC parity: a transaction snapshot sees the recovered state
        db.begin()
        snap_count = db.execute("SELECT COUNT(*) FROM h").fetchall()[0][0]
        db.commit()
        if snap_count != len(h_rows):
            raise CrashVerifyError(
                f"seed {seed}: snapshot count {snap_count} != "
                f"current {len(h_rows)}")

        # index health: nothing may recover as IN_PROGRESS
        states = db.execute(
            "SELECT index_name, index_type FROM user_indexes").fetchall()
        if not any(name == "h_tag" for name, __ in states):
            raise CrashVerifyError(f"seed {seed}: index h_tag lost")

        acked_txns = [t for t in acked if t != SETUP_TAG]
        return {"recovered": len(recovered), "acked": len(acked_txns),
                "stats": stats.snapshot() if stats else None}
    finally:
        db.close()


def run_seed(seed: int, verbose: bool = False,
             keep_dir: bool = False) -> Dict[str, Any]:
    """One full crash/recover/verify cycle for a seed."""
    data_dir = tempfile.mkdtemp(prefix=f"crash-seed{seed}-")
    kind, nth = kill_spec(seed)
    cmd = [sys.executable, "-m", "repro.testing.crash", "--child",
           "--dir", data_dir, "--seed", str(seed),
           "--kill", f"{kind}:{nth}"]
    proc = subprocess.run(cmd, env=_child_env(), capture_output=True,
                          text=True, timeout=300)
    killed = proc.returncode == -signal.SIGKILL
    if proc.returncode != 0 and not killed:
        raise CrashVerifyError(
            f"seed {seed}: child failed rc={proc.returncode}\n"
            f"{proc.stdout}\n{proc.stderr}")

    rekilled = False
    if killed:
        rekill = recovery_kill_spec(seed)
        if rekill is not None:
            cmd = [sys.executable, "-m", "repro.testing.crash",
                   "--child", "--recover", "--dir", data_dir,
                   "--kill", f"{rekill[0]}:{rekill[1]}"]
            proc2 = subprocess.run(cmd, env=_child_env(),
                                   capture_output=True, text=True,
                                   timeout=300)
            rekilled = proc2.returncode == -signal.SIGKILL
            if proc2.returncode != 0 and not rekilled:
                raise CrashVerifyError(
                    f"seed {seed}: recovery child failed "
                    f"rc={proc2.returncode}\n{proc2.stdout}\n"
                    f"{proc2.stderr}")

    acked = _read_acked(data_dir)
    try:
        result = verify(data_dir, seed, acked)
    except Exception:
        if not keep_dir:
            import shutil
            shutil.rmtree(data_dir, ignore_errors=True)
        raise
    result.update({"seed": seed, "killed": killed, "kill": (kind, nth),
                   "rekilled": rekilled})
    if verbose:
        print(f"seed {seed}: kill={kind}:{nth} killed={killed} "
              f"rekilled={rekilled} acked={result['acked']} "
              f"recovered={result['recovered']}")
    import shutil
    if keep_dir:
        print(f"seed {seed}: data dir kept at {data_dir}")
    else:
        shutil.rmtree(data_dir, ignore_errors=True)
    return result


def sweep(seeds: int, start: int = 0, verbose: bool = False) -> int:
    killed = clean = 0
    for seed in range(start, start + seeds):
        result = run_seed(seed, verbose=verbose)
        if result["killed"]:
            killed += 1
        else:
            clean += 1
    print(f"crash sweep: {seeds} seeds, {killed} killed mid-run, "
          f"{clean} ran to completion, 0 failures")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--recover", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--dir", help=argparse.SUPPRESS)
    parser.add_argument("--kill", help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=None,
                        help="run one seed (replay a failure)")
    parser.add_argument("--seeds", type=int, default=200,
                        help="sweep this many seeds (default 200)")
    parser.add_argument("--start", type=int, default=0,
                        help="first seed of the sweep")
    parser.add_argument("--keep-dir", action="store_true",
                        help="keep the data dir of a --seed run")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.child:
        kind, nth = args.kill.split(":")
        if args.recover:
            run_recover_child(args.dir, kind, int(nth))
        else:
            run_child(args.dir, args.seed, kind, int(nth))
        return 0
    if args.seed is not None:
        result = run_seed(args.seed, verbose=True, keep_dir=args.keep_dir)
        print(f"seed {args.seed} OK: {result}")
        return 0
    return sweep(args.seeds, start=args.start, verbose=args.verbose)


if __name__ == "__main__":
    sys.exit(main())
