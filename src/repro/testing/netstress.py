"""Network stress worker: one real client *process* of mixed DML.

``python -m repro.testing.netstress repro://host:port WORKER_ID N_OPS``
connects to a running :class:`repro.server.Server`, drives a
deterministic mix of statements against the ``items`` table (the same
schema and op mix as the in-process thread stress in
``tests/concurrency/test_stress.py``: shared-counter increments, own-row
inserts/updates/deletes, text and spatial domain-index reads), and
prints one JSON summary line on stdout::

    {"worker": 3, "ops": 120, "increments": 31, "live": [40001, ...],
     "reads": 22, "error": null}

The parent test collects every worker's summary and cross-validates the
server's engine: counter == Σ increments, surviving ids == Σ live sets,
and both domain indexes ≡ a functional recompute over the final table.

Workers build geometries *in SQL* (``sdo_rect(?, ?, ?, ?)``) so every
bind on the wire is a plain number or string — a network client needs
no catalog access to write spatial rows.  Every write statement runs in
its own implicit transaction and commits immediately, so cross-process
conflicts resolve through the engine's blocking lock manager exactly
like the thread version.
"""

from __future__ import annotations

import json
import random
import sys
from typing import Any, Dict, List, Optional

from repro import dbapi

__all__ = ["WORDS", "run_worker", "main"]

WORDS = ["alpha", "bravo", "carbon", "delta", "ember",
         "falcon", "granite", "harbor"]


def _note(rng: random.Random) -> str:
    return " ".join(rng.sample(WORDS, 2))


def _rect(rng: random.Random) -> List[float]:
    x = rng.uniform(0, 900)
    y = rng.uniform(0, 900)
    return [x, y, x + rng.uniform(10, 100), y + rng.uniform(10, 100)]


class _Worker:
    """Deterministic op mix; mirrors tests/concurrency/test_stress.py."""

    def __init__(self, conn: Any, worker_id: int):
        self.conn = conn
        self.rng = random.Random(1000 + worker_id)
        self.worker_id = worker_id
        self.next_id = 1
        self.live: List[int] = []   # ids of own rows still in the table
        self.increments = 0
        self.reads = 0
        self.ops = 0

    def run(self, n_ops: int) -> None:
        for __ in range(n_ops):
            self._one_statement()
            self.ops += 1

    def _one_statement(self) -> None:
        r = self.rng.random()
        if r < 0.30:
            self._increment()
        elif r < 0.55:
            self._insert()
        elif r < 0.70:
            self._update_note()
        elif r < 0.80:
            self._delete()
        else:
            self._read()

    def _increment(self) -> None:
        cur = self.conn.execute("UPDATE items SET val = val + 1 WHERE id = 0")
        assert cur.rowcount == 1, "counter row missing"
        self.conn.commit()
        self.increments += 1

    def _insert(self) -> None:
        # id spaces per worker are disjoint from each other and the seeds
        row_id = (self.worker_id + 1) * 10_000 + self.next_id
        self.next_id += 1
        self.conn.execute(
            "INSERT INTO items VALUES (?, ?, ?, sdo_rect(?, ?, ?, ?))",
            [row_id, 0, _note(self.rng)] + _rect(self.rng))
        self.conn.commit()
        self.live.append(row_id)

    def _update_note(self) -> None:
        if not self.live:
            return self._insert()
        cur = self.conn.execute(
            "UPDATE items SET note = ? WHERE id = ?",
            [_note(self.rng), self.rng.choice(self.live)])
        assert cur.rowcount == 1, "own row vanished"
        self.conn.commit()

    def _delete(self) -> None:
        if not self.live:
            return self._increment()
        row_id = self.live.pop(self.rng.randrange(len(self.live)))
        cur = self.conn.execute("DELETE FROM items WHERE id = ?", [row_id])
        assert cur.rowcount == 1, "own row vanished"
        self.conn.commit()

    def _read(self) -> None:
        if self.rng.random() < 0.5:
            cur = self.conn.execute(
                "SELECT id FROM items WHERE Contains(note, ?)",
                [self.rng.choice(WORDS)])
        else:
            cur = self.conn.execute(
                "SELECT id FROM items WHERE Sdo_Relate(shape,"
                " sdo_rect(?, ?, ?, ?), 'mask=ANYINTERACT')",
                _rect(self.rng))
        cur.fetchall()
        self.conn.commit()
        self.reads += 1


def run_worker(url: str, worker_id: int, n_ops: int,
               timeout: Optional[float] = 60.0) -> Dict[str, Any]:
    """Run one worker against ``url``; returns its JSON-ready summary."""
    summary: Dict[str, Any] = {
        "worker": worker_id, "ops": 0, "increments": 0,
        "live": [], "reads": 0, "error": None,
    }
    try:
        # all workers connect as the schema owner ("main"): the stress
        # exercises concurrency, not the privilege checks
        conn = dbapi.connect(url, timeout=timeout)
    except dbapi.Error as exc:
        summary["error"] = f"{type(exc).__name__}: {exc}"
        return summary
    worker = _Worker(conn, worker_id)
    try:
        worker.run(n_ops)
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        summary["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        try:
            conn.close()
        except dbapi.Error:
            pass
    summary.update(ops=worker.ops, increments=worker.increments,
                   live=worker.live, reads=worker.reads)
    return summary


def main(argv: List[str]) -> int:
    if len(argv) != 3:
        print("usage: python -m repro.testing.netstress "
              "repro://host:port WORKER_ID N_OPS", file=sys.stderr)
        return 2
    url, worker_id, n_ops = argv[0], int(argv[1]), int(argv[2])
    summary = run_worker(url, worker_id, n_ops)
    print(json.dumps(summary))
    return 0 if summary["error"] is None else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
