"""DB-API 2.0 (PEP 249) interface to the repro engine.

The paper's framework makes domain indexes behave like built-in indexes
*through the standard client surface* — applications keep issuing plain
SQL through a stock driver while ODCI callbacks run underneath.  This
module is that stock driver.  ``connect()`` takes one DSN string and
returns a :class:`Connection` no matter where the engine lives::

    from repro import dbapi

    conn = dbapi.connect()                          # fresh in-memory engine
    conn = dbapi.connect("file:/var/lib/app/db")    # durable (WAL + recovery)
    conn = dbapi.connect("repro://db.host:7878")    # network server

    cur = conn.cursor()
    cur.execute("CREATE TABLE t (id INTEGER, name VARCHAR2(40))")
    cur.execute("INSERT INTO t VALUES (?, ?)", (1, "ada"))
    conn.commit()

All three connections expose the identical PEP 249 surface — same
cursor iteration, ``fetchmany``/``arraysize``, ``executemany``,
exception classes; a network connection re-raises the same exception
hierarchy with the remote :mod:`repro.errors` exception preserved as
``__cause__``.  For more concurrent sessions against the same
in-process engine, pass the engine itself: ``dbapi.connect(conn.engine)``.

Module globals follow PEP 249: ``apilevel = "2.0"``,
``threadsafety = 1`` (threads may share the module; share connections
only with your own locking — a session is used by one thread at a
time), ``paramstyle = "qmark"`` (``?`` placeholders, rewritten
quote-aware onto the engine's native positional binds).

Transactions are implicit per PEP 249: the first statement on a
connection (lazily) begins one; ``commit()``/``rollback()`` end it.
DDL still autocommits, Oracle-style.  Engine errors are re-raised as
the standard exception hierarchy (:class:`ProgrammingError`,
:class:`IntegrityError`, :class:`OperationalError`, ...) with the
original :mod:`repro.errors` exception attached as ``__cause__``.
"""

from __future__ import annotations

import datetime
import socket as _socket
import time as _time
import warnings
import weakref
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import errors as _errors
from repro.sql.engine import Engine

__all__ = [
    "apilevel", "threadsafety", "paramstyle", "connect", "parse_dsn", "DSN",
    "Connection", "NetworkConnection", "Cursor",
    "Warning", "Error", "InterfaceError", "DatabaseError", "DataError",
    "OperationalError", "IntegrityError", "InternalError",
    "ProgrammingError", "NotSupportedError",
    "Date", "Time", "Timestamp", "DateFromTicks", "TimeFromTicks",
    "TimestampFromTicks", "Binary",
    "STRING", "BINARY", "NUMBER", "DATETIME", "ROWID",
]

apilevel = "2.0"
#: threads may share the module; connections/cursors need external locking
threadsafety = 1
paramstyle = "qmark"


# ----------------------------------------------------------------------
# exception hierarchy (PEP 249 §Exceptions)
# ----------------------------------------------------------------------

class Warning(Exception):  # noqa: A001 (PEP 249 mandates the name)
    """Important warnings (PEP 249)."""


class Error(Exception):
    """Base of all DB-API errors raised by this module."""


class InterfaceError(Error):
    """Error in the interface itself (e.g. operating on a closed cursor,
    a malformed DSN, or a wire-protocol violation)."""


class DatabaseError(Error):
    """Error related to the database."""


class DataError(DatabaseError):
    """Problems with the processed data (bad value for a column type)."""


class OperationalError(DatabaseError):
    """Errors of the database's operation: locks, deadlocks, storage,
    cartridge callback failures, network timeouts and lost connections."""


class IntegrityError(DatabaseError):
    """Constraint violations (NOT NULL, unique)."""


class InternalError(DatabaseError):
    """The database hit an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """SQL syntax errors, missing objects, bind mistakes, privileges."""


class NotSupportedError(DatabaseError):
    """A requested feature the engine does not provide."""


#: repro exception class → DB-API exception class, most specific first
_ERROR_MAP: Tuple[Tuple[type, type], ...] = (
    (_errors.ConstraintError, IntegrityError),
    (_errors.TypeMismatchError, DataError),
    (_errors.ParseError, ProgrammingError),
    (_errors.CatalogError, ProgrammingError),
    (_errors.PrivilegeError, ProgrammingError),
    (_errors.ExecutionError, ProgrammingError),
    (_errors.OperatorBindingError, ProgrammingError),
    (_errors.IndextypeError, ProgrammingError),
    (_errors.DeadlockError, OperationalError),
    (_errors.LockTimeoutError, OperationalError),
    (_errors.TransactionError, OperationalError),
    (_errors.StorageError, OperationalError),
    (_errors.ExtensibleIndexError, OperationalError),
    (_errors.DatabaseError, DatabaseError),
)


def _map_error(exc: BaseException) -> Error:
    """Wrap a repro engine error in its DB-API equivalent."""
    for repro_cls, dbapi_cls in _ERROR_MAP:
        if isinstance(exc, repro_cls):
            return dbapi_cls(str(exc))
    return DatabaseError(str(exc))


# ----------------------------------------------------------------------
# type objects and constructors (PEP 249 §Type Objects)
# ----------------------------------------------------------------------

Date = datetime.date
Time = datetime.time
Timestamp = datetime.datetime


def DateFromTicks(ticks: float) -> datetime.date:
    return Date(*_time.localtime(ticks)[:3])


def TimeFromTicks(ticks: float) -> datetime.time:
    return Time(*_time.localtime(ticks)[3:6])


def TimestampFromTicks(ticks: float) -> datetime.datetime:
    return Timestamp(*_time.localtime(ticks)[:6])


def Binary(data) -> bytes:
    return bytes(data)


class _TypeObject:
    """Equality-group marker for ``description`` type codes."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"<dbapi type {self.name}>"


STRING = _TypeObject("STRING")
BINARY = _TypeObject("BINARY")
NUMBER = _TypeObject("NUMBER")
DATETIME = _TypeObject("DATETIME")
ROWID = _TypeObject("ROWID")


# ----------------------------------------------------------------------
# DSNs — the one-URL entry point
# ----------------------------------------------------------------------

class DSN:
    """A parsed data-source name: where the engine lives.

    ``kind`` is ``"memory"`` (private in-process engine), ``"file"``
    (private durable engine rooted at ``path``), or ``"network"``
    (client of a :class:`repro.server.Server` at ``host:port``).
    """

    __slots__ = ("kind", "path", "host", "port")

    def __init__(self, kind: str, path: Optional[str] = None,
                 host: Optional[str] = None, port: Optional[int] = None):
        self.kind = kind
        self.path = path
        self.host = host
        self.port = port

    def __repr__(self) -> str:
        if self.kind == "file":
            return f"DSN(file:{self.path})"
        if self.kind == "network":
            return f"DSN(repro://{self.host}:{self.port})"
        return "DSN(memory)"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DSN)
                and (self.kind, self.path, self.host, self.port)
                == (other.kind, other.path, other.host, other.port))


def parse_dsn(dsn: Optional[str]) -> DSN:
    """Parse a ``connect()`` DSN string.

    Accepted forms::

        None or ""              → fresh in-memory engine
        "file:/path/to/dir"     → durable engine (WAL + recovery) at dir
        "file:///path/to/dir"   → same, RFC-style triple slash
        "repro://host:port"     → network client (port defaults to 7878)

    Raises :class:`InterfaceError` for anything else: unknown schemes,
    empty file paths, missing/invalid host or port, or URL paths on a
    ``repro://`` DSN.
    """
    if dsn is None or dsn == "":
        return DSN("memory")
    if not isinstance(dsn, str):
        raise InterfaceError(
            f"DSN must be a string (or None), got {type(dsn).__name__}")
    if dsn.startswith("file:"):
        path = dsn[len("file:"):]
        if path.startswith("//"):
            # file://host/path — only an empty or localhost authority
            rest = path[2:]
            slash = rest.find("/")
            authority, rest = (rest[:slash], rest[slash:]) \
                if slash >= 0 else (rest, "")
            if authority not in ("", "localhost"):
                raise InterfaceError(
                    f"file DSN cannot name a remote host {authority!r}")
            path = rest
        if not path:
            raise InterfaceError("file DSN has an empty path")
        return DSN("file", path=path)
    if dsn.startswith("repro://"):
        from repro.server.protocol import DEFAULT_PORT
        rest = dsn[len("repro://"):]
        for sep in ("/", "?", "#"):
            if sep in rest:
                location, extra = rest.split(sep, 1)
                if extra:
                    raise InterfaceError(
                        f"repro:// DSN does not take a path or query "
                        f"({sep}{extra!r})")
                rest = location
        if not rest:
            raise InterfaceError("repro:// DSN has an empty host")
        host, _, port_text = rest.rpartition(":")
        if not host:  # no colon: bare host, default port
            host, port_text = rest, ""
        if not port_text:
            port = DEFAULT_PORT
        else:
            try:
                port = int(port_text)
            except ValueError:
                raise InterfaceError(
                    f"invalid port {port_text!r} in repro:// DSN") from None
            if not 0 < port < 65536:
                raise InterfaceError(
                    f"port {port} out of range in repro:// DSN")
        return DSN("network", host=host, port=port)
    scheme = dsn.split(":", 1)[0]
    raise InterfaceError(
        f"unsupported DSN scheme {scheme!r} (expected nothing, "
        "file:/dir, or repro://host:port)")


# ----------------------------------------------------------------------
# qmark → native positional binds
# ----------------------------------------------------------------------

def _qmark_to_native(sql: str) -> Tuple[str, int]:
    """Rewrite ``?`` placeholders to ``:1, :2, ...``; quote-aware.

    ``?`` inside a ``'...'`` literal or ``"..."`` identifier is left
    alone (a doubled quote is the SQL escape).  Returns the rewritten
    text and the number of placeholders replaced.
    """
    out: List[str] = []
    count = 0
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in ("'", '"'):
            j = i + 1
            while j < n:
                if sql[j] == ch:
                    if j + 1 < n and sql[j + 1] == ch:
                        j += 2
                        continue
                    j += 1
                    break
                j += 1
            out.append(sql[i:j])
            i = j
        elif ch == "?":
            count += 1
            out.append(f":{count}")
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out), count


# ----------------------------------------------------------------------
# cursor
# ----------------------------------------------------------------------

class Cursor:
    """PEP 249 cursor; identical over in-process and network connections."""

    def __init__(self, connection: "Connection"):
        #: the owning connection (PEP 249 optional extension)
        self.connection = connection
        self.arraysize = 1
        self._result: Optional[Any] = None  # native Cursor / _RemoteResult
        self._closed = False

    # -- attributes --------------------------------------------------------

    @property
    def description(self) -> Optional[List[Tuple]]:
        """7-item sequences per result column, or None for non-queries."""
        if self._result is None or self._result.description is None:
            return None
        return [(name, STRING, None, None, None, None, None)
                for name in self._result.description]

    @property
    def rowcount(self) -> int:
        """Rows affected by the last DML (-1 for queries / no statement)."""
        if self._result is None:
            return -1
        return self._result.rowcount

    # -- statement execution ------------------------------------------------

    def execute(self, operation: str,
                parameters: Optional[Sequence[Any]] = None) -> "Cursor":
        """Run one statement; ``?`` placeholders bind ``parameters``."""
        self._check_open()
        sql, placeholders = _qmark_to_native(operation)
        if placeholders and parameters is None:
            raise ProgrammingError(
                f"statement has {placeholders} placeholder(s) "
                "but no parameters were supplied")
        self._close_result()
        self._result = self.connection._execute(
            sql, list(parameters) if parameters is not None else None, self)
        return self

    def executemany(self, operation: str,
                    seq_of_parameters: Sequence[Sequence[Any]]) -> "Cursor":
        """Run ``operation`` once per parameter set (array DML).

        The statement is parsed once; plain ``INSERT ... VALUES``
        batches stream every parameter set through a single maintained
        statement (one index-maintenance flush for the whole batch).
        ``rowcount`` is the exact total across all sets.
        """
        self._check_open()
        sql, placeholders = _qmark_to_native(operation)
        param_sets = [list(parameters) for parameters in seq_of_parameters]
        if placeholders and any(not parameters for parameters in param_sets):
            raise ProgrammingError(
                f"statement has {placeholders} placeholder(s) "
                "but a parameter set was empty")
        self._close_result()
        self._result = self.connection._executemany(sql, param_sets, self)
        return self

    # -- fetching ------------------------------------------------------------

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        """Next row of the result set, or None when exhausted."""
        return self._require_result().fetchone()

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        """Next ``size`` rows (default ``arraysize``)."""
        if size is None:
            size = self.arraysize
        return self._require_result().fetchmany(size)

    def fetchall(self) -> List[Tuple[Any, ...]]:
        """All remaining rows."""
        return self._require_result().fetchall()

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return self

    def __next__(self) -> Tuple[Any, ...]:
        row = self._require_result().fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- no-ops mandated by PEP 249 -------------------------------------------

    def setinputsizes(self, sizes: Sequence[Any]) -> None:
        """Accepted and ignored (PEP 249 allows this)."""

    def setoutputsize(self, size: int, column: Optional[int] = None) -> None:
        """Accepted and ignored (PEP 249 allows this)."""

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the result set; further use raises InterfaceError."""
        self._close_result()
        self._closed = True

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- internals ---------------------------------------------------------------

    def _close_result(self) -> None:
        if self._result is not None:
            self._result.close()
            self._result = None

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    def _require_result(self) -> Any:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no result set: call execute() first")
        return self._result


# ----------------------------------------------------------------------
# connections
# ----------------------------------------------------------------------

class _BaseConnection:
    """Shared PEP 249 connection surface; transport comes from subclasses."""

    Warning = Warning
    Error = Error
    InterfaceError = InterfaceError
    DatabaseError = DatabaseError
    DataError = DataError
    OperationalError = OperationalError
    IntegrityError = IntegrityError
    InternalError = InternalError
    ProgrammingError = ProgrammingError
    NotSupportedError = NotSupportedError

    def __init__(self) -> None:
        #: live cursors handed out by cursor(); closing the connection
        #: closes them so abandoned domain-index scans release their
        #: server-side state (weak: collected cursors drop out)
        self._cursors: "weakref.WeakSet[Cursor]" = weakref.WeakSet()

    def cursor(self) -> Cursor:
        """Open a new cursor on this connection."""
        self._check_open()
        cursor = Cursor(self)
        self._cursors.add(cursor)
        return cursor

    def execute(self, operation: str,
                parameters: Optional[Sequence[Any]] = None) -> Cursor:
        """Shortcut: ``cursor().execute(...)`` (sqlite3-style extension)."""
        return self.cursor().execute(operation, parameters)

    def _close_cursors(self) -> None:
        for cursor in list(self._cursors):
            try:
                cursor.close()
            except Error:
                pass

    def __enter__(self) -> "_BaseConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # sqlite3-style: commit on clean exit, roll back on exception;
        # the connection stays open for reuse
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    # subclasses provide: commit, rollback, close, _check_open,
    # _execute(sql, binds, cursor), _executemany(sql, param_sets, cursor)


class Connection(_BaseConnection):
    """In-process connection: one session on an (owned or shared) engine."""

    def __init__(self, session: Any):
        super().__init__()
        self._session: Optional[Any] = session
        #: the shared engine — pass to ``connect(engine)`` for more
        #: concurrent connections against the same data
        self.engine: Engine = session.engine

    @property
    def session(self) -> Any:
        """The underlying native :class:`~repro.sql.session.Session`."""
        return self._require_session()

    def commit(self) -> None:
        """Commit the open transaction (no-op when none is open)."""
        session = self._require_session()
        try:
            session.commit()
        except _errors.DatabaseError as exc:
            raise _map_error(exc) from exc

    def rollback(self) -> None:
        """Roll back the open transaction (no-op when none is open)."""
        session = self._require_session()
        try:
            session.rollback()
        except _errors.DatabaseError as exc:
            raise _map_error(exc) from exc

    def close(self) -> None:
        """Close open cursors, roll back, and detach the session.

        Cursors abandoned mid-fetch release their resources here: the
        session closes every statement cursor it still tracks, so any
        open domain-index scan fires ``ODCIIndexClose`` and returns its
        workspace handle before the rollback (§2.5 resource rule).
        """
        session = self._session
        if session is None:
            return
        try:
            self._close_cursors()
            session.close()
        finally:
            self._session = None

    # -- internals -------------------------------------------------------------

    def _require_session(self) -> Any:
        if self._session is None:
            raise InterfaceError("connection is closed")
        return self._session

    def _check_open(self) -> None:
        self._require_session()

    def _begin_if_needed(self) -> None:
        # PEP 249 implicit transactions: the first statement begins one
        session = self._require_session()
        if not session.in_transaction:
            session.begin()

    def _execute(self, sql: str, binds: Optional[List[Any]],
                 cursor: Cursor) -> Any:
        session = self._require_session()
        self._begin_if_needed()
        try:
            return session.execute(sql, binds)
        except _errors.DatabaseError as exc:
            raise _map_error(exc) from exc

    def _executemany(self, sql: str, param_sets: List[List[Any]],
                     cursor: Cursor) -> Any:
        session = self._require_session()
        self._begin_if_needed()
        try:
            return session.executemany(sql, param_sets)
        except _errors.DatabaseError as exc:
            raise _map_error(exc) from exc


class _RemoteResult:
    """Client-side face of one server-side cursor.

    Rows arrive in FETCH batches sized by the owning DB-API cursor's
    ``arraysize`` (``fetchone`` never pulls more than one batch ahead);
    ``fetchall`` drains in ``arraysize``-sized frames when the user has
    raised ``arraysize`` above the DB-API default of 1, else in large
    default batches.  ``close()`` releases the server-side cursor early
    so abandoned scans free their ODCI state without waiting for the
    connection to go away.
    """

    _FETCHALL_BATCH = 1024

    def __init__(self, connection: "NetworkConnection",
                 cursor_id: Optional[int],
                 description: Optional[List[str]], rowcount: int,
                 dbapi_cursor: Optional[Cursor]):
        self._connection = connection
        self._cursor_id = cursor_id
        self.description = description
        self.rowcount = rowcount
        self._dbapi_cursor = dbapi_cursor
        self._buffer: List[Tuple[Any, ...]] = []
        self._done = cursor_id is None

    def _fetch_batch(self, n: int) -> None:
        payload = self._connection._roundtrip(
            "fetch", {"cursor": self._cursor_id, "n": n})
        self._buffer.extend(payload["rows"])
        if payload["done"]:
            self._done = True
            self._cursor_id = None

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        if not self._buffer and not self._done:
            hint = 1
            if self._dbapi_cursor is not None:
                hint = max(1, int(self._dbapi_cursor.arraysize))
            self._fetch_batch(hint)
        if self._buffer:
            return self._buffer.pop(0)
        return None

    def fetchmany(self, size: int) -> List[Tuple[Any, ...]]:
        if size <= 0:
            return []
        while len(self._buffer) < size and not self._done:
            self._fetch_batch(size - len(self._buffer))
        out, self._buffer = self._buffer[:size], self._buffer[size:]
        return out

    def fetchall(self) -> List[Tuple[Any, ...]]:
        frame = self._FETCHALL_BATCH
        if self._dbapi_cursor is not None:
            arraysize = int(self._dbapi_cursor.arraysize)
            if arraysize > 1:  # negotiated frame size; 1 is the DB-API
                frame = arraysize  # default, not a drain preference
        while not self._done:
            self._fetch_batch(frame)
        out, self._buffer = self._buffer, []
        return out

    def close(self) -> None:
        cursor_id, self._cursor_id = self._cursor_id, None
        self._buffer = []
        self._done = True
        if cursor_id is not None and not self._connection._closed:
            try:
                self._connection._roundtrip("close_cursor",
                                            {"cursor": cursor_id})
            except Error:
                pass  # connection already broken; server GC handles it


class NetworkConnection(_BaseConnection):
    """Connection to a :class:`repro.server.Server` — same surface,
    different transport.

    One request/response exchange at a time (``threadsafety = 1``); a
    network failure or timeout raises :class:`OperationalError` and
    poisons the connection.
    """

    def __init__(self, host: str, port: int, user: str = "main",
                 timeout: Optional[float] = None,
                 settings: Optional[Dict[str, Any]] = None):
        super().__init__()
        from repro.server.protocol import PROTOCOL_VERSION, MAGIC
        self.host = host
        self.port = port
        self.timeout = timeout
        self._closed = False
        self._sock: Optional[_socket.socket] = None
        try:
            self._sock = _socket.create_connection(
                (host, port), timeout=timeout)
            self._sock.setsockopt(_socket.IPPROTO_TCP,
                                  _socket.TCP_NODELAY, 1)
        except OSError as exc:
            self._closed = True
            raise OperationalError(
                f"cannot connect to repro://{host}:{port}: {exc}") from exc
        welcome = self._roundtrip("hello", {
            "magic": MAGIC,
            "version": PROTOCOL_VERSION,
            "user": user,
            "settings": settings or {},
        })
        #: server-assigned session id (diagnostics)
        self.session_id = welcome.get("session_id")

    # -- transport ---------------------------------------------------------

    def _roundtrip(self, op: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request frame out, one response frame back."""
        from repro.server.protocol import (
            ConnectionClosed, ProtocolError, recv_frame, send_frame)
        if self._closed or self._sock is None:
            raise InterfaceError("connection is closed")
        try:
            send_frame(self._sock, op, payload)
            reply_op, reply, _ = recv_frame(self._sock)
        except _socket.timeout as exc:
            self._poison()
            raise OperationalError(
                f"no response from repro://{self.host}:{self.port} "
                f"within {self.timeout}s") from exc
        except (ConnectionClosed, ProtocolError, OSError) as exc:
            self._poison()
            raise OperationalError(
                f"connection to repro://{self.host}:{self.port} "
                f"lost: {exc}") from exc
        if reply_op == "error":
            self._raise_remote(reply)
        return reply

    def _poison(self) -> None:
        self._closed = True
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _raise_remote(self, payload: Dict[str, Any]) -> None:
        """Re-raise a typed error frame as the exact DB-API exception.

        The frame names the PEP 249 class (computed server-side with
        the same repro→DB-API map this module uses in-process) and
        carries the original :mod:`repro.errors` exception, which is
        attached as ``__cause__`` — so ``except IntegrityError`` and
        ``exc.__cause__.__class__`` behave identically to the
        in-process driver.
        """
        from repro.server.protocol import decode_error
        cls = globals().get(payload.get("dbapi", ""), DatabaseError)
        if not (isinstance(cls, type) and issubclass(cls, Error)):
            cls = DatabaseError
        exc = cls(payload.get("message", ""))
        raise exc from decode_error(payload)

    # -- PEP 249 surface ---------------------------------------------------

    def commit(self) -> None:
        """Commit the open transaction on the server."""
        self._roundtrip("commit", {})

    def rollback(self) -> None:
        """Roll back the open transaction on the server."""
        self._roundtrip("rollback", {})

    def close(self) -> None:
        """Close cursors, tell the server goodbye, drop the socket.

        The server tears the session down either way (rollback, cursor
        close, ``ODCIIndexClose`` for abandoned scans) — the goodbye
        frame just makes it synchronous and polite.
        """
        if self._closed:
            return
        try:
            self._close_cursors()
            self._roundtrip("close", {})
        except Error:
            pass
        finally:
            self._poison()

    def server_stats(self) -> Dict[str, Any]:
        """Server statistics snapshot (extension; also available as the
        ``user_server_stats`` dictionary view)."""
        return self._roundtrip("stats", {})["stats"]

    # -- internals ---------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def _execute(self, sql: str, binds: Optional[List[Any]],
                 cursor: Cursor) -> _RemoteResult:
        reply = self._roundtrip("execute", {"sql": sql, "binds": binds})
        return _RemoteResult(self, reply["cursor"], reply["description"],
                             reply["rowcount"], cursor)

    def _executemany(self, sql: str, param_sets: List[List[Any]],
                     cursor: Cursor) -> _RemoteResult:
        reply = self._roundtrip("executemany",
                                {"sql": sql, "binds_seq": param_sets})
        return _RemoteResult(self, reply["cursor"], reply["description"],
                             reply["rowcount"], cursor)


# ----------------------------------------------------------------------
# connect()
# ----------------------------------------------------------------------

def connect(dsn: Optional[Any] = None, user: str = "main",
            engine: Optional[Engine] = None,
            data_dir: Optional[str] = None,
            timeout: Optional[float] = None,
            settings: Optional[Dict[str, Any]] = None,
            **engine_options: Any) -> _BaseConnection:
    """Open a DB-API connection from one DSN.

    * ``connect()`` — fresh private in-memory :class:`Engine`
      (``engine_options`` such as ``lock_timeout=`` pass through);
    * ``connect("file:/path/to/dir")`` — fresh private durable engine
      (write-ahead log, restart recovery) rooted at the directory;
    * ``connect("repro://host:port")`` — network client of a
      :class:`repro.server.Server`; ``timeout`` bounds the TCP connect
      and every request/response exchange, ``settings`` carries
      session settings (e.g. ``{"lock_timeout": 2.0}``) in the
      handshake;
    * ``connect(some_engine)`` — another concurrent session against an
      in-process engine you already hold, e.g.
      ``dbapi.connect(conn.engine)``.

    .. deprecated:: the ``engine=`` and ``data_dir=`` keyword arguments
       still work but warn: pass the engine positionally / use a
       ``file:`` DSN instead.
    """
    if engine is not None:
        warnings.warn(
            "connect(engine=...) is deprecated; pass the engine as the "
            "first argument: connect(engine)", DeprecationWarning,
            stacklevel=2)
        if dsn is not None:
            raise InterfaceError("pass either a DSN or an engine, not both")
        dsn = engine
    if data_dir is not None:
        warnings.warn(
            "connect(data_dir=...) is deprecated; use a file: DSN: "
            f"connect(\"file:{data_dir}\")", DeprecationWarning,
            stacklevel=2)
        if dsn is not None:
            raise InterfaceError(
                "pass either a DSN or data_dir=, not both")
        dsn = f"file:{data_dir}"

    if isinstance(dsn, Engine):
        if engine_options:
            raise ProgrammingError(
                "engine options are only valid when creating a new engine")
        if timeout is not None or settings is not None:
            raise InterfaceError(
                "timeout/settings only apply to repro:// connections")
        return Connection(dsn.connect(user))

    parsed = parse_dsn(dsn)
    if parsed.kind == "network":
        if engine_options:
            raise InterfaceError(
                "engine options do not apply to repro:// connections; "
                "configure the server, or pass settings={...}")
        return NetworkConnection(parsed.host, parsed.port, user=user,
                                 timeout=timeout, settings=settings)
    if timeout is not None or settings is not None:
        raise InterfaceError(
            "timeout/settings only apply to repro:// connections")
    if parsed.kind == "file":
        new_engine = Engine(data_dir=parsed.path, **engine_options)
    else:
        new_engine = Engine(**engine_options)
    return Connection(new_engine.connect(user))
