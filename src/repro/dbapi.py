"""DB-API 2.0 (PEP 249) interface to the repro engine.

The paper's framework makes domain indexes behave like built-in indexes
*through the standard client surface* — applications keep issuing plain
SQL through a stock driver while ODCI callbacks run underneath.  This
module is that stock driver: ``connect()`` returns a
:class:`Connection` wrapping one :class:`~repro.sql.session.Session`,
and multiple connections against the same
:class:`~repro.sql.engine.Engine` give real multi-session concurrency::

    from repro import dbapi

    conn = dbapi.connect()                     # fresh in-memory engine
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (id INTEGER, name VARCHAR2(40))")
    cur.execute("INSERT INTO t VALUES (?, ?)", (1, "ada"))
    conn.commit()

    other = dbapi.connect(engine=conn.engine)  # second session, same data
    other.cursor().execute("SELECT name FROM t WHERE id = ?", (1,))

Module globals follow PEP 249: ``apilevel = "2.0"``,
``threadsafety = 1`` (threads may share the module; share connections
only with your own locking — a session is used by one thread at a
time), ``paramstyle = "qmark"`` (``?`` placeholders, rewritten
quote-aware onto the engine's native positional binds).

Transactions are implicit per PEP 249: the first statement on a
connection (lazily) begins one; ``commit()``/``rollback()`` end it.
DDL still autocommits, Oracle-style.  Engine errors are re-raised as
the standard exception hierarchy (:class:`ProgrammingError`,
:class:`IntegrityError`, :class:`OperationalError`, ...) with the
original :mod:`repro.errors` exception attached as ``__cause__``.
"""

from __future__ import annotations

import datetime
import time as _time
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro import errors as _errors
from repro.sql.engine import Engine

__all__ = [
    "apilevel", "threadsafety", "paramstyle", "connect",
    "Connection", "Cursor",
    "Warning", "Error", "InterfaceError", "DatabaseError", "DataError",
    "OperationalError", "IntegrityError", "InternalError",
    "ProgrammingError", "NotSupportedError",
    "Date", "Time", "Timestamp", "DateFromTicks", "TimeFromTicks",
    "TimestampFromTicks", "Binary",
    "STRING", "BINARY", "NUMBER", "DATETIME", "ROWID",
]

apilevel = "2.0"
#: threads may share the module; connections/cursors need external locking
threadsafety = 1
paramstyle = "qmark"


# ----------------------------------------------------------------------
# exception hierarchy (PEP 249 §Exceptions)
# ----------------------------------------------------------------------

class Warning(Exception):  # noqa: A001 (PEP 249 mandates the name)
    """Important warnings (PEP 249)."""


class Error(Exception):
    """Base of all DB-API errors raised by this module."""


class InterfaceError(Error):
    """Error in the interface itself (e.g. operating on a closed cursor)."""


class DatabaseError(Error):
    """Error related to the database."""


class DataError(DatabaseError):
    """Problems with the processed data (bad value for a column type)."""


class OperationalError(DatabaseError):
    """Errors of the database's operation: locks, deadlocks, storage,
    cartridge callback failures."""


class IntegrityError(DatabaseError):
    """Constraint violations (NOT NULL, unique)."""


class InternalError(DatabaseError):
    """The database hit an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """SQL syntax errors, missing objects, bind mistakes, privileges."""


class NotSupportedError(DatabaseError):
    """A requested feature the engine does not provide."""


#: repro exception class → DB-API exception class, most specific first
_ERROR_MAP: Tuple[Tuple[type, type], ...] = (
    (_errors.ConstraintError, IntegrityError),
    (_errors.TypeMismatchError, DataError),
    (_errors.ParseError, ProgrammingError),
    (_errors.CatalogError, ProgrammingError),
    (_errors.PrivilegeError, ProgrammingError),
    (_errors.ExecutionError, ProgrammingError),
    (_errors.OperatorBindingError, ProgrammingError),
    (_errors.IndextypeError, ProgrammingError),
    (_errors.DeadlockError, OperationalError),
    (_errors.LockTimeoutError, OperationalError),
    (_errors.TransactionError, OperationalError),
    (_errors.StorageError, OperationalError),
    (_errors.ExtensibleIndexError, OperationalError),
    (_errors.DatabaseError, DatabaseError),
)


def _map_error(exc: BaseException) -> Error:
    """Wrap a repro engine error in its DB-API equivalent."""
    for repro_cls, dbapi_cls in _ERROR_MAP:
        if isinstance(exc, repro_cls):
            return dbapi_cls(str(exc))
    return DatabaseError(str(exc))


# ----------------------------------------------------------------------
# type objects and constructors (PEP 249 §Type Objects)
# ----------------------------------------------------------------------

Date = datetime.date
Time = datetime.time
Timestamp = datetime.datetime


def DateFromTicks(ticks: float) -> datetime.date:
    return Date(*_time.localtime(ticks)[:3])


def TimeFromTicks(ticks: float) -> datetime.time:
    return Time(*_time.localtime(ticks)[3:6])


def TimestampFromTicks(ticks: float) -> datetime.datetime:
    return Timestamp(*_time.localtime(ticks)[:6])


def Binary(data) -> bytes:
    return bytes(data)


class _TypeObject:
    """Equality-group marker for ``description`` type codes."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"<dbapi type {self.name}>"


STRING = _TypeObject("STRING")
BINARY = _TypeObject("BINARY")
NUMBER = _TypeObject("NUMBER")
DATETIME = _TypeObject("DATETIME")
ROWID = _TypeObject("ROWID")


# ----------------------------------------------------------------------
# qmark → native positional binds
# ----------------------------------------------------------------------

def _qmark_to_native(sql: str) -> Tuple[str, int]:
    """Rewrite ``?`` placeholders to ``:1, :2, ...``; quote-aware.

    ``?`` inside a ``'...'`` literal or ``"..."`` identifier is left
    alone (a doubled quote is the SQL escape).  Returns the rewritten
    text and the number of placeholders replaced.
    """
    out: List[str] = []
    count = 0
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in ("'", '"'):
            j = i + 1
            while j < n:
                if sql[j] == ch:
                    if j + 1 < n and sql[j + 1] == ch:
                        j += 2
                        continue
                    j += 1
                    break
                j += 1
            out.append(sql[i:j])
            i = j
        elif ch == "?":
            count += 1
            out.append(f":{count}")
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out), count


# ----------------------------------------------------------------------
# cursor
# ----------------------------------------------------------------------

class Cursor:
    """PEP 249 cursor over one session's statement pipeline."""

    def __init__(self, connection: "Connection"):
        #: the owning connection (PEP 249 optional extension)
        self.connection = connection
        self.arraysize = 1
        self._result: Optional[Any] = None  # native repro Cursor
        self._closed = False

    # -- attributes --------------------------------------------------------

    @property
    def description(self) -> Optional[List[Tuple]]:
        """7-item sequences per result column, or None for non-queries."""
        if self._result is None or self._result.description is None:
            return None
        return [(name, STRING, None, None, None, None, None)
                for name in self._result.description]

    @property
    def rowcount(self) -> int:
        """Rows affected by the last DML (-1 for queries / no statement)."""
        if self._result is None:
            return -1
        return self._result.rowcount

    # -- statement execution ------------------------------------------------

    def execute(self, operation: str,
                parameters: Optional[Sequence[Any]] = None) -> "Cursor":
        """Run one statement; ``?`` placeholders bind ``parameters``."""
        self._check_open()
        session = self.connection._require_session()
        sql, placeholders = _qmark_to_native(operation)
        if placeholders and parameters is None:
            raise ProgrammingError(
                f"statement has {placeholders} placeholder(s) "
                "but no parameters were supplied")
        self._close_result()
        self.connection._begin_if_needed()
        try:
            self._result = session.execute(
                sql, list(parameters) if parameters is not None else None)
        except _errors.DatabaseError as exc:
            raise _map_error(exc) from exc
        return self

    def executemany(self, operation: str,
                    seq_of_parameters: Sequence[Sequence[Any]]) -> "Cursor":
        """Run ``operation`` once per parameter set (array DML).

        The statement is parsed once; plain ``INSERT ... VALUES``
        batches stream every parameter set through a single maintained
        statement (one index-maintenance flush for the whole batch).
        ``rowcount`` is the exact total across all sets.
        """
        self._check_open()
        session = self.connection._require_session()
        sql, placeholders = _qmark_to_native(operation)
        param_sets = [list(parameters) for parameters in seq_of_parameters]
        if placeholders and any(not parameters for parameters in param_sets):
            raise ProgrammingError(
                f"statement has {placeholders} placeholder(s) "
                "but a parameter set was empty")
        self._close_result()
        self.connection._begin_if_needed()
        try:
            self._result = session.executemany(sql, param_sets)
        except _errors.DatabaseError as exc:
            raise _map_error(exc) from exc
        return self

    # -- fetching ------------------------------------------------------------

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        """Next row of the result set, or None when exhausted."""
        return self._require_result().fetchone()

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        """Next ``size`` rows (default ``arraysize``)."""
        if size is None:
            size = self.arraysize
        return self._require_result().fetchmany(size)

    def fetchall(self) -> List[Tuple[Any, ...]]:
        """All remaining rows."""
        return self._require_result().fetchall()

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return self

    def __next__(self) -> Tuple[Any, ...]:
        row = self._require_result().fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- no-ops mandated by PEP 249 -------------------------------------------

    def setinputsizes(self, sizes: Sequence[Any]) -> None:
        """Accepted and ignored (PEP 249 allows this)."""

    def setoutputsize(self, size: int, column: Optional[int] = None) -> None:
        """Accepted and ignored (PEP 249 allows this)."""

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the result set; further use raises InterfaceError."""
        self._close_result()
        self._closed = True

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- internals ---------------------------------------------------------------

    def _close_result(self) -> None:
        if self._result is not None:
            self._result.close()
            self._result = None

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._require_session()

    def _require_result(self) -> Any:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no result set: call execute() first")
        return self._result


# ----------------------------------------------------------------------
# connection
# ----------------------------------------------------------------------

class Connection:
    """PEP 249 connection: one session, implicit transactions."""

    Warning = Warning
    Error = Error
    InterfaceError = InterfaceError
    DatabaseError = DatabaseError
    DataError = DataError
    OperationalError = OperationalError
    IntegrityError = IntegrityError
    InternalError = InternalError
    ProgrammingError = ProgrammingError
    NotSupportedError = NotSupportedError

    def __init__(self, session: Any):
        self._session: Optional[Any] = session
        #: the shared engine — pass to ``connect(engine=...)`` for more
        #: concurrent connections against the same data
        self.engine: Engine = session.engine

    @property
    def session(self) -> Any:
        """The underlying native :class:`~repro.sql.session.Session`."""
        return self._require_session()

    def cursor(self) -> Cursor:
        """Open a new cursor on this connection."""
        self._require_session()
        return Cursor(self)

    def execute(self, operation: str,
                parameters: Optional[Sequence[Any]] = None) -> Cursor:
        """Shortcut: ``cursor().execute(...)`` (sqlite3-style extension)."""
        return self.cursor().execute(operation, parameters)

    def commit(self) -> None:
        """Commit the open transaction (no-op when none is open)."""
        session = self._require_session()
        try:
            session.commit()
        except _errors.DatabaseError as exc:
            raise _map_error(exc) from exc

    def rollback(self) -> None:
        """Roll back the open transaction (no-op when none is open)."""
        session = self._require_session()
        try:
            session.rollback()
        except _errors.DatabaseError as exc:
            raise _map_error(exc) from exc

    def close(self) -> None:
        """Roll back any open transaction and detach the session."""
        session = self._session
        if session is None:
            return
        try:
            session.rollback()
        finally:
            self._session = None

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # sqlite3-style: commit on clean exit, roll back on exception;
        # the connection stays open for reuse
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    # -- internals -------------------------------------------------------------

    def _require_session(self) -> Any:
        if self._session is None:
            raise InterfaceError("connection is closed")
        return self._session

    def _begin_if_needed(self) -> None:
        # PEP 249 implicit transactions: the first statement begins one
        session = self._require_session()
        if not session.in_transaction:
            session.begin()


def connect(engine: Optional[Engine] = None, user: str = "main",
            **engine_options: Any) -> Connection:
    """Open a DB-API connection.

    With no arguments, creates a fresh in-memory :class:`Engine` (its
    options can be passed through, e.g. ``buffer_capacity=...``).  Pass
    ``engine=`` to open another concurrent session against an existing
    engine — e.g. ``dbapi.connect(engine=conn.engine)``.
    """
    if engine is None:
        engine = Engine(**engine_options)
    elif engine_options:
        raise ProgrammingError(
            "engine options are only valid when creating a new engine")
    return Connection(engine.connect(user))
