"""Benchmark infrastructure: synthetic workloads and measurement helpers."""

from repro.bench.workloads import (
    TextCorpus, make_corpus, make_rect_layer, make_signature_table,
    make_molecule_table)
from repro.bench.harness import (
    Measurement, ReportTable, io_delta, time_call, time_to_first_row)

__all__ = [
    "TextCorpus",
    "make_corpus",
    "make_rect_layer",
    "make_signature_table",
    "make_molecule_table",
    "Measurement",
    "ReportTable",
    "io_delta",
    "time_call",
    "time_to_first_row",
]
