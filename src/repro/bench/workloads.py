"""Synthetic workload generators for the benchmarks.

Each generator is deterministic given a seed, so benchmark comparisons
(integrated vs legacy) always run on identical data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from repro.cartridges.chemistry.molecule import random_molecule, to_smiles
from repro.cartridges.spatial.geometry import make_rect
from repro.cartridges.spatial.tiling import WORLD_SIZE
from repro.cartridges.vir.signature import (
    perturb_signature, structured_signature)

# ---------------------------------------------------------------------------
# text: Zipfian corpus
# ---------------------------------------------------------------------------

#: Consonant-vowel syllables used to mint pronounceable fake words.
_SYLLABLES = ["ba", "co", "di", "fu", "ge", "hi", "jo", "ka", "lu", "me",
              "ni", "po", "qua", "re", "si", "tu", "ve", "wo", "xi", "za"]


def _word(index: int) -> str:
    parts = []
    value = index
    for __ in range(3):
        parts.append(_SYLLABLES[value % len(_SYLLABLES)])
        value //= len(_SYLLABLES)
    return "".join(parts) + str(index % 7)


@dataclass
class TextCorpus:
    """A generated document collection with a Zipfian vocabulary."""

    documents: List[str]
    vocabulary: List[str]
    #: per-word document frequency (how many documents contain the word)
    doc_frequency: dict = field(default_factory=dict)

    def common_word(self, rank: int = 0) -> str:
        """A frequent word (low rank = more frequent)."""
        ordered = sorted(self.doc_frequency,
                         key=lambda w: -self.doc_frequency[w])
        return ordered[min(rank, len(ordered) - 1)]

    def rare_word(self, rank: int = 0) -> str:
        """An infrequent (but present) word."""
        ordered = sorted((w for w, df in self.doc_frequency.items() if df),
                         key=lambda w: self.doc_frequency[w])
        return ordered[min(rank, len(ordered) - 1)]

    def selectivity_of(self, query_word: str) -> float:
        """Fraction of documents containing the word."""
        return self.doc_frequency.get(query_word, 0) / max(
            1, len(self.documents))


def make_corpus(n_docs: int, words_per_doc: int = 40,
                vocabulary_size: int = 500, seed: int = 1) -> TextCorpus:
    """Generate documents whose word ranks follow a Zipf distribution."""
    rng = random.Random(seed)
    vocabulary = [_word(i) for i in range(vocabulary_size)]
    weights = [1.0 / (rank + 1) for rank in range(vocabulary_size)]
    documents = []
    doc_frequency = {word: 0 for word in vocabulary}
    for __ in range(n_docs):
        words = rng.choices(vocabulary, weights=weights, k=words_per_doc)
        documents.append(" ".join(words))
        for word in set(words):
            doc_frequency[word] += 1
    return TextCorpus(documents=documents, vocabulary=vocabulary,
                      doc_frequency=doc_frequency)


# ---------------------------------------------------------------------------
# spatial: rectangle layers
# ---------------------------------------------------------------------------

def make_rect_layer(db_or_type, count: int, seed: int = 1,
                    min_size: float = 10.0, max_size: float = 120.0,
                    start_gid: int = 1) -> List[Tuple[int, Any]]:
    """(gid, rectangle geometry) pairs scattered over the world."""
    rng = random.Random(seed)
    out = []
    for i in range(count):
        width = rng.uniform(min_size, max_size)
        height = rng.uniform(min_size, max_size)
        x = rng.uniform(0, WORLD_SIZE - width)
        y = rng.uniform(0, WORLD_SIZE - height)
        out.append((start_gid + i,
                    make_rect(db_or_type, x, y, x + width, y + height)))
    return out


# ---------------------------------------------------------------------------
# VIR: clustered signatures
# ---------------------------------------------------------------------------

def make_signature_table(count: int, cluster_every: int = 10,
                         noise: float = 0.04, seed: int = 1
                         ) -> Tuple[List[Tuple[int, Tuple[float, ...]]],
                                    Tuple[float, ...]]:
    """(id, signature) rows plus the cluster-centre query signature.

    Every ``cluster_every``-th signature is a perturbation of the centre
    (the known "similar" population); the rest are uniform noise.
    """
    rng = random.Random(seed)
    centre = structured_signature(rng)
    rows = []
    for i in range(count):
        if i % cluster_every == 0:
            rows.append((i, perturb_signature(rng, centre, noise)))
        else:
            rows.append((i, structured_signature(rng)))
    return rows, centre


# ---------------------------------------------------------------------------
# chemistry: molecule collections
# ---------------------------------------------------------------------------

def make_molecule_table(count: int, min_size: int = 5, max_size: int = 16,
                        seed: int = 1) -> List[Tuple[int, str]]:
    """(id, notation) rows of random synthetic molecules."""
    rng = random.Random(seed)
    out = []
    for i in range(count):
        molecule = random_molecule(rng, size=rng.randint(min_size, max_size))
        out.append((i, to_smiles(molecule)))
    return out
