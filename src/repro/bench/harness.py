"""Measurement helpers: wall-clock, first-row latency, I/O deltas, tables.

The benchmark modules use these to print the paper-style comparisons
(who wins, by what factor) alongside pytest-benchmark's timing output,
and to persist the same tables into ``benchmarks/results/`` so
EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence


@dataclass
class Measurement:
    """One measured run: elapsed seconds, optional first-row latency, I/O."""

    elapsed: float
    first_row: Optional[float] = None
    io: Dict[str, int] = field(default_factory=dict)
    rows: int = 0


def time_call(fn: Callable[[], Any]) -> Measurement:
    """Run ``fn`` once and time it; rows = len(result) when sized."""
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    rows = len(result) if hasattr(result, "__len__") else 0
    return Measurement(elapsed=elapsed, rows=rows)


def time_to_first_row(iterator_factory: Callable[[], Iterator[Any]]
                      ) -> Measurement:
    """Time both the first yielded row and full consumption."""
    start = time.perf_counter()
    iterator = iterator_factory()
    first: Optional[float] = None
    count = 0
    for __ in iterator:
        if first is None:
            first = time.perf_counter() - start
        count += 1
    elapsed = time.perf_counter() - start
    return Measurement(elapsed=elapsed, first_row=first, rows=count)


def io_delta(db, fn: Callable[[], Any]) -> Measurement:
    """Run ``fn`` and capture the change in the database's I/O counters."""
    before = db.stats.snapshot()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    measurement = Measurement(elapsed=elapsed, io=db.stats.diff(before))
    if hasattr(result, "__len__"):
        measurement.rows = len(result)
    return measurement


class ReportTable:
    """A fixed-width ASCII table, printable and writable to a file."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row; floats are rendered with 4 significant places."""
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(f"{cell:.4g}")
            else:
                rendered.append(str(cell))
        self.rows.append(rendered)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Iterable[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        separator = "-+-".join("-" * w for w in widths)
        body = [self.title, line(self.headers), separator]
        body.extend(line(row) for row in self.rows)
        return "\n".join(body)

    def emit(self, path: Optional[str] = None) -> str:
        """Print the table and optionally append it to ``path``."""
        text = self.render()
        print("\n" + text + "\n")
        if path is not None:
            with open(path, "a") as handle:
                handle.write(text + "\n\n")
        return text
