"""Exception hierarchy for the repro engine.

Every error raised by the engine derives from :class:`DatabaseError`, so
applications can catch one base class.  The subclasses mirror the error
categories a real server distinguishes: syntax/parse errors, semantic
(catalog) errors, runtime evaluation errors, transaction errors, and the
extensible-indexing specific errors the paper's framework defines
(callback restriction violations, ODCI routine failures).
"""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for all errors raised by the repro engine."""


class ParseError(DatabaseError):
    """SQL text could not be lexed or parsed."""

    def __init__(self, message: str, position: int = -1, sql: str = ""):
        super().__init__(message)
        self.position = position
        self.sql = sql

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position >= 0 and self.sql:
            snippet = self.sql[max(0, self.position - 20):self.position + 20]
            return f"{base} (near position {self.position}: ...{snippet!r}...)"
        return base


class CatalogError(DatabaseError):
    """A schema object is missing, duplicated, or used inconsistently."""


class TypeMismatchError(DatabaseError):
    """A value or expression has the wrong SQL type for its context."""


class ConstraintError(DatabaseError):
    """A declared constraint (NOT NULL, UNIQUE, PRIMARY KEY) was violated."""


class ExecutionError(DatabaseError):
    """A runtime failure while executing a statement."""


class PrivilegeError(DatabaseError):
    """The session user lacks the privilege for the attempted operation."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition or conflicting lock request."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired."""


class StorageError(DatabaseError):
    """Low-level storage failure (bad rowid, LOB out of range, ...)."""


class InvalidRowIdError(StorageError):
    """A rowid does not identify a live row."""


# ---------------------------------------------------------------------------
# Extensible-indexing errors (the framework of the paper)
# ---------------------------------------------------------------------------

class ExtensibleIndexError(DatabaseError):
    """Base class for errors raised by the extensible indexing framework."""


class ODCIError(ExtensibleIndexError):
    """A user-supplied ODCIIndex routine raised or returned a failure."""

    def __init__(self, routine: str, message: str):
        super().__init__(f"{routine}: {message}")
        self.routine = routine


class CallbackViolation(ExtensibleIndexError):
    """An indextype routine issued a SQL callback its phase forbids.

    Section 2.5 of the paper: maintenance routines cannot execute DDL nor
    update the base table; scan routines can only execute queries.
    """


class OperatorBindingError(ExtensibleIndexError):
    """No operator binding matches the call-site argument types."""


class IndextypeError(ExtensibleIndexError):
    """Indextype definition or use is inconsistent (unsupported operator,
    missing implementation type, ...)."""
