"""Exception hierarchy for the repro engine.

Every error raised by the engine derives from :class:`DatabaseError`, so
applications can catch one base class.  The subclasses mirror the error
categories a real server distinguishes: syntax/parse errors, semantic
(catalog) errors, runtime evaluation errors, transaction errors, and the
extensible-indexing specific errors the paper's framework defines
(callback restriction violations, ODCI routine failures).
"""

from __future__ import annotations

from typing import Optional, Sequence


class DatabaseError(Exception):
    """Base class for all errors raised by the repro engine."""


class ParseError(DatabaseError):
    """SQL text could not be lexed or parsed."""

    def __init__(self, message: str, position: int = -1, sql: str = ""):
        super().__init__(message)
        self.position = position
        self.sql = sql

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position >= 0 and self.sql:
            snippet = self.sql[max(0, self.position - 20):self.position + 20]
            return f"{base} (near position {self.position}: ...{snippet!r}...)"
        return base


class CatalogError(DatabaseError):
    """A schema object is missing, duplicated, or used inconsistently."""


class TypeMismatchError(DatabaseError):
    """A value or expression has the wrong SQL type for its context."""


class ConstraintError(DatabaseError):
    """A declared constraint (NOT NULL, UNIQUE, PRIMARY KEY) was violated."""


class ExecutionError(DatabaseError):
    """A runtime failure while executing a statement."""


class PrivilegeError(DatabaseError):
    """The session user lacks the privilege for the attempted operation."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition or conflicting lock request."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the requested timeout."""


class DeadlockError(TransactionError):
    """A lock wait would never finish: the wait-for graph has a cycle.

    The lock manager breaks the cycle by dooming its youngest
    transaction (largest txn id); that transaction's pending ``acquire``
    raises this error.  Oracle semantics (ORA-00060): the *statement* is
    rolled back, the transaction stays open, and the application is
    expected to roll back or retry.
    """

    def __init__(self, message: str, victim: Optional[int] = None,
                 cycle: Sequence[int] = ()):
        super().__init__(message)
        #: txn id chosen as the deadlock victim
        self.victim = victim
        #: txn ids on the wait-for cycle that was broken
        self.cycle = tuple(cycle)


class StorageError(DatabaseError):
    """Low-level storage failure (bad rowid, LOB out of range, ...)."""


class InvalidRowIdError(StorageError):
    """A rowid does not identify a live row."""


class WALError(StorageError):
    """The write-ahead log (or its device) failed.

    Raised on log-device I/O errors and on any operation attempted
    after the log writer has failed: like Oracle after an LGWR error,
    the instance cannot guarantee durability anymore, so it refuses
    further work until the process restarts and runs recovery.
    """


# ---------------------------------------------------------------------------
# Extensible-indexing errors (the framework of the paper)
# ---------------------------------------------------------------------------

class ExtensibleIndexError(DatabaseError):
    """Base class for errors raised by the extensible indexing framework."""


class ODCIError(ExtensibleIndexError):
    """A user-supplied ODCIIndex routine raised or returned a failure."""

    def __init__(self, routine: str, message: str):
        super().__init__(f"{routine}: {message}")
        self.routine = routine
        #: the raw message, before the "routine: " prefix — kept so the
        #: exception can be reconstructed (pickled across the network
        #: protocol) through the same constructor
        self.message = message

    def __reduce__(self):
        # Exception's default reduce replays ``args`` (the formatted
        # string) into __init__, which takes (routine, message) — so
        # these errors would not cross a pickle boundary without this.
        return (self.__class__, (self.routine, self.message))


class CallbackError(ODCIError):
    """A cartridge routine failed inside the dispatch seam.

    Every ODCI invocation is routed through the
    :class:`~repro.core.dispatch.CallbackDispatcher`, which catches
    whatever the cartridge raised and re-raises it as this type so the
    server layers above can react (mark the index UNUSABLE, retry the
    statement, degrade to functional evaluation) without ever seeing a
    raw cartridge exception.  ``cause`` preserves the original
    exception; ``index_name`` and ``phase`` say which domain index and
    which routine class (definition/maintenance/scan) was executing.
    """

    def __init__(self, routine: str, message: str, index_name: str = "",
                 phase: str = "", cause: "Exception | None" = None):
        super().__init__(routine, message)
        self.index_name = index_name
        self.phase = phase
        self.cause = cause

    def __reduce__(self):
        return (self.__class__, (self.routine, self.message,
                                 self.index_name, self.phase, self.cause))


class TransientCallbackError(ODCIError):
    """A cartridge routine hit a retryable condition.

    Cartridges (and the fault-injection harness) raise this to signal
    "try again"; the dispatcher retries the routine a bounded,
    deterministic number of times before giving up and wrapping the
    last failure in a :class:`CallbackError`.
    """

    def __init__(self, routine: str, message: str = "transient failure"):
        super().__init__(routine, message)


class CallbackTimeoutError(CallbackError):
    """A cartridge routine exceeded its wall-clock budget.

    The dispatcher checks elapsed time around each call (no threads);
    a routine that returns after its budget has already been spent
    fails the statement exactly as if it had raised.
    """

    def __init__(self, routine: str, index_name: str = "", phase: str = "",
                 budget: float = 0.0, elapsed: float = 0.0):
        super().__init__(
            routine,
            f"exceeded wall-clock budget ({elapsed:.3f}s > {budget:.3f}s)",
            index_name=index_name, phase=phase)
        self.budget = budget
        self.elapsed = elapsed

    def __reduce__(self):
        return (self.__class__, (self.routine, self.index_name, self.phase,
                                 self.budget, self.elapsed))


class FatalCallbackError(CallbackError):
    """A cartridge routine crashed with a non-database exception.

    TypeError/ZeroDivisionError/etc. out of cartridge code indicate a
    bug rather than an index-data condition; they are never retried and
    are reported with the original traceback chained as ``cause``.
    """


class IndexUnusableError(ExtensibleIndexError):
    """DML touched a non-VALID domain index with skip_unusable_indexes off.

    Mirrors ORA-01502: when the session setting is disabled, a statement
    that would need maintenance on an UNUSABLE/FAILED index fails
    instead of silently skipping it.
    """

    def __init__(self, index_name: str, state: str):
        super().__init__(
            f"index {index_name} is {state}; DML requires a VALID index "
            "(or session setting skip_unusable_indexes = TRUE)")
        self.index_name = index_name
        self.state = state

    def __reduce__(self):
        return (self.__class__, (self.index_name, self.state))


class CallbackViolation(ExtensibleIndexError):
    """An indextype routine issued a SQL callback its phase forbids.

    Section 2.5 of the paper: maintenance routines cannot execute DDL nor
    update the base table; scan routines can only execute queries.
    """


class OperatorBindingError(ExtensibleIndexError):
    """No operator binding matches the call-site argument types."""


class IndextypeError(ExtensibleIndexError):
    """Indextype definition or use is inconsistent (unsupported operator,
    missing implementation type, ...)."""
