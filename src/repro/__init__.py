"""repro — a reproduction of "Extensible Indexing: A Framework for
Integrating Domain-Specific Indexing Schemes into Oracle8i" (ICDE 2000).

The package provides:

* a from-scratch relational engine (:class:`repro.Database`) with SQL,
  heap/index-organized storage, LOBs, native B-tree/hash/bitmap indexes,
  transactions, and a cost-based optimizer;
* the paper's extensible indexing framework (:mod:`repro.core`) —
  user-defined operators, indextypes, domain indexes driven through the
  ODCIIndex interface, and extensible optimizer statistics;
* the four cartridge case studies (:mod:`repro.cartridges`): interMedia
  Text, Spatial, Visual Information Retrieval, and the Daylight-style
  chemistry cartridge, each with its pre-Oracle8i baseline.

Quickstart::

    from repro import Database
    from repro.cartridges import text

    db = Database()
    text.install(db)
    db.execute("CREATE TABLE employees (name VARCHAR2(128), id INTEGER,"
               " resume VARCHAR2(1024))")
    db.execute("INSERT INTO employees VALUES ('Amy', 1,"
               " 'Oracle and UNIX expert')")
    db.execute("CREATE INDEX resume_text_idx ON employees(resume)"
               " INDEXTYPE IS TextIndexType")
    rows = db.execute("SELECT name FROM employees"
                      " WHERE Contains(resume, 'Oracle AND UNIX')").fetchall()
"""

from repro.errors import (
    CallbackError,
    CallbackTimeoutError,
    CallbackViolation,
    CatalogError,
    ConstraintError,
    DatabaseError,
    DeadlockError,
    ExecutionError,
    ExtensibleIndexError,
    FatalCallbackError,
    IndextypeError,
    IndexUnusableError,
    LockTimeoutError,
    ODCIError,
    OperatorBindingError,
    ParseError,
    PrivilegeError,
    StorageError,
    TransactionError,
    TransientCallbackError,
    TypeMismatchError,
    WALError,
)
from repro.sql.engine import Engine
from repro.sql.session import Cursor, Database, Session
from repro.core import (
    FetchResult,
    IndexMethods,
    IndexCost,
    IndexState,
    ODCIEnv,
    ODCIIndexInfo,
    ODCIPredInfo,
    ODCIQueryInfo,
    PrecomputedScan,
    ScanContext,
    StatsMethods,
)
from repro.types.values import NULL

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Engine",
    "Session",
    "Cursor",
    "NULL",
    "IndexMethods",
    "StatsMethods",
    "IndexCost",
    "FetchResult",
    "ODCIEnv",
    "ODCIIndexInfo",
    "ODCIPredInfo",
    "ODCIQueryInfo",
    "ScanContext",
    "PrecomputedScan",
    "DatabaseError",
    "ParseError",
    "CatalogError",
    "TypeMismatchError",
    "ConstraintError",
    "ExecutionError",
    "PrivilegeError",
    "TransactionError",
    "LockTimeoutError",
    "DeadlockError",
    "StorageError",
    "WALError",
    "ExtensibleIndexError",
    "ODCIError",
    "CallbackError",
    "TransientCallbackError",
    "CallbackTimeoutError",
    "FatalCallbackError",
    "IndexUnusableError",
    "IndexState",
    "CallbackViolation",
    "OperatorBindingError",
    "IndextypeError",
    "__version__",
]
