"""Network server: the engine behind a socket, PEP 249 in front.

The paper's argument is that domain indexes stay invisible behind the
standard client surface (§1).  :mod:`repro.server` extends that surface
across the process boundary: a :class:`~repro.server.server.Server`
speaks the length-prefixed protocol of :mod:`repro.server.protocol`,
and ``repro.dbapi.connect("repro://host:port")`` returns a connection
wire-indistinguishable from the in-process driver.

See docs/SERVER.md for the protocol specification and deployment
knobs, DESIGN.md §13 for the architecture.
"""

from repro.server.protocol import (
    DEFAULT_PORT, MAGIC, MAX_FRAME, PROTOCOL_VERSION, ConnectionClosed,
    ProtocolError)
from repro.server.server import Server, ServerStats, serve

__all__ = [
    "Server",
    "ServerStats",
    "serve",
    "ProtocolError",
    "ConnectionClosed",
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "MAGIC",
    "MAX_FRAME",
]
