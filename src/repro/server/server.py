"""The network server: real client processes in front of one engine.

One :class:`Server` owns (or borrows) a shared
:class:`~repro.sql.engine.Engine` and serves it over TCP with the
framed protocol in :mod:`repro.server.protocol`.  The shape mirrors
the engine's own concurrency model: a thread-per-connection accept
loop where every connection gets its own
:class:`~repro.sql.session.Session` (the per-connection state of
DESIGN.md §8), while the catalog, buffer cache, plan cache, lock
manager, MVCC manager, and WAL stay shared.  What PR 6/7 built for
threads — lock-free snapshot SELECTs, group-commit durability — is
exactly what concurrent client *processes* exercise through this
module.

Lifecycle guarantees:

* **bounded session pool** — at most ``max_sessions`` concurrent
  connections; the (``max_sessions`` + 1)-th is answered with a typed
  error frame and closed, never queued invisibly;
* **idle timeout** — a connection that sends nothing for
  ``idle_timeout`` seconds is told so (typed error frame, best
  effort), its transaction rolled back, its session torn down;
* **statement timeout** — ``statement_timeout`` rides the dispatcher's
  existing per-routine wall-clock budgets
  (:attr:`~repro.core.dispatch.CallbackDispatcher.default_timeout`):
  every ODCI callback a statement runs is individually bounded, so a
  runaway domain-index scan fails with
  :class:`~repro.errors.CallbackTimeoutError` instead of pinning a
  server thread forever (pure built-in SQL is not preemptible — see
  docs/SERVER.md);
* **graceful drain** — :meth:`Server.shutdown` refuses new accepts,
  lets every in-flight statement finish and send its response, then
  closes sessions (rolling back open transactions, firing
  ``ODCIIndexClose`` for abandoned scans) and finally calls
  ``Engine.close()`` (WAL flush + checkpoint) when the server owns the
  engine.

Statistics are exposed through the ``user_server_stats`` dictionary
view of the served engine, so monitoring rides the same SQL surface as
everything else.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import errors as _errors
from repro.server.protocol import (
    MAGIC, MAX_FRAME, PROTOCOL_VERSION, ConnectionClosed, ProtocolError,
    encode_error, recv_frame, send_frame)
from repro.sql.engine import Engine

__all__ = ["Server", "ServerStats", "serve"]

#: session settings a client may set in the handshake
SESSION_SETTINGS = frozenset((
    "lock_timeout", "skip_unusable_indexes", "snapshot_reads",
    "batch_index_maintenance", "deferred_index_maintenance",
    "bulk_index_build", "compile_expressions", "fetch_batch_size",
    "vectorized_execution",
))

#: latency histogram bucket upper bounds, in milliseconds
_LATENCY_BUCKETS_MS = (0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _latency_bucket(seconds: float) -> str:
    ms = seconds * 1000.0
    for bound in _LATENCY_BUCKETS_MS:
        if ms <= bound:
            return f"<={bound}ms"
    return f">{_LATENCY_BUCKETS_MS[-1]}ms"


class ServerStats:
    """Counters + per-operation latency histogram for one server.

    All mutation happens under one latch; ``snapshot()`` returns plain
    dicts so the ``user_server_stats`` view (and the ``stats`` wire op)
    can publish a consistent picture without holding it.
    """

    def __init__(self) -> None:
        self._latch = threading.Lock()
        self.address: Optional[Tuple[str, int]] = None
        self.connections_accepted = 0
        self.connections_rejected = 0
        self.handshake_failures = 0
        self.idle_timeouts = 0
        self.active_sessions = 0
        self.sessions_peak = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.requests = 0
        self.errors = 0
        #: op name → request count
        self.op_counts: Dict[str, int] = {}
        #: op name → bucket label → count
        self.op_latency: Dict[str, Dict[str, int]] = {}

    def connection_opened(self) -> None:
        with self._latch:
            self.connections_accepted += 1
            self.active_sessions += 1
            self.sessions_peak = max(self.sessions_peak,
                                     self.active_sessions)

    def connection_closed(self) -> None:
        with self._latch:
            self.active_sessions -= 1

    def connection_rejected(self) -> None:
        with self._latch:
            self.connections_accepted += 1
            self.connections_rejected += 1

    def traffic(self, bytes_in: int = 0, bytes_out: int = 0) -> None:
        with self._latch:
            self.bytes_in += bytes_in
            self.bytes_out += bytes_out

    def observe(self, op: str, seconds: float, error: bool = False) -> None:
        with self._latch:
            self.requests += 1
            if error:
                self.errors += 1
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            histogram = self.op_latency.setdefault(op, {})
            bucket = _latency_bucket(seconds)
            histogram[bucket] = histogram.get(bucket, 0) + 1

    def idle_timeout(self) -> None:
        with self._latch:
            self.idle_timeouts += 1

    def handshake_failed(self) -> None:
        with self._latch:
            self.handshake_failures += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._latch:
            return {
                "address": self.address,
                "connections_accepted": self.connections_accepted,
                "connections_rejected": self.connections_rejected,
                "handshake_failures": self.handshake_failures,
                "idle_timeouts": self.idle_timeouts,
                "active_sessions": self.active_sessions,
                "sessions_peak": self.sessions_peak,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "requests": self.requests,
                "errors": self.errors,
                "op_counts": dict(self.op_counts),
                "op_latency": {op: dict(h)
                               for op, h in self.op_latency.items()},
            }


class _Handler:
    """One connected client: a socket, a session, a cursor registry."""

    def __init__(self, server: "Server", sock: socket.socket,
                 addr: Tuple[str, int]):
        self.server = server
        self.sock = sock
        self.addr = addr
        self.session: Any = None
        self.cursors: Dict[int, Any] = {}
        self._next_cursor = 1
        #: held while a request is being processed *and* its response
        #: sent — shutdown() acquires it to let in-flight work finish
        self.busy = threading.Lock()
        self.stopping = False
        self.thread = threading.Thread(
            target=self.run, name=f"repro-server-{addr[0]}:{addr[1]}",
            daemon=True)

    # -- plumbing ----------------------------------------------------------

    def _send(self, op: str, payload: Optional[Dict[str, Any]] = None) -> None:
        sent = send_frame(self.sock, op, payload,
                          max_frame=self.server.max_frame)
        self.server.stats.traffic(bytes_out=sent)

    def _send_error(self, exc: BaseException) -> None:
        from repro.dbapi import _map_error
        if isinstance(exc, ProtocolError):
            dbapi_name = "InterfaceError"
        elif isinstance(exc, _errors.DatabaseError):
            dbapi_name = type(_map_error(exc)).__name__
        else:
            dbapi_name = "InternalError"
        self._send("error", encode_error(exc, dbapi_name))

    def _best_effort_error(self, exc: BaseException) -> None:
        try:
            self._send_error(exc)
        except OSError:
            pass

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        server = self.server
        try:
            if not self._handshake():
                return
            self._loop()
        except (ConnectionClosed, OSError):
            pass  # client went away; teardown below reclaims everything
        except ProtocolError as exc:
            self._best_effort_error(exc)
        finally:
            self._teardown()
            server.stats.connection_closed()
            server._release(self)

    def _handshake(self) -> bool:
        server = self.server
        self.sock.settimeout(server.handshake_timeout)
        try:
            op, payload, nbytes = recv_frame(self.sock, server.max_frame)
        except socket.timeout:
            server.stats.handshake_failed()
            return False
        server.stats.traffic(bytes_in=nbytes)
        try:
            if op != "hello":
                raise ProtocolError(
                    f"expected hello frame, got {op!r}")
            if payload.get("magic") != MAGIC:
                raise ProtocolError("not a repro client (bad magic)")
            version = payload.get("version")
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: client speaks "
                    f"{version!r}, server speaks {PROTOCOL_VERSION}")
            settings = payload.get("settings") or {}
            unknown = set(settings) - SESSION_SETTINGS
            if unknown:
                raise ProtocolError(
                    f"unknown session setting(s): {sorted(unknown)}")
        except ProtocolError as exc:
            server.stats.handshake_failed()
            self._best_effort_error(exc)
            return False
        self.session = server.engine.connect(
            str(payload.get("user", "main")))
        for name, value in settings.items():
            setattr(self.session, name, value)
        self._send("welcome", {
            "version": PROTOCOL_VERSION,
            "session_id": self.session.session_id,
            "server": "repro",
        })
        return True

    def _loop(self) -> None:
        server = self.server
        while not self.stopping:
            self.sock.settimeout(server.idle_timeout)
            try:
                op, payload, nbytes = recv_frame(self.sock,
                                                 server.max_frame)
            except socket.timeout:
                server.stats.idle_timeout()
                self._best_effort_error(_errors.TransactionError(
                    f"session idle for more than "
                    f"{server.idle_timeout}s; transaction rolled back "
                    "and connection closed"))
                return
            with self.busy:
                if self.stopping:
                    return
                server.stats.traffic(bytes_in=nbytes)
                if server._draining and op not in (
                        "commit", "rollback", "close"):
                    self._best_effort_error(_errors.TransactionError(
                        "server is shutting down; no new statements "
                        "accepted"))
                    return
                start = time.perf_counter()
                error: Optional[BaseException] = None
                closing = False
                try:
                    closing, reply_op, reply = self._dispatch(op, payload)
                except _errors.DatabaseError as exc:
                    # statement-level failure: report and keep serving
                    error = exc
                except Exception as exc:  # noqa: BLE001 - server bug
                    error = exc
                # observe *before* responding so a stats read racing the
                # client's next move never misses an answered request
                server.stats.observe(op, time.perf_counter() - start,
                                     error=error is not None)
                if error is not None:
                    self._send_error(error)
                else:
                    self._send(reply_op, reply)
                if closing:
                    return

    # -- request dispatch --------------------------------------------------

    def _dispatch(self, op: str,
                  payload: Dict[str, Any]) -> Tuple[bool, str,
                                                    Dict[str, Any]]:
        """Handle one request; returns (connection done, reply op,
        reply payload).  The caller records stats and sends the reply."""
        session = self.session
        if op == "execute":
            self._begin_if_needed()
            cursor = session.execute(payload.get("sql", ""),
                                     payload.get("binds"))
            return False, "result", self._describe(cursor)
        if op == "executemany":
            self._begin_if_needed()
            cursor = session.executemany(payload.get("sql", ""),
                                         payload.get("binds_seq") or [])
            return False, "result", self._describe(cursor)
        if op == "fetch":
            return False, "rows", self._fetch(payload)
        if op == "close_cursor":
            cursor = self.cursors.pop(payload.get("cursor"), None)
            if cursor is not None:
                cursor.close()
            return False, "ok", {}
        if op == "commit":
            session.commit()
            return False, "ok", {}
        if op == "rollback":
            session.rollback()
            return False, "ok", {}
        if op == "stats":
            return False, "ok", {"stats": self.server.stats.snapshot()}
        if op == "close":
            return True, "ok", {}
        raise ProtocolError(f"unknown operation {op!r}")

    def _begin_if_needed(self) -> None:
        # same implicit-transaction rule as the in-process driver: the
        # first statement of a connection (or after commit/rollback)
        # begins one; DDL still autocommits inside the engine
        if not self.session.in_transaction:
            self.session.begin()

    def _describe(self, cursor: Any) -> Dict[str, Any]:
        if cursor.description is None:
            cursor.close()
            return {"cursor": None, "description": None,
                    "rowcount": cursor.rowcount}
        cursor_id = self._next_cursor
        self._next_cursor += 1
        self.cursors[cursor_id] = cursor
        return {"cursor": cursor_id,
                "description": list(cursor.description),
                "rowcount": cursor.rowcount}

    def _fetch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        cursor_id = payload.get("cursor")
        n = int(payload.get("n", 1))
        cursor = self.cursors.get(cursor_id)
        if cursor is None:
            raise ProtocolError(f"unknown or closed cursor {cursor_id!r}")
        rows = cursor.fetchmany(n) if n > 0 else cursor.fetchall()
        done = len(rows) < n or n <= 0
        if done:
            cursor.close()
            self.cursors.pop(cursor_id, None)
        return {"rows": rows, "done": done}

    # -- teardown ----------------------------------------------------------

    def _teardown(self) -> None:
        """Reclaim everything the connection held, best effort.

        Cursors abandoned mid-fetch get their ``ODCIIndexClose`` and
        give their workspace handles back; the open transaction rolls
        back; the session detaches.  Ordering matters: cursors first
        (scan state may pin the transaction's snapshot), then the
        session (which rolls back and closes anything it still
        tracks).
        """
        for cursor in list(self.cursors.values()):
            try:
                cursor.close()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        self.cursors.clear()
        if self.session is not None:
            try:
                self.session.close()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
            self.session = None
        try:
            self.sock.close()
        except OSError:
            pass


class Server:
    """TCP front end for one shared engine.

    ``Server()`` with no engine creates a private in-memory
    :class:`~repro.sql.engine.Engine` (pass ``data_dir=`` for a durable
    one) and closes it on shutdown; pass ``engine=`` to serve an engine
    the caller owns — e.g. one that test or bench code also drives
    in-process for cross-validation.

    Usable as a context manager::

        with Server(port=0) as server:
            conn = dbapi.connect(server.url)
    """

    def __init__(self, engine: Optional[Engine] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_sessions: int = 32,
                 idle_timeout: Optional[float] = None,
                 statement_timeout: Optional[float] = None,
                 handshake_timeout: float = 10.0,
                 max_frame: int = MAX_FRAME,
                 backlog: int = 64,
                 data_dir: Optional[str] = None,
                 **engine_options: Any):
        if engine is not None and (data_dir is not None or engine_options):
            raise ValueError(
                "engine options are only valid when the server creates "
                "its own engine")
        self._owns_engine = engine is None
        if engine is None:
            engine = Engine(data_dir=data_dir, **engine_options)
        self.engine = engine
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self.statement_timeout = statement_timeout
        self.handshake_timeout = handshake_timeout
        self.max_frame = max_frame
        self.backlog = backlog
        self.stats = ServerStats()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[_Handler] = []
        self._handlers_latch = threading.Lock()
        self._draining = False
        self._started = False
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Server":
        """Bind, listen, and start accepting in a background thread."""
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self.backlog)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self.stats.address = (self.host, self.port)
        #: publish statistics through the engine's dictionary views
        self.engine.server_stats = self.stats
        if (self.statement_timeout is not None
                and self.engine.dispatcher.default_timeout is None):
            # ride the dispatcher's existing wall-clock budgets: every
            # ODCI callback of every statement is individually bounded
            self.engine.dispatcher.default_timeout = self.statement_timeout
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept",
            daemon=True)
        self._started = True
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolved after :meth:`start`)."""
        return (self.host, self.port)

    @property
    def url(self) -> str:
        """The DSN clients connect with: ``repro://host:port``."""
        return f"repro://{self.host}:{self.port}"

    def shutdown(self, drain_timeout: float = 30.0) -> None:
        """Graceful drain: finish in-flight statements, then stop.

        New accepts are refused immediately; each connected client's
        current statement (if any) completes and its response is sent;
        then connections close, sessions tear down (open transactions
        roll back, abandoned scans fire ``ODCIIndexClose``), and — when
        the server owns its engine — ``Engine.close()`` runs last so a
        durable engine flushes its WAL and checkpoints.
        """
        if not self._started or self._stopped:
            return
        self._draining = True
        listener, self._listener = self._listener, None
        if listener is not None:
            # shutdown() before close(): closing alone does not wake a
            # thread blocked in accept() on Linux, shutting down does
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain_timeout)
        deadline = time.monotonic() + drain_timeout
        with self._handlers_latch:
            handlers = list(self._handlers)
        for handler in handlers:
            # waits for the in-flight statement (and its response)
            acquired = handler.busy.acquire(
                timeout=max(0.0, deadline - time.monotonic()))
            try:
                handler.stopping = True
                try:
                    handler.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
            finally:
                if acquired:
                    handler.busy.release()
        for handler in handlers:
            handler.thread.join(
                timeout=max(0.1, deadline - time.monotonic()))
        if self._owns_engine:
            self.engine.close()
        self._stopped = True

    close = shutdown

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    # -- accept loop -------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None and not self._draining:
            try:
                sock, addr = listener.accept()
            except OSError:
                break  # listener closed: drain began
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._handlers_latch:
                active = len(self._handlers)
            if self._draining or active >= self.max_sessions:
                self.stats.connection_rejected()
                reason = ("server is shutting down" if self._draining
                          else f"session pool exhausted "
                               f"({self.max_sessions} sessions)")
                try:
                    send_frame(sock, "error", encode_error(
                        _errors.TransactionError(reason),
                        "OperationalError"))
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            handler = _Handler(self, sock, addr)
            with self._handlers_latch:
                self._handlers.append(handler)
            self.stats.connection_opened()
            handler.thread.start()

    def _release(self, handler: _Handler) -> None:
        with self._handlers_latch:
            try:
                self._handlers.remove(handler)
            except ValueError:
                pass


def serve(engine: Optional[Engine] = None, host: str = "127.0.0.1",
          port: int = 0, **options: Any) -> Server:
    """Create and start a :class:`Server`; returns it running."""
    return Server(engine=engine, host=host, port=port, **options).start()
