"""Wire protocol: length-prefixed binary frames over TCP.

The paper's client surface is plain SQL through a stock driver; this
module defines the framing that carries it across a process boundary.
Every message is one *frame*::

    +----------------+---------------------------+
    | length (4B BE) | payload (pickled message) |
    +----------------+---------------------------+

and a *message* is a ``(op, payload)`` pair: an operation name plus a
dict of operands.  Requests and responses share the framing; the
session handshake carries the protocol version so both sides can
refuse a peer they do not understand with a typed error frame instead
of undefined behaviour.

Request operations (client → server):

===============  =====================================================
``hello``        handshake: magic, protocol version, user, settings
``execute``      one statement with positional binds
``executemany``  one statement once per parameter set (array DML)
``fetch``        next ``n`` rows of an open server-side cursor
``close_cursor`` release a server-side cursor early
``commit``       commit the session's open transaction
``rollback``     roll it back
``stats``        server statistics snapshot (monitoring)
``close``        clean session shutdown
===============  =====================================================

Response operations (server → client): ``welcome`` (handshake accept),
``ok``, ``result`` (statement accepted: cursor id, description,
rowcount), ``rows`` (one fetch batch + done flag), and ``error``.

An **error frame** is typed: it carries the :mod:`repro.errors` class
name, the message, the DB-API exception class name the driver should
raise, and — when the server-side exception pickles cleanly — the
exception object itself, so the client re-raises the *exact* class
with the remote error attached as ``__cause__``.

The payload codec is pickle (the same codec the WAL uses for log
records): this is a Python-engine-to-Python-driver protocol for
*trusted* networks — unpickling attacker-controlled bytes is arbitrary
code execution, so never expose the port beyond a trust boundary (see
docs/SERVER.md).
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro import errors as _errors

__all__ = [
    "PROTOCOL_VERSION", "MAGIC", "DEFAULT_PORT", "MAX_FRAME",
    "ProtocolError", "ConnectionClosed",
    "send_frame", "recv_frame", "encode_error", "decode_error",
]

#: bumped on any incompatible framing/message change; the handshake
#: carries it and mismatches are refused with a typed error frame
PROTOCOL_VERSION = 1

#: handshake watermark: a peer that does not send it is not a repro client
MAGIC = "RPRO"

#: default TCP port for ``repro://host`` DSNs without an explicit port
DEFAULT_PORT = 7878

#: hard per-frame size limit, both directions.  A length prefix beyond
#: this is treated as a malformed frame (protects the server from one
#: bad client allocating unbounded memory; raise it for huge LOB rows).
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(_errors.DatabaseError):
    """The byte stream violated the framing or message contract."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (EOF mid-conversation)."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------

def send_frame(sock: socket.socket, op: str,
               payload: Optional[Dict[str, Any]] = None,
               max_frame: int = MAX_FRAME) -> int:
    """Serialize ``(op, payload)`` and send it as one frame.

    Returns the number of bytes written (header included) so callers
    can account traffic.
    """
    body = pickle.dumps((op, payload or {}), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > max_frame:
        raise ProtocolError(
            f"outgoing {op} frame of {len(body)} bytes exceeds the "
            f"{max_frame}-byte frame limit")
    sock.sendall(_HEADER.pack(len(body)) + body)
    return _HEADER.size + len(body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionClosed`."""
    chunks = io.BytesIO()
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {n} "
                "frame bytes outstanding")
        chunks.write(chunk)
        remaining -= len(chunk)
    return chunks.getvalue()


def recv_frame(sock: socket.socket,
               max_frame: int = MAX_FRAME) -> Tuple[str, Dict[str, Any], int]:
    """Read one frame; returns ``(op, payload, bytes_read)``.

    Raises :class:`ConnectionClosed` on clean EOF *before* a header
    (the peer hung up between messages — not an error for a server),
    and :class:`ProtocolError` for every malformed shape: truncated
    header or body, oversized length prefix, bytes that do not
    unpickle, or a message that is not an ``(op, dict)`` pair.
    """
    header = sock.recv(_HEADER.size)
    if not header:
        raise ConnectionClosed("peer closed the connection")
    while len(header) < _HEADER.size:
        more = sock.recv(_HEADER.size - len(header))
        if not more:
            raise ProtocolError(
                f"truncated frame header ({len(header)} of "
                f"{_HEADER.size} bytes)")
        header += more
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame length {length} exceeds the {max_frame}-byte limit")
    try:
        body = _recv_exact(sock, length)
    except ConnectionClosed as exc:
        raise ProtocolError(f"truncated frame body: {exc}") from exc
    try:
        message = pickle.loads(body)
    except Exception as exc:  # noqa: BLE001 - anything is malformed here
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if (not isinstance(message, tuple) or len(message) != 2
            or not isinstance(message[0], str)
            or not isinstance(message[1], dict)):
        raise ProtocolError(
            f"malformed message: expected (op, payload) pair, "
            f"got {type(message).__name__}")
    return message[0], message[1], _HEADER.size + length


# ----------------------------------------------------------------------
# typed error frames
# ----------------------------------------------------------------------

def encode_error(exc: BaseException, dbapi_name: str) -> Dict[str, Any]:
    """Build the payload of a typed error frame.

    ``dbapi_name`` is the PEP 249 class the driver should raise (the
    server computes it with the same repro→DB-API map the in-process
    driver uses).  The original exception rides along pickled when it
    round-trips cleanly; otherwise the class name + message suffice for
    a faithful (if attribute-poorer) reconstruction.
    """
    payload: Dict[str, Any] = {
        "error": type(exc).__name__,
        "message": str(exc),
        "dbapi": dbapi_name,
    }
    try:
        blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.loads(blob)  # must survive the round trip, not just dump
    except Exception:  # noqa: BLE001 - fall back to name + message
        pass
    else:
        payload["pickled"] = blob
    return payload


def decode_error(payload: Dict[str, Any]) -> BaseException:
    """Rebuild the server-side exception from an error frame payload.

    Preference order: the pickled original; the named
    :mod:`repro.errors` class constructed from the message (walking up
    the MRO when the constructor needs more than a message); a bare
    :class:`~repro.errors.DatabaseError`.
    """
    blob = payload.get("pickled")
    if blob is not None:
        try:
            exc = pickle.loads(blob)
            if isinstance(exc, BaseException):
                return exc
        except Exception:  # noqa: BLE001 - degrade to name + message
            pass
    name = payload.get("error", "DatabaseError")
    message = payload.get("message", "")
    cls = getattr(_errors, name, None)
    if cls is None and name in ("ProtocolError", "ConnectionClosed"):
        cls = globals()[name]
    candidates = list(getattr(cls, "__mro__", ())) or [_errors.DatabaseError]
    for candidate in candidates:
        if not (isinstance(candidate, type)
                and issubclass(candidate, BaseException)):
            continue
        try:
            return candidate(message)
        except TypeError:
            continue
    return _errors.DatabaseError(message)
