"""The extensible indexing framework — the paper's primary contribution.

This package defines the contract between the server and a cartridge:

* :mod:`repro.core.odci` — the ODCIIndex interface (definition,
  maintenance, scan routines) and its descriptor records,
* :mod:`repro.core.scan_context` — return-state/return-handle scan
  contexts and the workspace manager,
* :mod:`repro.core.operators` — user-defined operators and bindings,
* :mod:`repro.core.indextype` — the indextype schema object,
* :mod:`repro.core.domain_index` — domain index instances,
* :mod:`repro.core.stats` — the extensible-optimizer statistics
  interface (ODCIStatsSelectivity / ODCIStatsIndexCost),
* :mod:`repro.core.callbacks` — server callbacks with the §2.5 phase
  restrictions,
* :mod:`repro.core.dispatch` — the fault-isolating dispatcher every
  ODCI callback is routed through (§2.6–2.7 degradation).
"""

from repro.core.odci import (
    IndexMethods,
    ODCIEnv,
    ODCIIndexInfo,
    ODCIPredInfo,
    ODCIQueryInfo,
    FetchResult,
)
from repro.core.scan_context import ScanContext, PrecomputedScan, Workspace
from repro.core.operators import Operator, OperatorBinding
from repro.core.indextype import Indextype
from repro.core.dispatch import CallbackDispatcher, RoutineMetrics
from repro.core.domain_index import DomainIndex, IndexState
from repro.core.stats import StatsMethods, IndexCost
from repro.core.callbacks import CallbackSession, CallbackPhase

__all__ = [
    "CallbackDispatcher",
    "RoutineMetrics",
    "IndexState",
    "IndexMethods",
    "ODCIEnv",
    "ODCIIndexInfo",
    "ODCIPredInfo",
    "ODCIQueryInfo",
    "FetchResult",
    "ScanContext",
    "PrecomputedScan",
    "Workspace",
    "Operator",
    "OperatorBinding",
    "Indextype",
    "DomainIndex",
    "StatsMethods",
    "IndexCost",
    "CallbackSession",
    "CallbackPhase",
]
