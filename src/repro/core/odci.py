"""The ODCIIndex interface: what a cartridge implements.

Section 2.2.3 of the paper defines three groups of routines a cartridge
supplies as methods of a type:

* **definition** — ``ODCIIndexCreate/Alter/Truncate/Drop``,
* **maintenance** — ``ODCIIndexInsert/Update/Delete``,
* **scan** — ``ODCIIndexStart/Fetch/Close``.

:class:`IndexMethods` is that type.  The server (the session layer)
instantiates the registered class once per domain index and invokes the
routines at the appropriate points, passing an :class:`ODCIIndexInfo`
describing the index, an :class:`ODCIEnv` giving access to server
callbacks, and — for scans — an :class:`ODCIPredInfo` /
:class:`ODCIQueryInfo` pair describing the operator predicate being
evaluated, exactly as in the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ODCIError


@dataclass
class ODCIIndexInfo:
    """Metadata describing the domain index an ODCI routine operates on.

    "The domain index metadata information such as the index name, table
    name, and names of the indexed columns and their data types, are
    passed in as arguments to all the ODCIIndex routines." (§2.2.3)
    """

    index_name: str
    index_schema: str
    table_name: str
    column_names: Tuple[str, ...]
    column_types: Tuple[Any, ...]
    parameters: str = ""


@dataclass
class ODCIPredInfo:
    """The operator predicate an index scan must evaluate.

    §2.4.2: predicates of the form ``op(...) relop <value>`` are the
    candidates for index-scan evaluation; the bounds on the operator's
    return value arrive here as ``lower_bound``/``upper_bound`` (either
    may be None for an open side).
    """

    operator_name: str
    operator_args: Tuple[Any, ...] = ()
    lower_bound: Optional[Any] = None
    upper_bound: Optional[Any] = None
    include_lower: bool = True
    include_upper: bool = True
    flags: frozenset = frozenset()

    def with_args(self, operator_args: Tuple[Any, ...]) -> "ODCIPredInfo":
        """A copy of this descriptor carrying per-execution argument values.

        Plans live in the shared plan cache, so the descriptor attached
        to a plan node is immutable template state; each execution gets
        its own copy with that run's evaluated operator arguments.
        """
        return replace(self, operator_args=operator_args)

    def bound_accepts(self, value: Any) -> bool:
        """True when ``value`` satisfies the return-value bounds."""
        if self.lower_bound is not None:
            if value < self.lower_bound:
                return False
            if not self.include_lower and value == self.lower_bound:
                return False
        if self.upper_bound is not None:
            if value > self.upper_bound:
                return False
            if not self.include_upper and value == self.upper_bound:
                return False
        return True


@dataclass
class ODCIQueryInfo:
    """Query-level context for a scan.

    ``first_rows`` tells the cartridge the optimizer wants streaming
    behaviour (time-to-first-row); ``ancillary_label`` is set when an
    ancillary operator (e.g. ``Score``) will consume auxiliary output of
    this scan (§2.4.2).
    """

    first_rows: bool = False
    ancillary_label: Optional[int] = None


@dataclass
class FetchResult:
    """Result of one ``ODCIIndexFetch`` call.

    ``rowids`` holds up to the requested batch; ``aux`` optionally holds
    one auxiliary value per rowid (consumed by ancillary operators).
    ``done`` is the null-rowid terminator of the paper: "The end of the
    scan can be indicated by returning a null row identifier."
    """

    rowids: List[Any] = field(default_factory=list)
    aux: Optional[List[Any]] = None
    done: bool = False


class ODCIEnv:
    """Execution environment passed to every ODCI routine.

    ``callback`` is the restricted SQL session (server callbacks, §2.5);
    ``workspace`` allocates return-handle scan state (§2.2.3); ``stats``
    exposes the shared I/O counters so cartridges can account index work.
    """

    def __init__(self, callback: Any, workspace: Any, stats: Any,
                 trace: Optional[Any] = None, invoker: str = "",
                 definer: str = "", lobs: Any = None, files: Any = None,
                 events: Any = None, bulk_build: bool = True):
        self.callback = callback
        self.workspace = workspace
        self.stats = stats
        self._trace = trace
        self.invoker = invoker
        self.definer = definer
        #: LOB manager — index data "stored ... in Large Objects (LOBs)"
        self.lobs = lobs
        #: external file store — index data "stored outside the database"
        self.files = files
        #: database-event manager (§5's commit/rollback hooks)
        self.events = events
        #: whether CREATE/REBUILD may use the cartridge's bulk-build path
        #: (the ``bulk_index_build`` session setting); cartridges that
        #: support sorted/packed construction consult this and fall back
        #: to row-at-a-time loading when it is off
        self.bulk_build = bulk_build

    @property
    def trace_enabled(self) -> bool:
        """Whether trace lines are being recorded.

        Hot paths check this before *building* a trace message, so the
        per-row f-string cost disappears entirely when tracing is off.
        """
        return self._trace is not None

    def trace(self, message: str) -> None:
        """Record a framework-trace line (architecture figure F1)."""
        if self._trace is not None:
            self._trace.append(message)


class IndexMethods(abc.ABC):
    """Base class for an indextype's implementation type.

    Cartridge developers subclass this and register the subclass with
    the database (``db.register_methods``); ``CREATE INDEXTYPE ... USING
    <name>`` then ties an indextype to it.  Routines the paper makes
    optional have default implementations; the definition, maintenance,
    and scan cores are abstract.

    Scan protocol: :meth:`index_start` returns either a scan-context
    object (*return state*) or an integer workspace handle obtained from
    ``env.workspace`` (*return handle*); whatever it returns is passed
    back to :meth:`index_fetch` and :meth:`index_close` (§2.2.3).
    """

    # -- index definition routines -----------------------------------------

    @abc.abstractmethod
    def index_create(self, ia: ODCIIndexInfo, parameters: str,
                     env: ODCIEnv) -> None:
        """ODCIIndexCreate: build storage for the index and load existing rows."""

    def index_alter(self, ia: ODCIIndexInfo, parameters: str,
                    env: ODCIEnv) -> None:
        """ODCIIndexAlter: apply a new PARAMETERS string (default: error)."""
        raise ODCIError("ODCIIndexAlter",
                        f"indextype {type(self).__name__} does not support ALTER")

    @abc.abstractmethod
    def index_drop(self, ia: ODCIIndexInfo, env: ODCIEnv) -> None:
        """ODCIIndexDrop: drop the index storage."""

    def index_truncate(self, ia: ODCIIndexInfo, env: ODCIEnv) -> None:
        """ODCIIndexTruncate: clear index data (default: drop + create)."""
        self.index_drop(ia, env)
        self.index_create(ia, ia.parameters, env)

    # -- index maintenance routines ---------------------------------------

    @abc.abstractmethod
    def index_insert(self, ia: ODCIIndexInfo, rowid: Any, new_values: Sequence[Any],
                     env: ODCIEnv) -> None:
        """ODCIIndexInsert: add entries for a newly inserted row."""

    @abc.abstractmethod
    def index_delete(self, ia: ODCIIndexInfo, rowid: Any, old_values: Sequence[Any],
                     env: ODCIEnv) -> None:
        """ODCIIndexDelete: remove entries for a deleted row."""

    def index_update(self, ia: ODCIIndexInfo, rowid: Any,
                     old_values: Sequence[Any], new_values: Sequence[Any],
                     env: ODCIEnv) -> None:
        """ODCIIndexUpdate: default is delete-old + insert-new (§2.2.3)."""
        self.index_delete(ia, rowid, old_values, env)
        self.index_insert(ia, rowid, new_values, env)

    # -- array maintenance routines ----------------------------------------
    #
    # One call per index per *statement* instead of per row.  ``entries``
    # carries the statement's maintenance queue for this index, in row
    # order.  The defaults loop the scalar routines, so scalar-only
    # indextypes keep working unchanged; when a cartridge overrides one
    # of these, the dispatcher routes the whole batch through it in a
    # single callback crossing (per-entry fault attribution is preserved
    # by the dispatch seam, not by the cartridge).

    def index_insert_batch(self, ia: ODCIIndexInfo,
                           entries: Sequence[Tuple[Any, Sequence[Any]]],
                           env: ODCIEnv) -> None:
        """ODCIIndexInsertBatch: add entries for ``(rowid, new_values)`` pairs."""
        for rowid, new_values in entries:
            self.index_insert(ia, rowid, new_values, env)

    def index_delete_batch(self, ia: ODCIIndexInfo,
                           entries: Sequence[Tuple[Any, Sequence[Any]]],
                           env: ODCIEnv) -> None:
        """ODCIIndexDeleteBatch: remove entries for ``(rowid, old_values)`` pairs."""
        for rowid, old_values in entries:
            self.index_delete(ia, rowid, old_values, env)

    def index_update_batch(
            self, ia: ODCIIndexInfo,
            entries: Sequence[Tuple[Any, Sequence[Any], Sequence[Any]]],
            env: ODCIEnv) -> None:
        """ODCIIndexUpdateBatch: apply ``(rowid, old_values, new_values)`` tuples."""
        for rowid, old_values, new_values in entries:
            self.index_update(ia, rowid, old_values, new_values, env)

    # -- index scan routines -------------------------------------------------

    @abc.abstractmethod
    def index_start(self, ia: ODCIIndexInfo, op_info: ODCIPredInfo,
                    query_info: ODCIQueryInfo, env: ODCIEnv) -> Any:
        """ODCIIndexStart: begin a scan; returns scan state or a handle."""

    @abc.abstractmethod
    def index_fetch(self, context: Any, nrows: int, env: ODCIEnv) -> FetchResult:
        """ODCIIndexFetch: return up to ``nrows`` rowids (batch interface)."""

    @abc.abstractmethod
    def index_close(self, context: Any, env: ODCIEnv) -> None:
        """ODCIIndexClose: release scan resources."""
