"""Scan contexts and the workspace manager.

Section 2.2.3 describes two mechanisms for carrying scan state between
``ODCIIndexStart``/``Fetch``/``Close``:

* **Return State** — small state is returned to the server directly (in
  this engine: any Python object returned by ``index_start``);
* **Return Handle** — large state (e.g. a precomputed result set) is
  parked in a temporary *workspace* "primarily memory resident, but can
  be paged to disk", and only an integer handle crosses the interface.

:class:`Workspace` implements the handle registry with a memory budget
and simulated spill accounting, so the E6 ablation can show the
difference.  :class:`PrecomputedScan` and :class:`ScanContext` are the
two scan-implementation styles the paper names (*Precompute All* vs
*Incremental Computation*).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ODCIError
from repro.storage.page import estimate_size


class Workspace:
    """Registry of handle → scan state for the *return handle* mechanism.

    ``memory_budget`` caps the simulated resident bytes; state beyond
    the budget counts a ``workspace_spills`` statistic (and the bytes as
    ``workspace_spilled_bytes``), standing in for "can be paged to disk".
    """

    def __init__(self, stats: Any, memory_budget: int = 1 << 20):
        self.stats = stats
        self.memory_budget = memory_budget
        self._entries: Dict[int, Any] = {}
        self._sizes: Dict[int, int] = {}
        self._next_handle = 1
        self._resident_bytes = 0
        # workspaces are session-scoped, but a cursor's deferred close
        # can run after the session thread moved on; keep allocate/free
        # atomic so handle accounting never corrupts
        self._latch = threading.Lock()

    def allocate(self, state: Any) -> int:
        """Park ``state`` and return an opaque integer handle."""
        size = estimate_size(state) if not isinstance(state, (list, tuple)) \
            else sum(estimate_size(v) for v in state)
        with self._latch:
            handle = self._next_handle
            self._next_handle += 1
            self._entries[handle] = state
            self._sizes[handle] = size
            self._resident_bytes += size
            overflow = self._resident_bytes - self.memory_budget
        if overflow > 0:
            self.stats.bump("workspace_spills")
            self.stats.bump("workspace_spilled_bytes", overflow)
        return handle

    def resolve(self, handle: int) -> Any:
        """Return the state parked under ``handle``."""
        try:
            return self._entries[handle]
        except KeyError:
            raise ODCIError("Workspace",
                            f"stale or unknown scan handle {handle}") from None

    def free(self, handle: int) -> None:
        """Release ``handle`` and its state."""
        with self._latch:
            if handle in self._entries:
                self._resident_bytes -= self._sizes.pop(handle)
                del self._entries[handle]

    @property
    def live_handles(self) -> int:
        """Number of outstanding handles (leak detection in tests)."""
        return len(self._entries)


class ScanTracker:
    """Registry of open domain-index scans for one statement execution.

    The executor registers a closer (an idempotent callable that drives
    ``ODCIIndexClose`` and frees any workspace handle) for every scan it
    starts, and unregisters it when the scan finishes normally.  A
    cursor abandoned mid-fetch still holds registered closers; closing
    the cursor runs them, so no workspace handles leak without having to
    wait for the garbage collector to finalize the generator stack.
    """

    def __init__(self):
        self._closers: List[Any] = []

    def register(self, closer: Any) -> None:
        """Track an idempotent close callable for an open scan."""
        self._closers.append(closer)

    def unregister(self, closer: Any) -> None:
        """Forget a closer once its scan has completed normally."""
        try:
            self._closers.remove(closer)
        except ValueError:
            pass

    @property
    def open_scans(self) -> int:
        """Number of scans still open."""
        return len(self._closers)

    def close_all(self) -> None:
        """Run every outstanding closer (errors are swallowed)."""
        closers, self._closers = self._closers, []
        for closer in reversed(closers):
            try:
                closer()
            except Exception:
                pass


class ScanContext:
    """Base class for *incremental* scan state (return-state style).

    Subclasses typically hold an open iterator over index tables; the
    default :meth:`next_batch` drains ``self.rows`` produced lazily by
    :meth:`row_source`.
    """

    def __init__(self):
        self._source: Optional[Iterator[Any]] = None
        self.exhausted = False

    def row_source(self) -> Iterator[Any]:
        """Yield rowids (or (rowid, aux) pairs) one at a time."""
        raise NotImplementedError

    def next_batch(self, nrows: int) -> List[Any]:
        """Pull up to ``nrows`` items from the row source."""
        if self._source is None:
            self._source = self.row_source()
        batch: List[Any] = []
        if self.exhausted:
            return batch
        for item in self._source:
            batch.append(item)
            if len(batch) >= nrows:
                break
        if len(batch) < nrows:
            self.exhausted = True
        return batch

    def close(self) -> None:
        """Release any resources (default: drop the iterator)."""
        self._source = None


class PrecomputedScan(ScanContext):
    """*Precompute All* scan state: the whole result computed at start.

    "Compute the entire result set in ODCIIndexStart.  Iterate over the
    results returning a row at a time in ODCIIndexFetch.  This is
    generally the case for operators involving some sort of ranking over
    the entire collection." (§2.2.3)
    """

    def __init__(self, results: List[Any]):
        super().__init__()
        self.results = list(results)
        self._cursor = 0

    def row_source(self) -> Iterator[Any]:
        while self._cursor < len(self.results):
            item = self.results[self._cursor]
            self._cursor += 1
            yield item

    @property
    def remaining(self) -> int:
        """Rows not yet fetched."""
        return len(self.results) - self._cursor
