"""The ODCI callback dispatcher: the server's fault-isolation seam.

The paper's framework asks the server to execute user-supplied indextype
routines in the middle of DDL, DML, query execution, and optimization.
A raw exception (or a hang) escaping one of those routines must not take
the server down with it — Oracle survives a misbehaving cartridge by
marking its domain index FAILED/UNUSABLE and degrading queries to the
operator's functional implementation (§2.6–2.7).

:class:`CallbackDispatcher` is the single choke point every
``ODCIIndex*`` and ``ODCIStats*`` invocation flows through.  It

* **classifies** whatever the routine raised into the typed taxonomy of
  :mod:`repro.errors` — :class:`~repro.errors.CallbackError` for
  database-class failures, :class:`~repro.errors.FatalCallbackError`
  for crash-class (non-database) exceptions, and bounded deterministic
  retry for :class:`~repro.errors.TransientCallbackError`;
* **accounts** per-routine invocation/failure/retry/latency counters
  (:class:`RoutineMetrics`), visible to tests and monitoring;
* **enforces** optional per-routine wall-clock budgets, checked around
  the call (no threads, no signals — a routine that returns after its
  budget is spent fails exactly as if it had raised a
  :class:`~repro.errors.CallbackTimeoutError`);
* **exposes the fault-injection seam**: a
  :class:`~repro.testing.faults.FaultPlan` installed on the dispatcher
  sees every invocation before the cartridge does, can raise injected
  errors or add synthetic latency, and keeps a ledger tests assert on.

The dispatcher never *decides* policy — marking indexes unusable,
retrying statements, or degrading plans is the caller's job; the
dispatcher only guarantees that failure surfaces as a typed, attributed
:class:`~repro.errors.CallbackError` instead of an arbitrary exception.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import (
    CallbackError, CallbackTimeoutError, DatabaseError, FatalCallbackError,
    TransactionError, TransientCallbackError)

#: How many times a TransientCallbackError is retried before the
#: dispatcher gives up (bounded and deterministic — no sleeps, no jitter).
MAX_TRANSIENT_RETRIES = 3


@dataclass
class RoutineMetrics:
    """Per-routine dispatch accounting."""

    invocations: int = 0
    failures: int = 0
    retries: int = 0
    total_seconds: float = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"invocations": self.invocations, "failures": self.failures,
                "retries": self.retries, "total_seconds": self.total_seconds}


def _batch_size_bucket(size: int) -> str:
    """Power-of-two histogram bucket label for a batch size."""
    if size <= 1:
        return "1"
    low = 1 << (size.bit_length() - 1)
    return f"{low}-{low * 2 - 1}"


@dataclass
class IndexMaintenanceStats:
    """Per-index array-maintenance accounting.

    ``entries_queued`` counts maintenance entries the DML layer placed
    in a statement/transaction queue for this index;
    ``entries_flushed`` counts entries that reached a dispatched batch
    (the difference is entries discarded by rollback or degradation).
    ``native_batches`` vs ``shim_batches`` splits batches by whether the
    cartridge implements the array routine or the dispatcher looped its
    scalar one.  ``histogram`` buckets flushed batch sizes by powers of
    two, so the batching win per statement shape is visible.
    """

    entries_queued: int = 0
    entries_flushed: int = 0
    batches_flushed: int = 0
    native_batches: int = 0
    shim_batches: int = 0
    max_batch: int = 0
    histogram: Dict[str, int] = field(default_factory=dict)

    def record_batch(self, size: int, native: bool) -> None:
        self.entries_flushed += size
        self.batches_flushed += 1
        if native:
            self.native_batches += 1
        else:
            self.shim_batches += 1
        if size > self.max_batch:
            self.max_batch = size
        bucket = _batch_size_bucket(size)
        self.histogram[bucket] = self.histogram.get(bucket, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        return {"entries_queued": self.entries_queued,
                "entries_flushed": self.entries_flushed,
                "batches_flushed": self.batches_flushed,
                "native_batches": self.native_batches,
                "shim_batches": self.shim_batches,
                "max_batch": self.max_batch,
                "histogram": dict(self.histogram)}


@dataclass
class _Attempt:
    """Outcome of one attempted invocation (internal)."""

    result: Any = None
    error: Optional[BaseException] = None
    elapsed: float = 0.0


class CallbackDispatcher:
    """Routes every ODCI callback through one fault-isolating seam."""

    def __init__(self, db: Any,
                 max_transient_retries: int = MAX_TRANSIENT_RETRIES):
        self.db = db
        self.max_transient_retries = max_transient_retries
        #: routine name -> RoutineMetrics
        self.metrics: Dict[str, RoutineMetrics] = {}
        #: index name -> IndexMaintenanceStats (array-maintenance seam)
        self.maintenance: Dict[str, IndexMaintenanceStats] = {}
        #: routine name -> wall-clock budget in seconds
        self.timeouts: Dict[str, float] = {}
        #: budget applied to routines with no specific entry (None = off)
        self.default_timeout: Optional[float] = None
        #: the installed FaultPlan (or None) — the injection seam
        self.fault_plan: Any = None

    # ------------------------------------------------------------------
    # configuration / introspection
    # ------------------------------------------------------------------

    def set_timeout(self, routine: str, seconds: Optional[float]) -> None:
        """Set (or clear, with None) the wall-clock budget for a routine."""
        if seconds is None:
            self.timeouts.pop(routine, None)
        else:
            self.timeouts[routine] = seconds

    def metrics_for(self, routine: str) -> RoutineMetrics:
        """The (auto-created) metrics record for ``routine``."""
        record = self.metrics.get(routine)
        if record is None:
            record = self.metrics[routine] = RoutineMetrics()
        return record

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All per-routine counters, for monitoring/tests."""
        return {name: m.snapshot() for name, m in self.metrics.items()}

    def maintenance_for(self, index_name: str) -> IndexMaintenanceStats:
        """The (auto-created) maintenance stats record for an index."""
        record = self.maintenance.get(index_name)
        if record is None:
            record = self.maintenance[index_name] = IndexMaintenanceStats()
        return record

    def maintenance_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All per-index maintenance counters, for monitoring/tests."""
        return {name: m.snapshot() for name, m in self.maintenance.items()}

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def call(self, routine: str, fn: Callable[..., Any], *args: Any,
             index_name: str = "", phase: str = "") -> Any:
        """Invoke ``fn(*args)`` as ODCI routine ``routine``.

        Raises :class:`CallbackError` (or a subclass) on any failure;
        never lets a raw cartridge exception escape.  ``index_name`` and
        ``phase`` attribute the failure so the policy layers above can
        react per index.
        """
        metrics = self.metrics_for(routine)
        attempts = 0
        while True:
            attempt = self._attempt(routine, fn, args, index_name, metrics)
            error = attempt.error
            if error is None:
                self._check_budget(routine, attempt.elapsed, index_name,
                                   phase, metrics)
                return attempt.result
            if isinstance(error, TransientCallbackError):
                attempts += 1
                if attempts <= self.max_transient_retries:
                    metrics.retries += 1
                    self._trace(f"dispatch:retry {routine}({index_name}) "
                                f"attempt={attempts}")
                    continue
                metrics.failures += 1
                raise CallbackError(
                    routine,
                    f"transient failure persisted after "
                    f"{self.max_transient_retries} retries: {error}",
                    index_name=index_name, phase=phase,
                    cause=error) from error
            if isinstance(error, TransactionError):
                # A deadlock or lock timeout inside callback SQL is the
                # *statement's* concurrency outcome, not a cartridge
                # fault: propagate untyped so the degradation policy
                # (mark index UNUSABLE, retry without maintenance) never
                # fires for it, and the session sees the real
                # DeadlockError/LockTimeoutError.
                raise error
            metrics.failures += 1
            if isinstance(error, CallbackError):
                raise error  # already classified (nested dispatch)
            if isinstance(error, DatabaseError):
                raise CallbackError(
                    routine, str(error), index_name=index_name,
                    phase=phase, cause=error) from error
            raise FatalCallbackError(
                routine,
                f"crashed with {type(error).__name__}: {error}",
                index_name=index_name, phase=phase,
                cause=error) from error

    def call_from_worker(self, session: Any, routine: str,
                         fn: Callable[..., Any], *args: Any,
                         index_name: str = "", phase: str = "") -> Any:
        """:meth:`call`, invoked from a parallel-pool worker thread.

        The prefetch seam: the async ODCI prefetch producer runs on the
        engine's worker pool, where no session is bound to the thread
        yet — so trace routing (``engine.trace_log`` resolves the
        *bound* session) would silently drop the scan's dispatch trace.
        Binding the owning session first makes a worker-side dispatch
        byte-for-byte equivalent to an inline one: same trace sink, same
        wall-clock budgets, same fault taxonomy and retry policy, same
        metrics/ledger ordering (one producer per scan keeps fetches
        sequential).
        """
        bind = getattr(self.db, "bind_session", None)
        if bind is not None:
            bind(session)
        return self.call(routine, fn, *args, index_name=index_name,
                         phase=phase)

    def call_batch(self, routine: str, scalar_routine: str,
                   fn: Callable[..., Any], ia: Any, entries: list, env: Any,
                   *, native: bool, index_name: str = "",
                   phase: str = "") -> int:
        """Dispatch one array-maintenance call covering ``entries``.

        ``entries`` is one index's slice of a statement's maintenance
        queue (row order preserved).  With ``native=True`` ``fn`` is the
        cartridge's array routine, invoked once as ``fn(ia, entries,
        env)``; with ``native=False`` ``fn`` is the scalar routine and
        the dispatcher loops it per entry (the compatibility shim), with
        per-entry classification and bounded transient retry.

        Fault-seam compatibility: the injection seam sees one event per
        entry under the *scalar* routine name in both modes, so fault
        plans written against per-row dispatch keep their ordinals and
        ledgers.  In native mode every per-entry event fires *before*
        the single array call — an injected fault at entry N fails the
        batch before the cartridge does any work, which composes with
        statement-savepoint rollback exactly like a per-row fault.  In
        shim mode the events interleave with application, so entries
        before the faulting one are genuinely applied (and rolled back
        with the statement).

        Returns the number of entries dispatched.  An empty batch is a
        no-op: no invocation, no metrics.
        """
        if not entries:
            return 0
        if native:
            if self.fault_plan is not None:
                self._entry_faults(scalar_routine, len(entries), routine,
                                   index_name, phase)
            self.call(routine, fn, ia, list(entries), env,
                      index_name=index_name, phase=phase)
        else:
            for entry in entries:
                self.call(scalar_routine, fn, ia, *entry, env,
                          index_name=index_name, phase=phase)
        stats = self.maintenance_for(index_name or ia.index_name)
        stats.record_batch(len(entries), native=native)
        return len(entries)

    def call_degraded(self, routine: str, fn: Callable[..., Any], *args: Any,
                      index_name: str = "", phase: str = "",
                      default: Any = None) -> Any:
        """Like :meth:`call`, but failures degrade to ``default``.

        Used for the ODCIStats routines: a broken statistics type must
        never abort planning — the optimizer falls back to its
        documented default selectivity/cost heuristics, with a trace
        line recording the degradation (§2.4.2).
        """
        try:
            return self.call(routine, fn, *args, index_name=index_name,
                             phase=phase)
        except CallbackError as exc:
            self._trace(f"dispatch:degrade {routine}({index_name}) "
                        f"-> default [{exc}]")
            return default

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _attempt(self, routine: str, fn: Callable[..., Any], args: tuple,
                 index_name: str, metrics: RoutineMetrics) -> _Attempt:
        metrics.invocations += 1
        injected = 0.0
        start = time.perf_counter()
        try:
            if self.fault_plan is not None:
                injected = self.fault_plan.on_call(routine, index_name)
            result = fn(*args)
        except BaseException as exc:  # classified by the caller
            elapsed = time.perf_counter() - start + injected
            metrics.total_seconds += elapsed
            return _Attempt(error=exc, elapsed=elapsed)
        elapsed = time.perf_counter() - start + injected
        metrics.total_seconds += elapsed
        return _Attempt(result=result, elapsed=elapsed)

    def _entry_faults(self, scalar_routine: str, count: int,
                      batch_routine: str, index_name: str,
                      phase: str) -> None:
        """Fire one fault-seam event per batch entry (native mode).

        Mirrors :meth:`call`'s classification: transient injections get
        bounded per-entry retry (each retry is another seam event, as it
        would be under scalar dispatch), database-class injections
        surface as :class:`CallbackError` attributed to the batch
        routine, and transaction errors pass through untyped.
        """
        metrics = self.metrics_for(batch_routine)
        done = 0
        attempts = 0
        while done < count:
            try:
                self.fault_plan.on_call(scalar_routine, index_name)
            except TransientCallbackError as exc:
                attempts += 1
                if attempts <= self.max_transient_retries:
                    metrics.retries += 1
                    self._trace(f"dispatch:retry {batch_routine}"
                                f"({index_name}) entry={done + 1} "
                                f"attempt={attempts}")
                    continue
                metrics.failures += 1
                raise CallbackError(
                    batch_routine,
                    f"transient failure persisted after "
                    f"{self.max_transient_retries} retries: {exc}",
                    index_name=index_name, phase=phase,
                    cause=exc) from exc
            except TransactionError:
                raise
            except CallbackError:
                metrics.failures += 1
                raise
            except DatabaseError as exc:
                metrics.failures += 1
                raise CallbackError(
                    batch_routine,
                    f"entry {done + 1}/{count}: {exc}",
                    index_name=index_name, phase=phase, cause=exc) from exc
            except BaseException as exc:
                metrics.failures += 1
                raise FatalCallbackError(
                    batch_routine,
                    f"crashed with {type(exc).__name__}: {exc}",
                    index_name=index_name, phase=phase, cause=exc) from exc
            else:
                attempts = 0
                done += 1

    def _check_budget(self, routine: str, elapsed: float, index_name: str,
                      phase: str, metrics: RoutineMetrics) -> None:
        budget = self.timeouts.get(routine, self.default_timeout)
        if budget is not None and elapsed > budget:
            metrics.failures += 1
            raise CallbackTimeoutError(routine, index_name=index_name,
                                       phase=phase, budget=budget,
                                       elapsed=elapsed)

    def _trace(self, message: str) -> None:
        trace_log = getattr(self.db, "trace_log", None)
        if trace_log is not None:
            trace_log.append(message)
