"""The ODCI callback dispatcher: the server's fault-isolation seam.

The paper's framework asks the server to execute user-supplied indextype
routines in the middle of DDL, DML, query execution, and optimization.
A raw exception (or a hang) escaping one of those routines must not take
the server down with it — Oracle survives a misbehaving cartridge by
marking its domain index FAILED/UNUSABLE and degrading queries to the
operator's functional implementation (§2.6–2.7).

:class:`CallbackDispatcher` is the single choke point every
``ODCIIndex*`` and ``ODCIStats*`` invocation flows through.  It

* **classifies** whatever the routine raised into the typed taxonomy of
  :mod:`repro.errors` — :class:`~repro.errors.CallbackError` for
  database-class failures, :class:`~repro.errors.FatalCallbackError`
  for crash-class (non-database) exceptions, and bounded deterministic
  retry for :class:`~repro.errors.TransientCallbackError`;
* **accounts** per-routine invocation/failure/retry/latency counters
  (:class:`RoutineMetrics`), visible to tests and monitoring;
* **enforces** optional per-routine wall-clock budgets, checked around
  the call (no threads, no signals — a routine that returns after its
  budget is spent fails exactly as if it had raised a
  :class:`~repro.errors.CallbackTimeoutError`);
* **exposes the fault-injection seam**: a
  :class:`~repro.testing.faults.FaultPlan` installed on the dispatcher
  sees every invocation before the cartridge does, can raise injected
  errors or add synthetic latency, and keeps a ledger tests assert on.

The dispatcher never *decides* policy — marking indexes unusable,
retrying statements, or degrading plans is the caller's job; the
dispatcher only guarantees that failure surfaces as a typed, attributed
:class:`~repro.errors.CallbackError` instead of an arbitrary exception.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import (
    CallbackError, CallbackTimeoutError, DatabaseError, FatalCallbackError,
    TransactionError, TransientCallbackError)

#: How many times a TransientCallbackError is retried before the
#: dispatcher gives up (bounded and deterministic — no sleeps, no jitter).
MAX_TRANSIENT_RETRIES = 3


@dataclass
class RoutineMetrics:
    """Per-routine dispatch accounting."""

    invocations: int = 0
    failures: int = 0
    retries: int = 0
    total_seconds: float = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"invocations": self.invocations, "failures": self.failures,
                "retries": self.retries, "total_seconds": self.total_seconds}


@dataclass
class _Attempt:
    """Outcome of one attempted invocation (internal)."""

    result: Any = None
    error: Optional[BaseException] = None
    elapsed: float = 0.0


class CallbackDispatcher:
    """Routes every ODCI callback through one fault-isolating seam."""

    def __init__(self, db: Any,
                 max_transient_retries: int = MAX_TRANSIENT_RETRIES):
        self.db = db
        self.max_transient_retries = max_transient_retries
        #: routine name -> RoutineMetrics
        self.metrics: Dict[str, RoutineMetrics] = {}
        #: routine name -> wall-clock budget in seconds
        self.timeouts: Dict[str, float] = {}
        #: budget applied to routines with no specific entry (None = off)
        self.default_timeout: Optional[float] = None
        #: the installed FaultPlan (or None) — the injection seam
        self.fault_plan: Any = None

    # ------------------------------------------------------------------
    # configuration / introspection
    # ------------------------------------------------------------------

    def set_timeout(self, routine: str, seconds: Optional[float]) -> None:
        """Set (or clear, with None) the wall-clock budget for a routine."""
        if seconds is None:
            self.timeouts.pop(routine, None)
        else:
            self.timeouts[routine] = seconds

    def metrics_for(self, routine: str) -> RoutineMetrics:
        """The (auto-created) metrics record for ``routine``."""
        record = self.metrics.get(routine)
        if record is None:
            record = self.metrics[routine] = RoutineMetrics()
        return record

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All per-routine counters, for monitoring/tests."""
        return {name: m.snapshot() for name, m in self.metrics.items()}

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def call(self, routine: str, fn: Callable[..., Any], *args: Any,
             index_name: str = "", phase: str = "") -> Any:
        """Invoke ``fn(*args)`` as ODCI routine ``routine``.

        Raises :class:`CallbackError` (or a subclass) on any failure;
        never lets a raw cartridge exception escape.  ``index_name`` and
        ``phase`` attribute the failure so the policy layers above can
        react per index.
        """
        metrics = self.metrics_for(routine)
        attempts = 0
        while True:
            attempt = self._attempt(routine, fn, args, index_name, metrics)
            error = attempt.error
            if error is None:
                self._check_budget(routine, attempt.elapsed, index_name,
                                   phase, metrics)
                return attempt.result
            if isinstance(error, TransientCallbackError):
                attempts += 1
                if attempts <= self.max_transient_retries:
                    metrics.retries += 1
                    self._trace(f"dispatch:retry {routine}({index_name}) "
                                f"attempt={attempts}")
                    continue
                metrics.failures += 1
                raise CallbackError(
                    routine,
                    f"transient failure persisted after "
                    f"{self.max_transient_retries} retries: {error}",
                    index_name=index_name, phase=phase,
                    cause=error) from error
            if isinstance(error, TransactionError):
                # A deadlock or lock timeout inside callback SQL is the
                # *statement's* concurrency outcome, not a cartridge
                # fault: propagate untyped so the degradation policy
                # (mark index UNUSABLE, retry without maintenance) never
                # fires for it, and the session sees the real
                # DeadlockError/LockTimeoutError.
                raise error
            metrics.failures += 1
            if isinstance(error, CallbackError):
                raise error  # already classified (nested dispatch)
            if isinstance(error, DatabaseError):
                raise CallbackError(
                    routine, str(error), index_name=index_name,
                    phase=phase, cause=error) from error
            raise FatalCallbackError(
                routine,
                f"crashed with {type(error).__name__}: {error}",
                index_name=index_name, phase=phase,
                cause=error) from error

    def call_degraded(self, routine: str, fn: Callable[..., Any], *args: Any,
                      index_name: str = "", phase: str = "",
                      default: Any = None) -> Any:
        """Like :meth:`call`, but failures degrade to ``default``.

        Used for the ODCIStats routines: a broken statistics type must
        never abort planning — the optimizer falls back to its
        documented default selectivity/cost heuristics, with a trace
        line recording the degradation (§2.4.2).
        """
        try:
            return self.call(routine, fn, *args, index_name=index_name,
                             phase=phase)
        except CallbackError as exc:
            self._trace(f"dispatch:degrade {routine}({index_name}) "
                        f"-> default [{exc}]")
            return default

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _attempt(self, routine: str, fn: Callable[..., Any], args: tuple,
                 index_name: str, metrics: RoutineMetrics) -> _Attempt:
        metrics.invocations += 1
        injected = 0.0
        start = time.perf_counter()
        try:
            if self.fault_plan is not None:
                injected = self.fault_plan.on_call(routine, index_name)
            result = fn(*args)
        except BaseException as exc:  # classified by the caller
            elapsed = time.perf_counter() - start + injected
            metrics.total_seconds += elapsed
            return _Attempt(error=exc, elapsed=elapsed)
        elapsed = time.perf_counter() - start + injected
        metrics.total_seconds += elapsed
        return _Attempt(result=result, elapsed=elapsed)

    def _check_budget(self, routine: str, elapsed: float, index_name: str,
                      phase: str, metrics: RoutineMetrics) -> None:
        budget = self.timeouts.get(routine, self.default_timeout)
        if budget is not None and elapsed > budget:
            metrics.failures += 1
            raise CallbackTimeoutError(routine, index_name=index_name,
                                       phase=phase, budget=budget,
                                       elapsed=elapsed)

    def _trace(self, message: str) -> None:
        trace_log = getattr(self.db, "trace_log", None)
        if trace_log is not None:
            trace_log.append(message)
