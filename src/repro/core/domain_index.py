"""Domain index instances.

"Using the Indextype schema object, an application-specific index can be
created.  Such an index is called a domain index ... created, managed,
and accessed by routines supplied by an indextype." (§1)

A :class:`DomainIndex` is the catalog's record of one such index: which
table/columns it covers, which indextype implements it, and the current
PARAMETERS string.  The server-side orchestration (invoking the ODCI
routines at create/DML/scan time) lives in the session layer; the methods
instance is cached here so cartridge state tied to the index (e.g. open
file handles) survives across calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.core.odci import IndexMethods, ODCIIndexInfo


@dataclass
class DomainIndex:
    """Catalog record of a domain index."""

    name: str
    table_name: str
    column_names: Tuple[str, ...]
    column_types: Tuple[Any, ...]
    indextype_name: str
    parameters: str = ""
    #: The per-index instance of the indextype's IndexMethods subclass.
    methods: Optional[IndexMethods] = None
    #: False after a failed create/alter, mirroring Oracle's UNUSABLE state.
    valid: bool = True
    #: The user who created the index; its ODCI routines execute with
    #: this user's privileges (§2.5 definer rights).
    owner: str = "main"
    #: Ad-hoc state a cartridge wants to pin to the index across calls.
    scratch: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return self.name.lower()

    def index_info(self) -> ODCIIndexInfo:
        """Build the ODCIIndexInfo descriptor passed to every ODCI routine."""
        return ODCIIndexInfo(
            index_name=self.name,
            index_schema="main",
            table_name=self.table_name,
            column_names=self.column_names,
            column_types=self.column_types,
            parameters=self.parameters,
        )
