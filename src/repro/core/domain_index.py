"""Domain index instances.

"Using the Indextype schema object, an application-specific index can be
created.  Such an index is called a domain index ... created, managed,
and accessed by routines supplied by an indextype." (§1)

A :class:`DomainIndex` is the catalog's record of one such index: which
table/columns it covers, which indextype implements it, the current
PARAMETERS string, and its **health state** — the server-side record of
whether the cartridge's routines can currently be trusted for this
index.  The state machine mirrors Oracle's domain-index status column:

* ``VALID`` — usable for scans, maintained on DML;
* ``IN_PROGRESS`` — a Create or Rebuild is running; not plannable;
* ``FAILED`` — ``ODCIIndexCreate`` (or a rebuild's create phase) died;
  the only legal operation is ``DROP INDEX`` (optionally ``FORCE``);
* ``UNUSABLE`` — a maintenance routine died (or the DBA issued ``ALTER
  INDEX ... UNUSABLE``); queries silently fall back to the operator's
  functional implementation and DML skips maintenance under the
  ``skip_unusable_indexes`` session setting; ``ALTER INDEX ... REBUILD``
  restores ``VALID``.

State transitions happen through :meth:`~repro.sql.catalog.Catalog.
set_index_state` so each one bumps the catalog version and invalidates
cached plans pinned to the old state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.core.odci import IndexMethods, ODCIIndexInfo


class IndexState(enum.Enum):
    """Health state of a domain index (Oracle's domidx_status)."""

    VALID = "VALID"
    IN_PROGRESS = "IN_PROGRESS"
    FAILED = "FAILED"
    UNUSABLE = "UNUSABLE"


@dataclass
class DomainIndex:
    """Catalog record of a domain index."""

    name: str
    table_name: str
    column_names: Tuple[str, ...]
    column_types: Tuple[Any, ...]
    indextype_name: str
    parameters: str = ""
    #: The per-index instance of the indextype's IndexMethods subclass.
    methods: Optional[IndexMethods] = None
    #: Health state; only VALID indexes are planned or maintained.
    state: IndexState = IndexState.VALID
    #: The user who created the index; its ODCI routines execute with
    #: this user's privileges (§2.5 definer rights).
    owner: str = "main"
    #: Ad-hoc state a cartridge wants to pin to the index across calls.
    scratch: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return self.name.lower()

    @property
    def valid(self) -> bool:
        """True only in the VALID state (the plannable/maintainable one)."""
        return self.state is IndexState.VALID

    def index_info(self) -> ODCIIndexInfo:
        """Build the ODCIIndexInfo descriptor passed to every ODCI routine."""
        return ODCIIndexInfo(
            index_name=self.name,
            index_schema="main",
            table_name=self.table_name,
            column_names=self.column_names,
            column_types=self.column_types,
            parameters=self.parameters,
        )
