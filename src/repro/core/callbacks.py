"""Server callbacks: SQL executed by indextype routines, with restrictions.

Section 2.5: "The index routines typically use SQL to access and
manipulate index data.  The SQL statements executed by the indexing logic
are referred to as server callbacks."  And the restrictions: "Index
maintenance routines can not execute DDL statements.  Also, these
routines cannot update the base table on which the domain index is
created.  Index scan routines can only execute SQL query statements.
There are no restrictions on the index definition routines."

:class:`CallbackSession` wraps the database session and enforces exactly
those rules per phase, raising :class:`~repro.errors.CallbackViolation`
on a breach.  Callbacks run inside the invoking statement's transaction,
which is how index data stored in database tables gets transactional
rollback "for free" (§2.5).
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.errors import CallbackViolation
from repro.sql import ast_nodes as ast


class CallbackPhase(enum.Enum):
    """Which class of ODCI routine is currently executing."""

    DEFINITION = "definition"
    MAINTENANCE = "maintenance"
    SCAN = "scan"


_DDL_TYPES = (
    ast.CreateTable, ast.DropTable, ast.TruncateTable,
    ast.CreateIndex, ast.AlterIndex, ast.DropIndex,
    ast.CreateOperator, ast.DropOperator,
    ast.CreateIndextype, ast.DropIndextype,
    ast.CreateType, ast.AssociateStatistics, ast.GrantStatement,
)

_DML_TYPES = (ast.Insert, ast.Update, ast.Delete)

_QUERY_TYPES = (ast.Select, ast.Explain)

_TXN_TYPES = (ast.Commit, ast.Rollback, ast.BeginTransaction, ast.Savepoint,
              ast.SetTransaction)


class CallbackSession:
    """A phase-restricted SQL session handed to ODCI routines via ODCIEnv."""

    def __init__(self, database: Any, phase: CallbackPhase,
                 base_table: Optional[str] = None, definer: str = "main",
                 locking: bool = True, snapshot: Optional[Any] = None):
        self._db = database
        self.phase = phase
        self.base_table = (base_table or "").lower()
        self.definer = definer
        #: False for optimizer-statistics callbacks: plan-time reads of
        #: index tables take no table locks (they run before the
        #: statement locks its own tables — locking here would invert
        #: the base-table → index-table order writers follow)
        self.locking = locking
        #: the invoking statement's MVCC snapshot (scan phase): every
        #: callback query this session runs resolves against it, so
        #: ODCIIndexStart/Fetch observe one frozen database state
        self.snapshot = snapshot

    def execute(self, sql: str, params: Optional[Any] = None):
        """Run a callback statement after phase validation.

        ``params`` supplies bind-variable values (the PL/SQL-bind
        analogue), which is how rowids and other non-literal values
        travel through callback SQL.  Returns the same cursor a
        top-level ``db.execute`` returns.

        Callback SQL shares the server's plan cache; phase validation
        runs via the pipeline's ``check`` hook after Parse.  A cache hit
        skips it by construction — only SELECTs are cached and SELECTs
        are legal in every phase.
        """
        # §2.5 definer rights: "Indextype routines always execute under
        # the privileges of the owner of the index."
        with self._db.as_user(self.definer):
            with self._db._pin_snapshot(self.snapshot):
                if not self.locking:
                    with self._db._no_table_locks():
                        return self._db.pipeline.execute(sql, params,
                                                         check=self._check)
                return self._db.pipeline.execute(sql, params,
                                                 check=self._check)

    # convenience wrappers used heavily by the cartridges ----------------

    def query(self, sql: str, params: Optional[Any] = None):
        """Execute a SELECT and return all rows."""
        return self.execute(sql, params).fetchall()

    def query_one(self, sql: str, params: Optional[Any] = None):
        """Execute a SELECT and return the single row (or None)."""
        rows = self.execute(sql, params).fetchall()
        return rows[0] if rows else None

    def fetch_row(self, table_name: str, rowid: Any):
        """Table access by rowid (a read — allowed in every phase).

        Returns the row's values or None for a dead rowid.  This is how
        a scan routine applies an exact filter to primary-filter
        candidates without re-scanning the base table.
        """
        table = self._db.catalog.get_table(table_name)
        return self._fetch(table.storage, rowid)

    def fetch_value(self, table_name: str, rowid: Any, column: str):
        """Read one column of one row by rowid (None for a dead rowid)."""
        table = self._db.catalog.get_table(table_name)
        row = self._fetch(table.storage, rowid)
        if row is None:
            return None
        return row[table.column_position(column)]

    def _fetch(self, storage: Any, rowid: Any):
        """Rowid fetch against the pinned snapshot when one is set and
        the storage is versioned; current-mode otherwise."""
        if self.snapshot is None \
                or getattr(storage, "versions", None) is None:
            return storage.fetch_or_none(rowid)
        return storage.fetch_or_none(rowid, self.snapshot)

    def insert_row(self, table_name: str, values: Any):
        """Bulk-bind insert of one row of Python values (maintenance DML)."""
        fake = ast.Insert(table=table_name, columns=None, rows=[])
        self._check(fake, f"INSERT INTO {table_name} (bulk bind)")
        with self._db.as_user(self.definer):
            return self._db.insert_row(table_name, values)

    def insert_rows(self, table_name: str, rows: Any):
        """Bulk-bind insert of many rows (batch interface, §2.5)."""
        fake = ast.Insert(table=table_name, columns=None, rows=[])
        self._check(fake, f"INSERT INTO {table_name} (bulk bind)")
        with self._db.as_user(self.definer):
            return self._db.insert_rows(table_name, rows)

    def direct_load(self, table_name: str, rows: Any,
                    presorted: bool = False):
        """Direct-path load of cartridge-built rows into an index table.

        The analogue of a direct-path insert: skips per-row type
        validation because the rows were derived from already-validated
        base-table values by the calling routine.  Only valid shapes
        (empty table, empty native indexes) take the fast path; anything
        else degrades to :meth:`insert_rows`.  ``presorted`` promises
        strictly increasing key order (verified by the storage layer).
        """
        fake = ast.Insert(table=table_name, columns=None, rows=[])
        self._check(fake, f"INSERT INTO {table_name} (direct path)")
        with self._db.as_user(self.definer):
            return self._db.direct_load(table_name, rows,
                                        presorted=presorted)

    # -- validation ---------------------------------------------------------

    def _check(self, statement: ast.Statement, sql: str) -> None:
        if isinstance(statement, _TXN_TYPES):
            raise CallbackViolation(
                f"{self.phase.value} callback may not control transactions: "
                f"{sql.strip()[:60]!r}")
        if self.phase is CallbackPhase.DEFINITION:
            return  # "no restrictions on the index definition routines"
        if self.phase is CallbackPhase.SCAN:
            if not isinstance(statement, _QUERY_TYPES):
                raise CallbackViolation(
                    "index scan routines can only execute SQL query "
                    f"statements: {sql.strip()[:60]!r}")
            return
        # maintenance phase
        if isinstance(statement, _DDL_TYPES):
            raise CallbackViolation(
                "index maintenance routines cannot execute DDL statements: "
                f"{sql.strip()[:60]!r}")
        if isinstance(statement, _DML_TYPES):
            target = statement.table.lower()
            if self.base_table and target == self.base_table:
                raise CallbackViolation(
                    "index maintenance routines cannot update the base table "
                    f"{self.base_table!r} on which the domain index is created")
