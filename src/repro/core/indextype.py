"""The indextype schema object.

Section 2.2.4: "Once the type that implements the ODCIIndex routines has
been defined, a new indextype can be created by specifying the list of
operators supported by the indextype, and referring to the type that
implements the ODCIIndex routines."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import IndextypeError
from repro.types.datatypes import DataType


@dataclass
class SupportedOperator:
    """One operator signature an indextype can evaluate via index scan."""

    operator_name: str
    arg_types: Tuple[DataType, ...]

    def matches(self, operator_name: str,
                arg_types: Optional[Sequence[DataType]] = None) -> bool:
        """True when this entry covers the named operator invocation."""
        if self.operator_name.lower() != operator_name.lower():
            return False
        if arg_types is None:
            return True
        if len(arg_types) < len(self.arg_types):
            return False
        return all(actual.is_compatible_with(declared)
                   for actual, declared in zip(arg_types, self.arg_types))


@dataclass
class Indextype:
    """A registered indexing scheme: supported operators + implementation."""

    name: str
    operators: List[SupportedOperator] = field(default_factory=list)
    #: Registered name of the IndexMethods subclass implementing ODCIIndex.
    implementation_name: str = ""
    #: Registered name of the StatsMethods subclass (via ASSOCIATE
    #: STATISTICS), or None to use the optimizer's defaults.
    stats_name: Optional[str] = None

    @property
    def key(self) -> str:
        return self.name.lower()

    def supports(self, operator_name: str,
                 arg_types: Optional[Sequence[DataType]] = None) -> bool:
        """True when a domain index of this indextype can evaluate the operator."""
        return any(op.matches(operator_name, arg_types) for op in self.operators)

    def supported_operator_names(self) -> List[str]:
        """Lower-cased names of every supported operator."""
        return sorted({op.operator_name.lower() for op in self.operators})

    def require_support(self, operator_name: str) -> None:
        """Raise when the operator is not supported by this indextype."""
        if not self.supports(operator_name):
            raise IndextypeError(
                f"indextype {self.name} does not support operator "
                f"{operator_name}; supported: {self.supported_operator_names()}")
