"""Extensible optimizer statistics (the ODCIStats interface).

Section 2.4.2: "The choice between the indexed implementation and the
functional evaluation of the operator is made by the Oracle cost based
optimizer using selectivity and cost functions" supplied by the cartridge
and registered with ``ASSOCIATE STATISTICS``.

A cartridge subclasses :class:`StatsMethods`; returning ``None`` from
``selectivity``/``index_cost`` tells the optimizer to fall back to its
documented defaults (exactly Oracle's behaviour when no statistics type
is associated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.odci import ODCIEnv, ODCIIndexInfo, ODCIPredInfo


@dataclass
class IndexCost:
    """Cost of a domain index scan, split like Oracle's CostType."""

    io_cost: float
    cpu_cost: float = 0.0

    @property
    def total(self) -> float:
        """Scalar cost the planner compares across access paths."""
        return self.io_cost + self.cpu_cost


class StatsMethods:
    """Base class for an indextype's statistics implementation.

    All methods have permissive defaults so cartridges override only what
    they can estimate well.
    """

    def stats_collect(self, ia: ODCIIndexInfo, env: ODCIEnv) -> Optional[dict]:
        """ODCIStatsCollect: gather index statistics during ANALYZE.

        The returned dict is stored in the catalog and passed back to the
        other routines via ``env``-independent state; None means "no
        statistics collected".
        """
        return None

    def stats_delete(self, ia: ODCIIndexInfo, env: ODCIEnv) -> None:
        """ODCIStatsDelete: drop collected statistics (default: no-op)."""

    def selectivity(self, pred_info: ODCIPredInfo, args: Sequence[Any],
                    env: ODCIEnv) -> Optional[float]:
        """ODCIStatsSelectivity: fraction of rows satisfying the predicate.

        Returns a value in [0, 1], or None to use the optimizer default.
        """
        return None

    def index_cost(self, ia: ODCIIndexInfo, pred_info: ODCIPredInfo,
                   selectivity: float, args: Sequence[Any],
                   env: ODCIEnv) -> Optional[IndexCost]:
        """ODCIStatsIndexCost: cost of evaluating the predicate by index scan.

        Returns an :class:`IndexCost`, or None to use the optimizer default.
        """
        return None

    def function_cost(self, operator_name: str, args: Sequence[Any],
                      env: ODCIEnv) -> Optional[float]:
        """ODCIStatsFunctionCost: per-row cost of the functional implementation.

        Returns a per-invocation CPU cost, or None for the default.
        """
        return None
