"""User-defined operators.

Section 2.2.2: "A user-defined operator is a top level schema object ...
and has a set of one or more bindings associated with it.  An operator
binding identifies the operator with a unique signature (via argument
data types), and allows associating a function that provides an
implementation for the operator."

Operators also model the *ancillary* notion of §2.4.2 (``Score``): an
ancillary operator produces auxiliary data computed by the primary
operator's domain-index scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import OperatorBindingError
from repro.types.datatypes import DataType


@dataclass
class OperatorBinding:
    """One signature of an operator and its functional implementation."""

    arg_types: List[DataType]
    return_type: DataType
    function_name: str

    def matches(self, arg_types: Sequence[DataType]) -> bool:
        """True when call-site argument types can bind to this signature."""
        if len(arg_types) < len(self.arg_types):
            return False
        # extra trailing arguments are allowed (PARAMETERS-style string
        # arguments and ancillary labels)
        return all(actual.is_compatible_with(declared)
                   for actual, declared in zip(arg_types, self.arg_types))

    def signature(self) -> str:
        """Human-readable signature for error messages and the catalog."""
        args = ", ".join(repr(t) for t in self.arg_types)
        return f"({args}) RETURN {self.return_type!r} USING {self.function_name}"


@dataclass
class Operator:
    """A user-defined operator schema object."""

    name: str
    bindings: List[OperatorBinding] = field(default_factory=list)
    #: Name of the primary operator this one is ancillary to (e.g. Score
    #: is ancillary to Contains), or None for a primary operator.
    ancillary_to: Optional[str] = None

    @property
    def key(self) -> str:
        return self.name.lower()

    @property
    def is_ancillary(self) -> bool:
        return self.ancillary_to is not None

    def resolve_binding(self, arg_types: Sequence[DataType]) -> OperatorBinding:
        """Pick the first binding compatible with the call-site types."""
        for binding in self.bindings:
            if binding.matches(arg_types):
                return binding
        available = "; ".join(b.signature() for b in self.bindings) or "<none>"
        raise OperatorBindingError(
            f"no binding of operator {self.name} matches argument types "
            f"{[repr(t) for t in arg_types]}; available: {available}")

    def add_binding(self, binding: OperatorBinding) -> None:
        """Register an additional binding."""
        self.bindings.append(binding)
