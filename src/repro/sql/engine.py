"""The shared database engine: everything sessions have in common.

:class:`Engine` owns the process-wide substrate — catalog, buffer
cache, plan cache, lock manager, LOB/file stores, event manager, and
the ODCI callback dispatcher — while per-connection state (transaction,
current user, tracing, settings) lives in
:class:`~repro.sql.session.Session` objects created by
:meth:`Engine.connect`.  This mirrors Oracle's split between the shared
instance (SGA: shared pool, buffer cache, enqueues) and per-session
state (UGA), which is what lets ODCIIndex maintenance and scans from
concurrent sessions hit the same domain indexes under the regular lock
manager (§2.5).

Thread-safety layers, coarsest to finest:

* **Transaction locks** (:class:`~repro.txn.locks.LockManager`) —
  logical S/X locks on ``table:<name>`` resources held until
  commit/rollback, now blocking with timeout + deadlock detection.
* **Latches** — short-duration mutexes guarding shared in-memory
  structures for the duration of one operation: the catalog, the plan
  cache, the buffer cache, the file store, and each cartridge's
  in-memory index state.  The documented latch *order* (deadlock
  avoidance — never take an earlier latch while holding a later one)::

      catalog → plan cache → lock-manager internals → buffer cache

  In practice latch scopes never nest across components, so the order
  is belt-and-braces; it matters only if a future change grows a latch
  scope.
* **Thread confinement** — a :class:`Session` (and its transaction) is
  used by one thread at a time; the engine binds the entering session
  to the current thread so shared components (the dispatcher's trace
  hook) can resolve per-session state without plumbing it through
  every call.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional

from repro.core.dispatch import CallbackDispatcher
from repro.sql.builtins import register_builtins
from repro.sql.catalog import Catalog, SQLFunction
from repro.sql.plan_cache import PlanCache
from repro.storage.buffer import BufferCache, IOStats
from repro.storage.filestore import FileStore
from repro.storage.lob import LobManager
from repro.txn.events import EventManager
from repro.txn.locks import LockManager
from repro.txn.mvcc import MVCCManager

__all__ = ["Engine"]

#: engine-wide default for how long a session blocks on a lock conflict
DEFAULT_LOCK_TIMEOUT = 10.0


class Engine:
    """One in-process database instance shared by many sessions."""

    def __init__(self, buffer_capacity: int = 512,
                 fetch_batch_size: int = 32,
                 plan_cache_capacity: int = 128,
                 lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
                 compile_expressions: bool = True,
                 data_dir: Optional[str] = None,
                 wal_group_commit: bool = True,
                 wal_fsync_delay: float = 0.0,
                 wal_checkpoint_interval: int = 256,
                 durability_event_hook: Any = None,
                 storage_fault_plan: Any = None,
                 parallel_execution: bool = True,
                 max_dop: int = 4,
                 parallel_min_pages: int = 8,
                 prefetch_depth: int = 2,
                 prefetch_min_rows: int = 64,
                 parallel_pool_size: Optional[int] = None,
                 vectorized_execution: bool = True):
        self.stats = IOStats()
        self.buffer = BufferCache(self.stats, capacity=buffer_capacity)
        self.catalog = Catalog()
        self.locks = LockManager(default_timeout=lock_timeout)
        self.lobs = LobManager(self.buffer, lock_manager=self.locks)
        self.files = FileStore(self.stats)
        self.events = EventManager()
        self.plan_cache = PlanCache(capacity=plan_cache_capacity)
        #: SCN clock + snapshot registry; SELECT reads resolve against
        #: snapshots from here instead of taking LockManager S locks
        self.mvcc = MVCCManager()
        #: fault-isolation seam every ODCI callback routes through;
        #: shared so routine metrics/timeouts/fault plans are engine-wide
        self.dispatcher = CallbackDispatcher(self)
        #: default for Session.lock_timeout
        self.default_lock_timeout = lock_timeout
        #: default for Session.fetch_batch_size
        self.fetch_batch_size = fetch_batch_size
        #: default for Session.compile_expressions — lower row
        #: expressions to closures at plan time (see repro.sql.compile);
        #: off means every expression goes through the interpreter
        self.compile_expressions = compile_expressions
        #: defaults for the per-session parallel-execution settings
        self.parallel_execution = parallel_execution
        self.max_dop = max(1, max_dop)
        #: heap tables below this page count never go parallel (the
        #: exchange overhead would dominate); also the pages-per-DOP
        #: unit the planner's DOP costing divides by
        self.parallel_min_pages = max(1, parallel_min_pages)
        #: default ODCI prefetch queue depth (0 disables prefetch)
        self.prefetch_depth = prefetch_depth
        #: domain scans estimated below this many rows stay serial —
        #: a scan the first fetch batch satisfies gains nothing from
        #: pipelining and would only reorder trace interleavings
        self.prefetch_min_rows = prefetch_min_rows
        #: default for Session.vectorized_execution — run eligible
        #: scans/projections/sorts/aggregations on columnar batches with
        #: generated vector kernels (see repro.sql.columnar); requires
        #: compile_expressions, and every vectorized form falls back
        #: per batch to the closure path on decline or error
        self.vectorized_execution = vectorized_execution
        #: counters behind the user_parallel_stats dictionary view
        from repro.sql.parallel import ParallelStats
        self.parallel_stats = ParallelStats()
        #: counters behind the user_executor_stats dictionary view
        from repro.sql.columnar import ExecutorStats
        self.executor_stats = ExecutorStats()
        self._pool = None
        self._pool_size = (parallel_pool_size if parallel_pool_size
                           else max(2 * self.max_dop, 8))
        self._pool_latch = threading.Lock()
        self._id_latch = threading.Lock()
        self._next_txn_id = 1
        self._next_session_id = 1
        self._tls = threading.local()
        register_builtins(self.catalog)
        self.catalog.add_function(SQLFunction(
            name="varray", fn=lambda *args: tuple(args), cost=0.0001))
        from repro.sql.dictionary import dictionary_view
        self.catalog.view_provider = (
            lambda name: dictionary_view(self.catalog, name, engine=self))
        #: opt-in durability: with a data_dir the engine logs every DML
        #: to a WAL, checkpoints pages, and runs restart recovery here;
        #: without one it keeps the original all-in-memory behaviour
        self.durability = None
        self.recovery_stats = None
        #: set by repro.server.Server.start() when this engine is being
        #: served over the network; feeds the user_server_stats view
        self.server_stats = None
        self._closed = False
        if data_dir is not None:
            from repro.storage.durability import DurabilityManager
            self.durability = DurabilityManager(
                self, data_dir, group_commit=wal_group_commit,
                fsync_delay=wal_fsync_delay,
                checkpoint_interval=wal_checkpoint_interval,
                event_hook=durability_event_hook,
                fault_plan=storage_fault_plan)
            self.buffer.durability = self.durability
            self.recovery_stats = self.durability.open()

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------

    def connect(self, user: str = "main") -> Any:
        """Open a new session against this engine."""
        from repro.sql.session import Session
        return Session(self, user=user)

    # ------------------------------------------------------------------
    # parallel execution
    # ------------------------------------------------------------------

    def parallel_defaults(self) -> dict:
        """Seed values for the per-session parallel-execution settings.

        ``parallel_execution`` (the off-switch), ``max_dop`` (per-
        statement DOP cap), and the plan-time eligibility knobs
        ``parallel_min_pages`` / ``prefetch_depth`` /
        ``prefetch_min_rows``.  Sessions copy these at connect time so
        tests and benches can force or forbid parallelism per session
        without reconfiguring the engine.  ``vectorized_execution``
        rides along: it is the same kind of per-session execution
        default (see :mod:`repro.sql.columnar`).
        """
        return {"parallel_execution": self.parallel_execution,
                "max_dop": self.max_dop,
                "parallel_min_pages": self.parallel_min_pages,
                "prefetch_depth": self.prefetch_depth,
                "prefetch_min_rows": self.prefetch_min_rows,
                "vectorized_execution": self.vectorized_execution}

    def worker_pool(self):
        """The engine-wide parallel worker pool (started lazily).

        Shared by every session: morsel kernels and ODCI prefetch
        producers from concurrent statements all draw from this one
        bounded pool, mirroring Oracle's instance-wide parallel server
        pool rather than per-query thread spawning.
        """
        with self._pool_latch:
            if self._pool is None:
                from repro.sql.parallel import WorkerPool
                self._pool = WorkerPool(size=self._pool_size)
                self.parallel_stats.pool_size = self._pool.size
            return self._pool

    # ------------------------------------------------------------------
    # MVCC maintenance
    # ------------------------------------------------------------------

    def _version_stores(self):
        """Version stores of every catalog table (heap and IOT)."""
        with self.catalog.latch:
            tables = list(self.catalog.tables.values())
        return [t.storage.versions for t in tables
                if getattr(t.storage, "versions", None) is not None]

    def prune_versions(self) -> int:
        """One low-water-mark prune pass; returns versions removed."""
        return self.mvcc.prune(self._version_stores())

    def start_version_pruner(self, interval: float = 1.0) -> None:
        """Start the background low-water-mark pruner (opt-in)."""
        self.mvcc.start_pruner(self._version_stores, interval)

    def stop_version_pruner(self) -> None:
        self.mvcc.stop_pruner()

    def allocate_txn_id(self) -> int:
        """Next globally-ordered transaction id (shared by all sessions)."""
        with self._id_latch:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
            return txn_id

    def allocate_session_id(self) -> int:
        with self._id_latch:
            session_id = self._next_session_id
            self._next_session_id += 1
            return session_id

    def peek_next_txn_id(self) -> int:
        """Allocator position without allocating (checkpoint records)."""
        with self._id_latch:
            return self._next_txn_id

    def restore_txn_id(self, next_id: int) -> None:
        """Advance the txn-id allocator past recovered transactions."""
        with self._id_latch:
            self._next_txn_id = max(self._next_txn_id, next_id)

    # ------------------------------------------------------------------
    # durability lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self, reason: str = "manual") -> Optional[int]:
        """Take a fuzzy checkpoint (no-op without durability)."""
        if self.durability is None:
            return None
        return self.durability.checkpoint(reason=reason)

    def close(self) -> None:
        """Clean shutdown: stop background threads, flush the WAL, take
        a final checkpoint.  Reopening the same data_dir after close()
        reports a clean (zero-redo, zero-undo) recovery pass."""
        if self._closed:
            return
        self.stop_version_pruner()
        with self._pool_latch:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()
        if self.durability is not None:
            self.durability.close()
        self._closed = True

    # ------------------------------------------------------------------
    # thread ↔ session binding
    # ------------------------------------------------------------------

    def bind_session(self, session: Any) -> None:
        """Mark ``session`` as the one driving the current thread.

        Sessions bind themselves on every public entry point; shared
        components that need per-session state without an explicit
        session argument (the dispatcher's trace hook) resolve it here.
        """
        self._tls.session = session

    @property
    def current_session(self) -> Optional[Any]:
        """The session bound to the current thread (or None)."""
        return getattr(self._tls, "session", None)

    @property
    def trace_log(self) -> Optional[List[str]]:
        """The bound session's trace log — the dispatcher's trace sink."""
        session = getattr(self._tls, "session", None)
        return session.trace_log if session is not None else None
