"""The statement cursor.

:class:`Cursor` is what every executed statement returns.  For queries
it streams rows out of the executor's generator pipeline; for DML it
carries the affected-row count.  It is a context manager: leaving the
``with`` block (or calling :meth:`close`) shuts the generator stack down
and runs the statement's :class:`~repro.core.scan_context.ScanTracker`
closers, so any domain-index scan still open from a partial fetch gets
its ``ODCIIndexClose`` and its workspace handle back deterministically —
no waiting for the garbage collector.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterator, List, Optional, Tuple


class Cursor:
    """Result of one executed statement.

    For queries, iterate or call ``fetchone/fetchmany/fetchall``;
    ``description`` lists output column names.  For DML, ``rowcount``
    holds the number of affected rows.  Usable as a context manager::

        with db.execute("SELECT ...") as cur:
            first = cur.fetchmany(10)
    """

    def __init__(self, columns: Optional[List[str]] = None,
                 rows: Optional[Iterator[Tuple[Any, ...]]] = None,
                 rowcount: int = -1, tracker: Any = None,
                 snapshot: Any = None):
        self.description = columns
        self._rows = rows if rows is not None else iter(())
        self.rowcount = rowcount
        self._tracker = tracker
        # strong ref keeps the MVCC snapshot registered (it holds the
        # engine's low-water mark down) until the cursor is closed
        self._snapshot = snapshot
        self._closed = False

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return self

    def __next__(self) -> Tuple[Any, ...]:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        """Return the next row, or None at end (or after close)."""
        return next(self._rows, None)

    def fetchmany(self, size: int = 10) -> List[Tuple[Any, ...]]:
        """Return up to ``size`` next rows ([] once exhausted or closed).

        Drains the generator pipeline in one ``islice`` pass, so a batch
        fetch re-enters the executor once per batch rather than once per
        row.
        """
        if size <= 0:
            return []
        return list(islice(self._rows, size))

    def fetchall(self) -> List[Tuple[Any, ...]]:
        """Return all remaining rows."""
        return list(self._rows)

    def close(self) -> None:
        """Release the result set and any open domain-index scans.

        Idempotent and exception-safe: even if unwinding the generator
        stack raises (e.g. a ``finally`` block re-enters a broken
        cartridge), the tracker still runs so every registered
        ``ODCIIndexClose`` fires exactly once and workspace handles are
        returned.  Subsequent fetches return no rows rather than
        raising; a second ``close()`` is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        self._snapshot = None  # release the LWM pin
        rows, self._rows = self._rows, iter(())
        try:
            close = getattr(rows, "close", None)
            if close is not None:
                close()  # unwinds the generator stack (runs finally blocks)
        finally:
            if self._tracker is not None:
                self._tracker.close_all()
