"""The cost-based planner.

Responsible for the paper's central optimizer behaviour (§2.4.2): an
operator predicate in the WHERE clause is evaluated either by invoking
its functional implementation as a per-row filter, or — when the operated
column has a domain index whose indextype supports the operator — by a
domain-index scan.  The choice is made on estimated cost, using
cartridge-supplied ODCIStats selectivity/cost routines when associated,
and documented defaults otherwise.

Cost unit: one simulated page I/O.  Per-row CPU for simple predicates and
per-call cost of registered functions are expressed in the same unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.odci import ODCIPredInfo
from repro.errors import CatalogError, DatabaseError, ExecutionError
from repro.sql import ast_nodes as ast
from repro.sql.catalog import Catalog, IndexDef, TableDef
from repro.sql.expressions import (
    AggregateCall, Binder, OperatorCall, Scope, contains_aggregate,
    static_type)

#: CPU cost (in page-I/O units) of evaluating one simple predicate on one row.
CPU_PER_PREDICATE = 0.001
#: Base per-row processing cost during a full scan.
ROW_CPU = 0.01
#: Cost of fetching one row by rowid out of an index scan (random access).
FETCH_COST = 0.1
#: Default per-call cost of a registered function with no explicit cost.
DEFAULT_FUNCTION_COST = 0.01
#: Default selectivity of an equality predicate without statistics.
DEFAULT_EQ_SELECTIVITY = 0.01
#: Default selectivity of a range predicate without statistics.
DEFAULT_RANGE_SELECTIVITY = 0.05
#: Default selectivity of a user-defined operator predicate (Oracle's
#: documented default for operators without associated statistics).
DEFAULT_OPERATOR_SELECTIVITY = 0.01
#: Fixed startup cost charged to every domain index scan (ODCI call
#: overhead), in page-I/O units.
DOMAIN_SCAN_STARTUP = 2.0
#: Per-returned-row cost of a domain index scan with default statistics.
DOMAIN_SCAN_PER_ROW = 0.05
#: B-tree traversal cost (root-to-leaf) in page-I/O units.
BTREE_DESCENT = 2.0


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------

@dataclass
class PlanNode:
    """Base class for plan nodes; cost/cardinality filled by the planner."""

    est_rows: float = field(default=0.0, init=False)
    est_cost: float = field(default=0.0, init=False)
    #: optimizer remarks shown under the node in EXPLAIN — e.g. the
    #: functional-evaluation fallback notice when a matching domain
    #: index was skipped because it is not VALID
    annotations: List[str] = field(default_factory=list, init=False)
    #: compiled expression closures keyed by slot name, filled by
    #: :func:`repro.sql.compile.compile_plan` (None = interpreter fallback)
    compiled: Dict[str, Any] = field(default_factory=dict, init=False)
    #: "COMPILED" when every row expression on this node compiled,
    #: "INTERPRETED" when any fell back, None when the node has none
    exec_mode: Optional[str] = field(default=None, init=False)
    #: "VECTORIZED" when this node operates on columnar batches, "ROW"
    #: when vectorized execution is on but this node fell back to the
    #: row pipeline, None for nodes outside the vectorizable chain
    vector_mode: Optional[str] = field(default=None, init=False)

    def label(self) -> str:
        """One-line description used by EXPLAIN."""
        return type(self).__name__

    def children(self) -> List["PlanNode"]:
        return []

    def _markers(self) -> str:
        """Extra EXPLAIN badges appended after the exec-mode marker
        (``[PARALLEL dop=N]`` / ``[PREFETCH depth=K]``)."""
        return ""

    def explain(self, depth: int = 0) -> List[str]:
        """Indented EXPLAIN lines for this subtree."""
        mode = f" [{self.exec_mode}]" if self.exec_mode else ""
        vector = f" [{self.vector_mode}]" if self.vector_mode else ""
        line = (f"{'  ' * depth}{self.label()} "
                f"(rows={self.est_rows:.0f} cost={self.est_cost:.2f})"
                f"{mode}{vector}{self._markers()}")
        lines = [line]
        for note in self.annotations:
            lines.append(f"{'  ' * (depth + 1)}{note}")
        for child in self.children():
            lines.extend(child.explain(depth + 1))
        return lines


@dataclass
class FullScan(PlanNode):
    table: TableDef
    binding_name: str
    filter: Optional[ast.Expr] = None
    #: storage capability probes, hoisted here from the executor's
    #: per-statement hot path (the executor branches on these flags
    #: instead of getattr-probing the storage on every scan)
    has_scan_batches: bool = field(default=False, init=False)
    has_page_range: bool = field(default=False, init=False)
    has_scan_columns: bool = field(default=False, init=False)
    versioned: bool = field(default=False, init=False)
    #: ≥2 when the planner judged this scan morsel-parallel eligible;
    #: the executing session clamps it to its own max_dop (0 = serial)
    parallel_dop: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        storage = self.table.storage
        self.has_scan_batches = hasattr(storage, "scan_batches")
        self.has_page_range = hasattr(storage, "scan_page_range")
        self.has_scan_columns = hasattr(storage, "scan_batches_columnar")
        self.versioned = getattr(storage, "versions", None) is not None

    def _markers(self) -> str:
        if self.parallel_dop >= 2:
            return f" [PARALLEL dop={self.parallel_dop}]"
        return ""

    def label(self) -> str:
        suffix = " FILTER" if self.filter is not None else ""
        return f"TABLE SCAN {self.table.name} [{self.binding_name}]{suffix}"


@dataclass
class BTreeScan(PlanNode):
    table: TableDef
    binding_name: str
    index: IndexDef
    low: Optional[ast.Expr] = None
    high: Optional[ast.Expr] = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    filter: Optional[ast.Expr] = None

    def label(self) -> str:
        return (f"INDEX RANGE SCAN {self.index.name} -> "
                f"{self.table.name} [{self.binding_name}]")


@dataclass
class HashScan(PlanNode):
    table: TableDef
    binding_name: str
    index: IndexDef
    key: ast.Expr = None  # type: ignore[assignment]
    filter: Optional[ast.Expr] = None

    def label(self) -> str:
        return (f"HASH INDEX SCAN {self.index.name} -> "
                f"{self.table.name} [{self.binding_name}]")


@dataclass
class BitmapScan(PlanNode):
    table: TableDef
    binding_name: str
    index: IndexDef
    keys: List[ast.Expr] = field(default_factory=list)
    filter: Optional[ast.Expr] = None

    def label(self) -> str:
        return (f"BITMAP INDEX SCAN {self.index.name} -> "
                f"{self.table.name} [{self.binding_name}]")


@dataclass
class IOTPrefixScan(PlanNode):
    """Key-prefix scan of an index-organized table (its native path)."""

    table: TableDef
    binding_name: str
    key: ast.Expr = None  # type: ignore[assignment]
    filter: Optional[ast.Expr] = None

    def label(self) -> str:
        return f"IOT PREFIX SCAN {self.table.name} [{self.binding_name}]"


@dataclass
class DomainScan(PlanNode):
    """Evaluate an operator predicate via ODCIIndexStart/Fetch/Close."""

    table: TableDef
    binding_name: str
    index: IndexDef
    operator_call: OperatorCall = None  # type: ignore[assignment]
    pred_info: ODCIPredInfo = None  # type: ignore[assignment]
    filter: Optional[ast.Expr] = None
    first_rows: bool = False
    #: >0 when the planner judged this scan worth async ODCI prefetch
    #: (bounded queue depth); 0 = the serial fetch loop
    prefetch_depth: int = field(default=0, init=False)

    def _markers(self) -> str:
        if self.prefetch_depth > 0:
            return f" [PREFETCH depth={self.prefetch_depth}]"
        return ""

    def label(self) -> str:
        op = self.operator_call.operator.name
        return (f"DOMAIN INDEX SCAN {self.index.name} ({op}) -> "
                f"{self.table.name} [{self.binding_name}]")


@dataclass
class FilterNode(PlanNode):
    child: PlanNode = None  # type: ignore[assignment]
    predicate: ast.Expr = None  # type: ignore[assignment]

    def label(self) -> str:
        return "FILTER"

    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class NestedLoopJoin(PlanNode):
    outer: PlanNode = None  # type: ignore[assignment]
    inner: PlanNode = None  # type: ignore[assignment]
    condition: Optional[ast.Expr] = None

    def label(self) -> str:
        return "NESTED LOOP JOIN"

    def children(self) -> List[PlanNode]:
        return [self.outer, self.inner]


@dataclass
class IndexedNLJoin(PlanNode):
    """NL join probing the inner table through an index per outer row."""

    outer: PlanNode = None  # type: ignore[assignment]
    inner_table: TableDef = None  # type: ignore[assignment]
    inner_binding: str = ""
    index: IndexDef = None  # type: ignore[assignment]
    outer_key: ast.Expr = None  # type: ignore[assignment]
    condition: Optional[ast.Expr] = None
    inner_filter: Optional[ast.Expr] = None

    def label(self) -> str:
        return (f"INDEXED NL JOIN probe {self.index.name} -> "
                f"{self.inner_table.name} [{self.inner_binding}]")

    def children(self) -> List[PlanNode]:
        return [self.outer]


@dataclass
class DomainNLJoin(PlanNode):
    """NL join probing a *domain* index on the inner table per outer row.

    Covers operator join predicates like
    ``Sdo_Relate(p.geometry, r.geometry, 'mask=OVERLAPS')`` where the
    first argument is the inner table's indexed column and the remaining
    arguments are evaluated against each outer row — the index-based
    spatial join of §3.2.2.
    """

    outer: PlanNode = None  # type: ignore[assignment]
    inner_table: TableDef = None  # type: ignore[assignment]
    inner_binding: str = ""
    index: IndexDef = None  # type: ignore[assignment]
    operator_call: OperatorCall = None  # type: ignore[assignment]
    lower: Optional[Any] = None
    upper: Optional[Any] = None
    include_lower: bool = True
    include_upper: bool = True
    condition: Optional[ast.Expr] = None
    inner_filter: Optional[ast.Expr] = None

    def label(self) -> str:
        op = self.operator_call.operator.name
        return (f"DOMAIN NL JOIN probe {self.index.name} ({op}) -> "
                f"{self.inner_table.name} [{self.inner_binding}]")

    def children(self) -> List[PlanNode]:
        return [self.outer]


@dataclass
class HashJoin(PlanNode):
    left: PlanNode = None  # type: ignore[assignment]
    right: PlanNode = None  # type: ignore[assignment]
    left_keys: List[ast.Expr] = field(default_factory=list)
    right_keys: List[ast.Expr] = field(default_factory=list)
    condition: Optional[ast.Expr] = None

    def label(self) -> str:
        return "HASH JOIN"

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]


@dataclass
class SortNode(PlanNode):
    child: PlanNode = None  # type: ignore[assignment]
    order_items: List[ast.OrderItem] = field(default_factory=list)

    def label(self) -> str:
        return "SORT"

    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class GroupByNode(PlanNode):
    child: PlanNode = None  # type: ignore[assignment]
    group_exprs: List[ast.Expr] = field(default_factory=list)
    aggregates: List[AggregateCall] = field(default_factory=list)
    having: Optional[ast.Expr] = None

    def label(self) -> str:
        return f"GROUP BY ({len(self.group_exprs)} keys)"

    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode = None  # type: ignore[assignment]
    items: List[Tuple[ast.Expr, str]] = field(default_factory=list)

    def label(self) -> str:
        return "DISTINCT"

    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class LimitNode(PlanNode):
    child: PlanNode = None  # type: ignore[assignment]
    limit: Optional[int] = None
    offset: Optional[int] = None

    def label(self) -> str:
        return f"LIMIT {self.limit} OFFSET {self.offset or 0}"

    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class ProjectNode(PlanNode):
    child: PlanNode = None  # type: ignore[assignment]
    items: List[Tuple[ast.Expr, str]] = field(default_factory=list)

    def label(self) -> str:
        return f"PROJECT [{', '.join(name for _, name in self.items)}]"

    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class QueryPlan:
    """Top-level plan: the root node plus output column names."""

    root: PlanNode
    column_names: List[str]
    scope: Scope
    #: number of plan nodes whose row expressions all compiled to
    #: closures (see :mod:`repro.sql.compile`)
    compiled_nodes: int = 0
    #: the Select AST this plan was built from, kept so a mid-scan
    #: degrade (index marked UNUSABLE) can replan the same statement
    source: Optional[ast.Select] = None

    def explain(self) -> List[str]:
        return self.root.explain()

    def referenced_tables(self) -> List[TableDef]:
        """The tables this plan reads (one entry per FROM binding)."""
        return [table for _, table in self.scope.entries]


# ---------------------------------------------------------------------------
# Helpers over predicates
# ---------------------------------------------------------------------------

def split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Flatten top-level ANDs into a conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, ast.BoolOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_together(conjuncts: Sequence[ast.Expr]) -> Optional[ast.Expr]:
    """Rebuild an AND tree from a conjunct list (None when empty)."""
    result: Optional[ast.Expr] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.BoolOp("AND", result, conjunct)
    return result


def referenced_aliases(expr: ast.Expr) -> set:
    """Set of table binding names an expression reads."""
    found: set = set()

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.ColumnRef) and node.bound:
            found.add(node.alias)
        elif isinstance(node, (ast.BinaryOp, ast.BoolOp)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (ast.NotOp, ast.UnaryMinus, ast.IsNullOp)):
            walk(node.operand)
        elif isinstance(node, ast.LikeOp):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.BetweenOp):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.InListOp):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, OperatorCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, AggregateCall) and node.arg is not None:
            walk(node.arg)

    walk(expr)
    return found


def _is_constant(expr: ast.Expr) -> bool:
    return not referenced_aliases(expr) and not contains_aggregate(expr)


_RELOP_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


@dataclass
class Sarg:
    """A sargable simple predicate: column relop constant."""

    column_ref: ast.ColumnRef
    op: str
    value_expr: ast.Expr
    source: ast.Expr


def extract_sarg(conjunct: ast.Expr) -> Optional[Sarg]:
    """Recognize ``col relop const`` / ``const relop col`` / BETWEEN."""
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in _RELOP_FLIP:
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(left, ast.ColumnRef) and left.bound \
                and not left.attr_path and _is_constant(right):
            return Sarg(left, op, right, conjunct)
        if isinstance(right, ast.ColumnRef) and right.bound \
                and not right.attr_path and _is_constant(left):
            return Sarg(right, _RELOP_FLIP[op], left, conjunct)
    return None


@dataclass
class OperatorPred:
    """An index-evaluable operator predicate with return-value bounds.

    §2.4.2: "predicates of the form op(...) relop <value expression>
    ... are possible candidates for index scan based evaluation"; a bare
    truthy use of an operator is normalized to bounds (1, None] per the
    paper's footnote (Contains(...) = 1).
    """

    call: OperatorCall
    lower: Optional[Any] = None
    upper: Optional[Any] = None
    include_lower: bool = True
    include_upper: bool = True
    source: ast.Expr = None  # type: ignore[assignment]


def extract_operator_pred(conjunct: ast.Expr) -> Optional[OperatorPred]:
    """Recognize an operator predicate conjunct, bare or bounded."""
    if isinstance(conjunct, OperatorCall):
        if conjunct.operator.is_ancillary:
            return None
        return OperatorPred(call=conjunct, lower=1, upper=None,
                            source=conjunct)
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in _RELOP_FLIP:
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(right, OperatorCall) and isinstance(left, ast.Literal):
            left, right, op = right, left, _RELOP_FLIP[op]
        if isinstance(left, OperatorCall) and isinstance(right, ast.Literal) \
                and not left.operator.is_ancillary:
            value = right.value
            if op == "=":
                return OperatorPred(left, lower=value, upper=value,
                                    source=conjunct)
            if op == ">":
                return OperatorPred(left, lower=value, include_lower=False,
                                    source=conjunct)
            if op == ">=":
                return OperatorPred(left, lower=value, source=conjunct)
            if op == "<":
                return OperatorPred(left, upper=value, include_upper=False,
                                    source=conjunct)
            if op == "<=":
                return OperatorPred(left, upper=value, source=conjunct)
    return None


def extract_equijoin(conjunct: ast.Expr) -> Optional[Tuple[ast.ColumnRef,
                                                           ast.ColumnRef]]:
    """Recognize ``a.x = b.y`` between two different tables."""
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        left, right = conjunct.left, conjunct.right
        if (isinstance(left, ast.ColumnRef) and left.bound
                and isinstance(right, ast.ColumnRef) and right.bound
                and left.alias != right.alias):
            return left, right
    return None


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------

class Planner:
    """Builds a :class:`QueryPlan` for a bound SELECT statement.

    ``db`` is the owning Database; the planner needs it to instantiate
    stats types and to record optimizer trace events.
    """

    def __init__(self, catalog: Catalog, db: Any = None):
        self.catalog = catalog
        self.db = db
        #: bind values peeked for the current planning (Oracle-style
        #: "bind peeking": the first execution's values inform
        #: selectivity/cost estimates; the compiled plan is then shared
        #: by later executions with different values)
        self._peeked_binds: dict = {}

    # -- entry point ----------------------------------------------------------

    # -- uncorrelated subqueries --------------------------------------------

    def materialize_subqueries(self, expr: Optional[ast.Expr]
                               ) -> Optional[ast.Expr]:
        """Replace IN (SELECT ...) / EXISTS (SELECT ...) with their values.

        Subqueries in this dialect are uncorrelated, so they can be
        evaluated once up front: IN-subqueries become literal IN-lists,
        EXISTS becomes TRUE/FALSE.
        """
        if expr is None or self.db is None:
            return expr
        if isinstance(expr, ast.InSubquery):
            rows = self._run_subquery(expr.query, single_column=True)
            items: List[ast.Expr] = [ast.Literal(row[0]) for row in rows]
            if not items:
                # x IN (empty set) is FALSE; NOT IN (empty set) is TRUE
                return ast.Literal(not expr.negated
                                   if expr.negated else False)
            return ast.InListOp(operand=expr.operand, items=items,
                                negated=expr.negated)
        if isinstance(expr, ast.ExistsSubquery):
            rows = self._run_subquery(expr.query, single_column=False,
                                      limit_one=True)
            exists = bool(rows)
            return ast.Literal(exists if not expr.negated else not exists)
        if isinstance(expr, (ast.BoolOp, ast.BinaryOp)):
            expr.left = self.materialize_subqueries(expr.left)
            expr.right = self.materialize_subqueries(expr.right)
        elif isinstance(expr, (ast.NotOp, ast.UnaryMinus, ast.IsNullOp)):
            expr.operand = self.materialize_subqueries(expr.operand)
        elif isinstance(expr, ast.InListOp):
            expr.operand = self.materialize_subqueries(expr.operand)
        return expr

    def _run_subquery(self, select: ast.Select, single_column: bool,
                      limit_one: bool = False) -> List[Tuple[Any, ...]]:
        plan = self.plan_select(select)
        if single_column and len(plan.column_names) != 1:
            raise ExecutionError(
                "an IN subquery must select exactly one column, got "
                f"{plan.column_names}")
        rows_iter = self.db.executor.run(plan)
        if limit_one:
            first = next(rows_iter, None)
            return [] if first is None else [first]
        return list(rows_iter)

    def plan_select(self, select: ast.Select,
                    peek_binds: Optional[dict] = None) -> QueryPlan:
        """Bind and plan a SELECT.

        ``peek_binds`` (name → value) lets cost estimation see the bind
        values of the execution that triggered compilation, even though
        the plan tree itself keeps the BindParam placeholders.
        """
        if peek_binds is not None:
            self._peeked_binds = peek_binds
        if select.where is not None:
            select.where = self.materialize_subqueries(select.where)
        if select.having is not None:
            select.having = self.materialize_subqueries(select.having)
        scope_entries = []
        seen = set()
        for tref in select.tables:
            table = self.catalog.get_table(tref.name)
            binding = tref.binding_name
            if binding in seen:
                raise CatalogError(f"duplicate table binding {binding!r}")
            seen.add(binding)
            scope_entries.append((binding, table))
        scope = Scope(scope_entries)
        binder = Binder(self.catalog, scope)

        where = binder.bind(select.where) if select.where is not None else None
        group_by = [binder.bind(e) for e in select.group_by]
        having = binder.bind(select.having) if select.having is not None else None

        items = self._expand_items(select.items, scope, binder)
        order_by = [ast.OrderItem(self._bind_order_expr(o.expr, items,
                                                        binder),
                                  o.descending)
                    for o in select.order_by]

        conjuncts = split_conjuncts(where)
        root = self._plan_from_where(scope, conjuncts, select)

        aggregates = self._collect_aggregates(items, having)
        if group_by or aggregates:
            node = GroupByNode(child=root, group_exprs=group_by,
                               aggregates=aggregates, having=having)
            node.est_rows = max(1.0, root.est_rows / 10.0)
            node.est_cost = root.est_cost + root.est_rows * CPU_PER_PREDICATE
            root = node

        if order_by:
            node = SortNode(child=root, order_items=order_by)
            node.est_rows = root.est_rows
            node.est_cost = root.est_cost + root.est_rows * CPU_PER_PREDICATE * 4
            root = node

        project = ProjectNode(child=root, items=[(e, n) for e, n in items])
        project.est_rows = root.est_rows
        project.est_cost = root.est_cost
        root = project

        if select.distinct:
            node = DistinctNode(child=root, items=project.items)
            node.est_rows = root.est_rows
            node.est_cost = root.est_cost + root.est_rows * CPU_PER_PREDICATE
            root = node

        if select.limit is not None or select.offset is not None:
            node = LimitNode(child=root, limit=select.limit,
                             offset=select.offset)
            node.est_rows = min(root.est_rows, select.limit or root.est_rows)
            node.est_cost = root.est_cost
            root = node

        plan = QueryPlan(root=root, column_names=[n for _, n in items],
                         scope=scope, source=select)
        # lower row expressions to closures once, at plan time, so the
        # artifacts ride the shared plan cache across sessions
        if getattr(self.db, "compile_expressions", True):
            from repro.sql.compile import compile_plan
            plan.compiled_nodes = compile_plan(plan, self.catalog)
        self._annotate_parallel(plan.root)
        self._annotate_vectorized(plan.root)
        self._peeked_binds = {}
        return plan

    def _annotate_parallel(self, root: PlanNode) -> None:
        """Mark scans eligible for morsel parallelism / ODCI prefetch.

        Annotations only: est_cost is deliberately untouched, so access
        path choice (and the shared plan-cache entry) is identical for
        serial and parallel sessions — a serial execution simply
        ignores the markers.  DOP is costed from table size (one DOP
        unit per ``parallel_min_pages`` heap pages, capped at 8 here
        and by the executing session's ``max_dop`` at run time);
        prefetch depth is granted when the ODCIStats-estimated result
        cardinality spans multiple fetch batches.
        """
        db = self.db
        if db is None:
            return
        min_pages = max(1, getattr(db, "parallel_min_pages", 8))
        depth = getattr(db, "prefetch_depth", 0)
        min_rows = max(1, getattr(db, "prefetch_min_rows", 64))

        def visit(node: PlanNode) -> None:
            if isinstance(node, FullScan):
                self._annotate_full_scan(node, min_pages)
            elif isinstance(node, DomainScan):
                if depth > 0 and node.est_rows >= min_rows:
                    node.prefetch_depth = depth
            for child in node.children():
                visit(child)

        visit(root)

    def _annotate_full_scan(self, node: FullScan, min_pages: int) -> None:
        # Morsels need page-addressed, versioned storage: workers scan
        # disjoint page ranges and resolve each slot against the
        # statement snapshot, exactly like the serial batched scan.
        if not (node.has_scan_batches and node.has_page_range
                and node.versioned):
            return
        pages = node.table.storage.page_count
        if pages < min_pages:
            return
        # A filter must have compiled — interpreter fallback closes
        # over per-session evaluator state and stays on the owning
        # thread.  Filterless scans are trivially shareable.
        if node.filter is not None and node.compiled.get("filter") is None:
            return
        node.parallel_dop = max(2, min(8, pages // min_pages))
        if node.filter is not None:
            from repro.sql.parallel import (compile_row_kernel,
                                            compile_row_predicate)
            # fused morsel kernel: reject rows straight off the raw
            # storage row, before RowContext construction (None is
            # fine — workers then fall back to the context closure)
            node.compiled["row_filter"] = compile_row_predicate(
                node.filter, self.catalog, node.binding_name, node.table)
            # generated kernel: the whole predicate as one eval-compiled
            # expression; its factory re-checks bind values per execution
            node.compiled["row_kernel"] = compile_row_kernel(
                node.filter, node.binding_name, node.table)

    # -- vectorized execution annotations --------------------------------

    def _annotate_vectorized(self, root: PlanNode) -> None:
        """Attach vector kernels and stamp ``vector_mode`` markers.

        Like :meth:`_annotate_parallel`, annotations only — costs and
        access-path choice are untouched, so the shared plan-cache entry
        is identical whether the executing session runs columnar or
        row-at-a-time.  A node in the vectorizable chain is stamped
        ``VECTORIZED`` when its vector artifacts compiled and ``ROW``
        when it falls back to the row pipeline (mirroring the
        ``COMPILED``/``INTERPRETED`` pair for closures).
        """
        db = self.db
        if db is None:
            return
        if not getattr(db, "compile_expressions", True) \
                or not getattr(db, "vectorized_execution", True):
            return
        from repro.sql.compile import (compile_vector_kernel,
                                       compile_vector_projection)

        def scan_of(node: PlanNode) -> Optional[FullScan]:
            """The node's child when it is a columnar-capable full scan."""
            child = getattr(node, "child", None)
            if isinstance(child, FullScan) and child.has_scan_columns \
                    and child.versioned:
                return child
            return None

        def annotate_scan(scan: FullScan) -> bool:
            """Compile the scan's filter into a vector kernel (once)."""
            if scan.vector_mode is not None:
                return scan.vector_mode == "VECTORIZED"
            if scan.filter is not None:
                # same gate as parallel: an interpreter-fallback filter
                # closes over session state and stays on the row path
                if scan.compiled.get("filter") is None:
                    scan.vector_mode = "ROW"
                    return False
                kernel = compile_vector_kernel(
                    scan.filter, scan.binding_name, scan.table)
                if kernel is None:
                    scan.vector_mode = "ROW"
                    return False
                scan.compiled["vector_kernel"] = kernel
            scan.vector_mode = "VECTORIZED"
            return True

        def visit(node: PlanNode) -> None:
            if isinstance(node, ProjectNode):
                scan = scan_of(node)
                if scan is not None:
                    factory = compile_vector_projection(
                        [e for e, __ in node.items],
                        scan.binding_name, scan.table)
                    if factory is not None and annotate_scan(scan):
                        node.compiled["vector_items"] = factory
                        node.vector_mode = "VECTORIZED"
                    else:
                        node.vector_mode = "ROW"
            elif isinstance(node, SortNode):
                scan = scan_of(node)
                if scan is not None:
                    factory = compile_vector_projection(
                        [item.expr for item in node.order_items],
                        scan.binding_name, scan.table)
                    if factory is not None and annotate_scan(scan):
                        node.compiled["vector_keys"] = factory
                        node.vector_mode = "VECTORIZED"
                    else:
                        node.vector_mode = "ROW"
            elif isinstance(node, GroupByNode):
                scan = scan_of(node)
                if scan is not None:
                    slots = self._vector_group_slots(node, scan)
                    if slots is not None and annotate_scan(scan):
                        node.compiled["vector_group"] = slots
                        node.vector_mode = "VECTORIZED"
                    else:
                        node.vector_mode = "ROW"
            elif isinstance(node, FullScan) and node.vector_mode is None:
                if node.filter is not None:
                    # consumed as rows: the vector filter still pays for
                    # itself (survivors-only materialization boundary)
                    annotate_scan(node)
                else:
                    # filterless scan with a row consumer: transposing
                    # would be pure overhead
                    node.vector_mode = "ROW"
            for child in node.children():
                visit(child)

        visit(root)

    @staticmethod
    def _vector_group_slots(node: GroupByNode,
                            scan: FullScan) -> Optional[Tuple]:
        """Column indices for a grouped column fold, or None to decline.

        Vectorized GROUP BY requires every group key and aggregate
        argument to be a bare column of the scanned table — anything
        computed falls back to the row pipeline (the accumulator
        semantics stay in one place either way).
        """
        positions = {col.name.lower(): i
                     for i, col in enumerate(scan.table.columns)}

        def index_of(expr: ast.Expr) -> Optional[int]:
            if isinstance(expr, ast.ColumnRef) and expr.bound \
                    and not expr.attr_path \
                    and expr.alias == scan.binding_name:
                return positions.get(expr.column)
            return None

        group_indices = []
        for expr in node.group_exprs:
            index = index_of(expr)
            if index is None:
                return None
            group_indices.append(index)
        agg_indices = []
        for agg in node.aggregates:
            if agg.arg is None:
                agg_indices.append(None)  # COUNT(*)
                continue
            index = index_of(agg.arg)
            if index is None:
                return None
            agg_indices.append(index)
        return tuple(group_indices), tuple(agg_indices)

    def _peek_value(self, expr: ast.Expr) -> Any:
        """Plan-time value of an argument expression, for stats routines."""
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.BindParam):
            return self._peeked_binds.get(expr.name.lower())
        return None

    # -- select list -----------------------------------------------------------

    def _expand_items(self, raw_items, scope: Scope,
                      binder: Binder) -> List[Tuple[ast.Expr, str]]:
        items: List[Tuple[ast.Expr, str]] = []
        for item in raw_items:
            if isinstance(item.expr, ast.Star):
                star: ast.Star = item.expr
                for binding, table in scope.entries:
                    if star.alias is not None \
                            and star.alias.lower() != binding:
                        continue
                    for col in table.columns:
                        ref = ast.ColumnRef(path=[binding, col.name.lower()])
                        items.append((binder.bind(ref), col.name.lower()))
                continue
            expr = binder.bind(item.expr)
            name = item.alias
            if name is None:
                if isinstance(expr, ast.ColumnRef):
                    name = expr.column or expr.display()
                elif isinstance(expr, AggregateCall):
                    name = expr.func
                elif isinstance(expr, OperatorCall):
                    name = expr.operator.name.lower().split(".")[-1]
                elif isinstance(expr, ast.FuncCall):
                    name = expr.name.lower().split(".")[-1]
                else:
                    name = f"col{len(items) + 1}"
            items.append((expr, name.lower()))
        if not items:
            raise ExecutionError("empty select list")
        return items

    def _bind_order_expr(self, expr: ast.Expr,
                         items: List[Tuple[ast.Expr, str]],
                         binder: Binder) -> ast.Expr:
        """Resolve an ORDER BY expression: positions and select aliases.

        ``ORDER BY 2`` sorts by the second select item; ``ORDER BY len``
        resolves against a select alias before falling back to columns.
        """
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            position = expr.value
            if not 1 <= position <= len(items):
                raise ExecutionError(
                    f"ORDER BY position {position} is out of range "
                    f"(1..{len(items)})")
            return items[position - 1][0]
        if isinstance(expr, ast.ColumnRef) and len(expr.path) == 1:
            alias = expr.path[0].lower()
            try:
                return binder.bind(expr)
            except CatalogError:
                for item_expr, name in items:
                    if name == alias:
                        return item_expr
                raise
        return binder.bind(expr)

    def _collect_aggregates(self, items, having) -> List[AggregateCall]:
        aggregates: List[AggregateCall] = []

        def walk(node: ast.Expr) -> None:
            if isinstance(node, AggregateCall):
                aggregates.append(node)
                return
            if isinstance(node, (ast.BinaryOp, ast.BoolOp)):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (ast.NotOp, ast.UnaryMinus, ast.IsNullOp)):
                walk(node.operand)
            elif isinstance(node, ast.FuncCall):
                for arg in node.args:
                    walk(arg)
            elif isinstance(node, OperatorCall):
                for arg in node.args:
                    walk(arg)

        for expr, _ in items:
            walk(expr)
        if having is not None:
            walk(having)
        return aggregates

    # -- FROM/WHERE planning -----------------------------------------------------

    def _plan_from_where(self, scope: Scope, conjuncts: List[ast.Expr],
                         select: ast.Select) -> PlanNode:
        per_table: dict = {binding: [] for binding, _ in scope.entries}
        multi: List[ast.Expr] = []
        for conjunct in conjuncts:
            aliases = referenced_aliases(conjunct)
            if len(aliases) == 1:
                per_table[next(iter(aliases))].append(conjunct)
            elif len(aliases) == 0:
                multi.append(conjunct)  # constant predicate: filter anywhere
            else:
                multi.append(conjunct)

        first_rows = select.limit is not None

        base_plans: dict = {}
        for binding, table in scope.entries:
            base_plans[binding] = self._access_path(
                table, binding, per_table[binding], first_rows)

        if len(scope.entries) == 1:
            plan = base_plans[scope.entries[0][0]]
            if multi:
                plan = self._wrap_filter(plan, and_together(multi))
            return plan
        return self._plan_joins(scope, base_plans, multi)

    def _wrap_filter(self, plan: PlanNode, predicate: Optional[ast.Expr]
                     ) -> PlanNode:
        if predicate is None:
            return plan
        node = FilterNode(child=plan, predicate=predicate)
        node.est_rows = max(1.0, plan.est_rows * 0.5)
        node.est_cost = plan.est_cost + plan.est_rows * self._filter_cost(
            predicate)
        return node

    # -- single-table access paths --------------------------------------------

    def _table_stats(self, table: TableDef) -> Tuple[float, float]:
        if table.stats.analyzed:
            rows = float(table.stats.row_count)
            pages = float(max(1, table.stats.page_count))
        else:
            rows = float(table.storage.row_count)
            pages = float(max(1, table.storage.page_count))
        return rows, pages

    def _filter_cost(self, predicate: Optional[ast.Expr]) -> float:
        """Per-row CPU cost of evaluating ``predicate``."""
        if predicate is None:
            return 0.0
        cost = CPU_PER_PREDICATE

        def walk(node: ast.Expr) -> None:
            nonlocal cost
            if isinstance(node, OperatorCall):
                cost += self._operator_function_cost(node)
                for arg in node.args:
                    walk(arg)
            elif isinstance(node, ast.FuncCall):
                cost += self._function_call_cost(node)
                for arg in node.args:
                    walk(arg)
            elif isinstance(node, (ast.BinaryOp, ast.BoolOp)):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (ast.NotOp, ast.UnaryMinus, ast.IsNullOp)):
                walk(node.operand)
            elif isinstance(node, ast.BetweenOp):
                walk(node.operand)

        walk(predicate)
        return cost

    def _function_call_cost(self, call: ast.FuncCall) -> float:
        """Per-call cost of a plain function, honouring ASSOCIATE
        STATISTICS WITH FUNCTIONS when present."""
        key = call.name.lower()
        stats_name = self.catalog.function_stats.get(key) \
            or self.catalog.function_stats.get(key.split(".")[-1])
        if stats_name is not None:
            stats = self.catalog.get_stats_type(stats_name)()
            cost = self._dispatch_stats("ODCIStatsFunctionCost",
                                        stats.function_cost,
                                        call.name, call.args,
                                        self._stats_env())
            if cost is not None:
                return cost
        fn = self.catalog.functions.get(key)
        return fn.cost if fn else DEFAULT_FUNCTION_COST

    def _operator_function_cost(self, call: OperatorCall) -> float:
        """Per-row cost of the operator's functional implementation."""
        operator = call.operator
        stats = self._stats_for_operator(operator)
        if stats is not None:
            env = self._stats_env()
            cost = self._dispatch_stats("ODCIStatsFunctionCost",
                                        stats.function_cost,
                                        operator.name, call.args, env)
            if cost is not None:
                return cost
        if operator.bindings:
            fn = self.catalog.functions.get(
                operator.bindings[0].function_name.lower())
            if fn is not None:
                return fn.cost
        return DEFAULT_FUNCTION_COST

    def _access_path(self, table: TableDef, binding: str,
                     conjuncts: List[ast.Expr],
                     first_rows: bool) -> PlanNode:
        rows, pages = self._table_stats(table)
        candidates: List[PlanNode] = []

        # baseline: full scan with all conjuncts as filter
        residual = and_together(conjuncts)
        full = FullScan(table=table, binding_name=binding, filter=residual)
        sel_all = self._conjunct_selectivity(table, conjuncts)
        full.est_rows = max(1.0, rows * sel_all) if conjuncts else max(rows, 1.0)
        full.est_cost = pages + rows * (ROW_CPU + self._filter_cost(residual))
        candidates.append(full)
        fallback_notes: List[str] = []

        indexes = self.catalog.indexes_on(table.name)

        for i, conjunct in enumerate(conjuncts):
            rest = conjuncts[:i] + conjuncts[i + 1:]
            sarg = extract_sarg(conjunct)
            if sarg is not None and sarg.column_ref.alias == binding:
                candidates.extend(self._native_paths(
                    table, binding, sarg, rest, rows))
                if (table.is_iot and sarg.op == "=" and table.primary_key
                        and sarg.column_ref.column
                        == table.primary_key[0].lower()):
                    sel = self._sarg_selectivity(table, sarg)
                    node = IOTPrefixScan(
                        table=table, binding_name=binding,
                        key=sarg.value_expr, filter=and_together(rest))
                    node.est_rows = max(1.0, rows * sel)
                    node.est_cost = (BTREE_DESCENT + rows * sel
                                     * (ROW_CPU + self._filter_cost(
                                         node.filter)))
                    candidates.append(node)
            op_pred = extract_operator_pred(conjunct)
            if op_pred is not None:
                domain = self._domain_path(table, binding, op_pred, rest,
                                           rows, first_rows,
                                           notes=fallback_notes)
                if domain is not None:
                    candidates.append(domain)

        best = min(candidates, key=lambda c: c.est_cost)
        if fallback_notes and not isinstance(best, DomainScan):
            # make the degradation visible: the operator predicate will
            # run through its functional implementation because every
            # matching domain index is sidelined
            for note in fallback_notes:
                if note not in best.annotations:
                    best.annotations.append(note)
        if self.db is not None and getattr(self.db, "trace_log", None) is not None:
            for cand in candidates:
                marker = "*" if cand is best else " "
                self.db.trace_log.append(
                    f"optimizer:candidate{marker} {cand.label()} "
                    f"cost={cand.est_cost:.2f}")
        return best

    def _conjunct_selectivity(self, table: TableDef,
                              conjuncts: List[ast.Expr]) -> float:
        sel = 1.0
        for conjunct in conjuncts:
            sarg = extract_sarg(conjunct)
            if sarg is not None:
                sel *= self._sarg_selectivity(table, sarg)
                continue
            op_pred = extract_operator_pred(conjunct)
            if op_pred is not None:
                sel *= self._operator_selectivity(op_pred)
                continue
            sel *= 0.5
        return sel

    def _sarg_selectivity(self, table: TableDef, sarg: Sarg) -> float:
        col = sarg.column_ref.column or ""
        col_stats = table.stats.columns.get(col) if table.stats.analyzed else None
        if sarg.op == "=":
            if col_stats and col_stats.ndv > 0:
                return 1.0 / col_stats.ndv
            return DEFAULT_EQ_SELECTIVITY
        if sarg.op == "!=":
            return 1.0 - (1.0 / col_stats.ndv if col_stats and col_stats.ndv
                          else DEFAULT_EQ_SELECTIVITY)
        # range predicates: interpolate within [min, max] when ANALYZE
        # collected numeric bounds and the comparison value is a literal
        if (col_stats is not None
                and isinstance(sarg.value_expr, ast.Literal)
                and isinstance(sarg.value_expr.value, (int, float))
                and isinstance(col_stats.min_value, (int, float))
                and isinstance(col_stats.max_value, (int, float))
                and col_stats.max_value > col_stats.min_value):
            value = float(sarg.value_expr.value)
            low, high = float(col_stats.min_value), float(col_stats.max_value)
            span = high - low
            if sarg.op in ("<", "<="):
                fraction = (value - low) / span
            else:  # > or >=
                fraction = (high - value) / span
            return min(1.0, max(0.0005, fraction))
        return DEFAULT_RANGE_SELECTIVITY

    def _native_paths(self, table: TableDef, binding: str, sarg: Sarg,
                      rest: List[ast.Expr], rows: float) -> List[PlanNode]:
        paths: List[PlanNode] = []
        residual = and_together(rest)
        sel = self._sarg_selectivity(table, sarg)
        for index in self.catalog.indexes_on(table.name):
            if index.is_domain or not index.column_names:
                continue
            if index.column_names[0].lower() != (sarg.column_ref.column or ""):
                continue
            if index.kind == "btree":
                node = BTreeScan(table=table, binding_name=binding,
                                 index=index, filter=residual)
                if sarg.op == "=":
                    node.low = node.high = sarg.value_expr
                elif sarg.op in (">", ">="):
                    node.low = sarg.value_expr
                    node.low_inclusive = sarg.op == ">="
                elif sarg.op in ("<", "<="):
                    node.high = sarg.value_expr
                    node.high_inclusive = sarg.op == "<="
                else:
                    continue  # != is not an index range
                node.est_rows = max(1.0, rows * sel)
                node.est_cost = (BTREE_DESCENT + rows * sel
                                 * (FETCH_COST + self._filter_cost(residual)))
                paths.append(node)
            elif index.kind == "hash" and sarg.op == "=":
                node = HashScan(table=table, binding_name=binding,
                                index=index, key=sarg.value_expr,
                                filter=residual)
                node.est_rows = max(1.0, rows * sel)
                node.est_cost = (1.0 + rows * sel
                                 * (FETCH_COST + self._filter_cost(residual)))
                paths.append(node)
            elif index.kind == "bitmap" and sarg.op == "=":
                node = BitmapScan(table=table, binding_name=binding,
                                  index=index, keys=[sarg.value_expr],
                                  filter=residual)
                node.est_rows = max(1.0, rows * sel)
                node.est_cost = (1.0 + rows * sel
                                 * (FETCH_COST + self._filter_cost(residual)))
                paths.append(node)
        return paths

    # -- domain index path ---------------------------------------------------

    def _domain_path(self, table: TableDef, binding: str,
                     op_pred: OperatorPred, rest: List[ast.Expr],
                     rows: float, first_rows: bool,
                     notes: Optional[List[str]] = None) -> Optional[PlanNode]:
        call = op_pred.call
        if not call.args:
            return None
        first_arg = call.args[0]
        if not (isinstance(first_arg, ast.ColumnRef) and first_arg.bound
                and first_arg.alias == binding):
            return None
        # remaining (non-label) args must be constants to be index-evaluable
        value_args = call.args[1:]
        if call.label is not None:
            value_args = value_args[:-1]
        if not all(_is_constant(arg) for arg in value_args):
            return None
        # find a domain index on the referenced base column
        target_column = first_arg.column or ""
        for index in self.catalog.indexes_on(table.name):
            if not index.is_domain or index.domain is None:
                continue
            if target_column not in [c.lower() for c in index.column_names]:
                continue
            indextype = self.catalog.get_indextype(
                index.domain.indextype_name)
            arg_types = [static_type(a, Scope([(binding, table)]),
                                     self.catalog) for a in call.args]
            if not indextype.supports(call.operator.name.split(".")[-1],
                                      arg_types) \
                    and not indextype.supports(call.operator.name, arg_types):
                continue
            if not index.domain.valid:
                # index would have served this predicate but is sidelined:
                # the operator degrades to functional evaluation (§2.6)
                if notes is not None:
                    notes.append(f"FUNCTIONAL (index {index.name} "
                                 f"{index.domain.state.value})")
                continue
            return self._build_domain_scan(table, binding, index, op_pred,
                                           rest, rows, first_rows)
        return None

    def _build_domain_scan(self, table: TableDef, binding: str,
                           index: IndexDef, op_pred: OperatorPred,
                           rest: List[ast.Expr], rows: float,
                           first_rows: bool) -> DomainScan:
        call = op_pred.call
        residual = and_together(rest)
        pred_info = ODCIPredInfo(
            operator_name=call.operator.name,
            lower_bound=op_pred.lower,
            upper_bound=op_pred.upper,
            include_lower=op_pred.include_lower,
            include_upper=op_pred.include_upper,
        )
        node = DomainScan(table=table, binding_name=binding, index=index,
                          operator_call=call, pred_info=pred_info,
                          filter=residual, first_rows=first_rows)
        sel = self._operator_selectivity(op_pred)
        cost = self._domain_scan_cost(index, pred_info, sel, rows, call)
        node.est_rows = max(1.0, rows * sel)
        node.est_cost = cost + node.est_rows * self._filter_cost(residual)
        return node

    def _stats_for_operator(self, operator):
        """StatsMethods instance for an operator via its indextypes."""
        for indextype in self.catalog.indextypes.values():
            if indextype.stats_name and indextype.supports(
                    operator.name.split(".")[-1]):
                return self.catalog.get_stats_type(indextype.stats_name)()
        return None

    def _stats_for_indextype(self, indextype_name: str):
        indextype = self.catalog.get_indextype(indextype_name)
        if indextype.stats_name:
            return self.catalog.get_stats_type(indextype.stats_name)()
        return None

    def _stats_env(self):
        if self.db is not None:
            return self.db.make_stats_env()
        return None

    def _dispatch_stats(self, routine: str, fn, *args, index_name: str = ""):
        """Invoke an ODCIStats routine, degrading failures to None.

        None makes the caller fall back to its documented default
        selectivity/cost heuristic — a broken statistics type must
        never abort planning (§2.4.2).  Routed through the dispatcher
        when a database is attached (metrics + fault injection); a
        bare catalog-only planner calls directly but still degrades.
        """
        if self.db is not None:
            return self.db.dispatcher.call_degraded(
                routine, fn, *args, index_name=index_name, phase="plan")
        try:
            return fn(*args)
        except DatabaseError:
            return None

    def _operator_selectivity(self, op_pred: OperatorPred) -> float:
        stats = self._stats_for_operator(op_pred.call.operator)
        if stats is not None:
            env = self._stats_env()
            pred_info = ODCIPredInfo(
                operator_name=op_pred.call.operator.name,
                lower_bound=op_pred.lower, upper_bound=op_pred.upper,
                include_lower=op_pred.include_lower,
                include_upper=op_pred.include_upper)
            args = [self._peek_value(a) for a in op_pred.call.args]
            if env is not None:
                env.trace(f"optimizer:ODCIStatsSelectivity("
                          f"{op_pred.call.operator.name})")
            sel = self._dispatch_stats("ODCIStatsSelectivity",
                                       stats.selectivity,
                                       pred_info, args, env)
            if sel is not None:
                return min(1.0, max(0.0, sel))
        return DEFAULT_OPERATOR_SELECTIVITY

    def _domain_scan_cost(self, index: IndexDef, pred_info: ODCIPredInfo,
                          sel: float, rows: float,
                          call: OperatorCall) -> float:
        stats = self._stats_for_indextype(index.domain.indextype_name)
        if stats is not None:
            env = (self.db.make_stats_env(index.domain)
                   if self.db is not None else None)
            args = [self._peek_value(a) for a in call.args]
            if env is not None:
                env.trace(f"optimizer:ODCIStatsIndexCost({index.name})")
            cost = self._dispatch_stats("ODCIStatsIndexCost",
                                        stats.index_cost,
                                        index.domain.index_info(), pred_info,
                                        sel, args, env,
                                        index_name=index.name)
            if cost is not None:
                return cost.total
        return DOMAIN_SCAN_STARTUP + rows * sel * (FETCH_COST
                                                   + DOMAIN_SCAN_PER_ROW)

    # -- joins -------------------------------------------------------------------

    def _plan_joins(self, scope: Scope, base_plans: dict,
                    multi: List[ast.Expr]) -> PlanNode:
        remaining_bindings = [binding for binding, _ in scope.entries]
        remaining_bindings.sort(key=lambda b: base_plans[b].est_rows)
        pending = list(multi)

        current_binding = remaining_bindings.pop(0)
        plan = base_plans[current_binding]
        joined = {current_binding}

        while remaining_bindings:
            next_binding, join_conjuncts = self._pick_next(
                remaining_bindings, joined, pending)
            remaining_bindings.remove(next_binding)
            for conjunct in join_conjuncts:
                pending.remove(conjunct)
            plan = self._join_step(scope, plan, joined, next_binding,
                                   base_plans[next_binding], join_conjuncts)
            joined.add(next_binding)
            # attach any now-answerable pending predicates
            ready = [c for c in pending
                     if referenced_aliases(c) <= joined]
            for conjunct in ready:
                pending.remove(conjunct)
            plan = self._wrap_filter(plan, and_together(ready))
        if pending:
            plan = self._wrap_filter(plan, and_together(pending))
        return plan

    def _pick_next(self, remaining: List[str], joined: set,
                   pending: List[ast.Expr]) -> Tuple[str, List[ast.Expr]]:
        # prefer a table connected by a join predicate to the joined set
        for binding in remaining:
            conjuncts = [c for c in pending
                         if referenced_aliases(c) <= joined | {binding}
                         and binding in referenced_aliases(c)]
            if conjuncts:
                return binding, conjuncts
        return remaining[0], []

    def _join_step(self, scope: Scope, outer: PlanNode, joined: set,
                   inner_binding: str, inner_plan: PlanNode,
                   conjuncts: List[ast.Expr]) -> PlanNode:
        inner_table = scope.table_for_alias(inner_binding)
        equi_pairs = []
        residual: List[ast.Expr] = []
        for conjunct in conjuncts:
            pair = extract_equijoin(conjunct)
            if pair is not None:
                left, right = pair
                if left.alias == inner_binding:
                    left, right = right, left
                if left.alias in joined and right.alias == inner_binding:
                    equi_pairs.append((left, right))
                    continue
            residual.append(conjunct)

        condition = and_together(residual)

        if equi_pairs:
            # try an indexed NL when the inner side has a usable index
            outer_key, inner_key = equi_pairs[0]
            index = self._find_equality_index(inner_table,
                                              inner_key.column or "")
            small_outer = outer.est_rows <= max(
                4.0, 0.2 * max(inner_plan.est_rows, 1.0))
            if index is not None and small_outer \
                    and isinstance(inner_plan, FullScan):
                extra = list(equi_pairs[1:])
                cond = condition
                for left, right in extra:
                    eq = ast.BinaryOp("=", left, right)
                    cond = eq if cond is None else ast.BoolOp("AND", cond, eq)
                node = IndexedNLJoin(outer=outer, inner_table=inner_table,
                                     inner_binding=inner_binding,
                                     index=index, outer_key=outer_key,
                                     condition=cond,
                                     inner_filter=inner_plan.filter)
                node.est_rows = max(1.0, outer.est_rows)
                node.est_cost = (outer.est_cost
                                 + outer.est_rows * (BTREE_DESCENT + 1.0))
                return node
            node = HashJoin(left=outer, right=inner_plan,
                            left_keys=[lk for lk, _ in equi_pairs],
                            right_keys=[rk for _, rk in equi_pairs],
                            condition=condition)
            node.est_rows = max(1.0, max(outer.est_rows, inner_plan.est_rows))
            node.est_cost = (outer.est_cost + inner_plan.est_cost
                             + outer.est_rows * CPU_PER_PREDICATE
                             + inner_plan.est_rows * CPU_PER_PREDICATE)
            return node

        domain_join = self._try_domain_join(outer, inner_binding,
                                            inner_table, inner_plan,
                                            residual, joined)
        if domain_join is not None:
            return domain_join
        # the indexed column may be on the other side: swap roles when
        # the current outer is a single base-table scan
        if isinstance(outer, (FullScan, BTreeScan, HashScan, BitmapScan)) \
                and len(joined) == 1:
            swapped = self._try_domain_join(
                inner_plan, outer.binding_name, outer.table, outer,
                residual, {inner_binding})
            if swapped is not None:
                return swapped

        node = NestedLoopJoin(outer=outer, inner=inner_plan,
                              condition=condition)
        node.est_rows = max(1.0, outer.est_rows * inner_plan.est_rows
                            * (0.1 if condition is not None else 1.0))
        node.est_cost = (outer.est_cost
                         + outer.est_rows * max(inner_plan.est_cost, 0.1))
        return node

    def _try_domain_join(self, outer: PlanNode, inner_binding: str,
                         inner_table: Optional[TableDef],
                         inner_plan: PlanNode,
                         residual: List[ast.Expr],
                         joined: set) -> Optional[DomainNLJoin]:
        """Recognize an operator join predicate servable by a domain index.

        Requirements: the conjunct is an operator predicate whose first
        argument is a column of the inner table with a valid domain
        index supporting the operator, and whose remaining arguments
        read only already-joined tables.
        """
        if inner_table is None:
            return None
        for i, conjunct in enumerate(residual):
            op_pred = extract_operator_pred(conjunct)
            if op_pred is None:
                continue
            call = op_pred.call
            if not call.args:
                continue
            first = call.args[0]
            if not (isinstance(first, ast.ColumnRef) and first.bound
                    and first.alias == inner_binding):
                continue
            rest_args = call.args[1:]
            if call.label is not None:
                rest_args = rest_args[:-1]
            if any(not referenced_aliases(arg) <= joined
                   for arg in rest_args):
                continue
            index = self._domain_index_for(inner_table, first,
                                           call)
            if index is None:
                continue
            remaining = residual[:i] + residual[i + 1:]
            node = DomainNLJoin(
                outer=outer, inner_table=inner_table,
                inner_binding=inner_binding, index=index,
                operator_call=call,
                lower=op_pred.lower, upper=op_pred.upper,
                include_lower=op_pred.include_lower,
                include_upper=op_pred.include_upper,
                condition=and_together(remaining),
                inner_filter=inner_plan.filter
                if isinstance(inner_plan, FullScan) else None)
            sel = self._operator_selectivity(op_pred)
            inner_rows = max(inner_plan.est_rows, 1.0)
            node.est_rows = max(1.0, outer.est_rows * inner_rows * sel)
            node.est_cost = (outer.est_cost + outer.est_rows
                             * (DOMAIN_SCAN_STARTUP + inner_rows * sel))
            return node
        return None

    def _domain_index_for(self, table: TableDef, column_ref: ast.ColumnRef,
                          call: OperatorCall) -> Optional[IndexDef]:
        """A valid domain index on the referenced column supporting the op."""
        target = column_ref.column or ""
        for index in self.catalog.indexes_on(table.name):
            if not index.is_domain or index.domain is None \
                    or not index.domain.valid:
                continue
            if target not in [c.lower() for c in index.column_names]:
                continue
            indextype = self.catalog.get_indextype(
                index.domain.indextype_name)
            if indextype.supports(call.operator.name.split(".")[-1]) \
                    or indextype.supports(call.operator.name):
                return index
        return None

    def _find_equality_index(self, table: Optional[TableDef],
                             column: str) -> Optional[IndexDef]:
        if table is None:
            return None
        for index in self.catalog.indexes_on(table.name):
            if index.is_domain or not index.column_names:
                continue
            if index.column_names[0].lower() == column.lower() \
                    and index.kind in ("btree", "hash"):
                return index
        return None
