"""The database session facade.

:class:`Database` ties the substrates together and implements the
server-side orchestration of the paper's framework (§2.4):

* **Domain index definition/maintenance** — CREATE/ALTER/TRUNCATE/DROP
  INDEX on a domain index invoke the indextype's
  ``ODCIIndexCreate/Alter/Truncate/Drop``; every INSERT/UPDATE/DELETE on
  a table *implicitly* maintains its domain indexes by invoking
  ``ODCIIndexInsert/Update/Delete`` with the old/new indexed-column
  values and the rowid.
* **Query optimization** — SELECTs go through the cost-based planner,
  which may choose a domain-index scan for operator predicates (§2.4.2).
* **Transactions** — DML runs inside a transaction (autocommit when none
  is open); index data written through server callbacks shares the same
  undo, so rollback restores base table and in-database index state
  together (§2.5).  Commit/rollback fire registered database events (§5).
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.core.callbacks import CallbackPhase, CallbackSession
from repro.core.domain_index import DomainIndex
from repro.core.indextype import Indextype, SupportedOperator
from repro.core.odci import IndexMethods, ODCIEnv
from repro.core.operators import Operator, OperatorBinding
from repro.core.scan_context import Workspace
from repro.core.stats import StatsMethods
from repro.errors import (
    CatalogError, ConstraintError, DatabaseError, ExecutionError,
    IndextypeError, PrivilegeError, TransactionError)
from repro.index import BitmapIndex, BTree, HashIndex
from repro.sql import ast_nodes as ast
from repro.sql.builtins import register_builtins
from repro.sql.catalog import (
    Catalog, ColumnInfo, ColumnStats, IndexDef, SQLFunction, TableDef,
    TableStats)
from repro.sql.binds import substitute_binds
from repro.sql.executor import Executor
from repro.sql.expressions import Evaluator, RowContext, Scope, Binder
from repro.sql.parser import parse
from repro.sql import planner as pl
from repro.sql.planner import Planner, QueryPlan
from repro.storage.buffer import BufferCache, IOStats
from repro.storage.filestore import FileStore
from repro.storage.heap import HeapTable, RowId
from repro.storage.iot import IndexOrganizedTable
from repro.storage.lob import LobManager
from repro.txn.events import DatabaseEvent, EventManager
from repro.txn.locks import LockManager, LockMode
from repro.txn.transaction import TransactionManager
from repro.types.datatypes import DataType, type_from_name
from repro.types.objects import NestedTable, ObjectType, Varray
from repro.types.values import NULL, is_null


class Cursor:
    """Result of one executed statement.

    For queries, iterate or call ``fetchone/fetchmany/fetchall``;
    ``description`` lists output column names.  For DML, ``rowcount``
    holds the number of affected rows.
    """

    def __init__(self, columns: Optional[List[str]] = None,
                 rows: Optional[Iterator[Tuple[Any, ...]]] = None,
                 rowcount: int = -1):
        self.description = columns
        self._rows = rows if rows is not None else iter(())
        self.rowcount = rowcount
        self._exhausted = rows is None

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return self._rows

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        """Return the next row, or None at end."""
        return next(self._rows, None)

    def fetchmany(self, size: int = 10) -> List[Tuple[Any, ...]]:
        """Return up to ``size`` next rows."""
        out = []
        for __ in range(size):
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self) -> List[Tuple[Any, ...]]:
        """Return all remaining rows."""
        return list(self._rows)


class Database:
    """One in-process database instance (engine + catalog + framework)."""

    def __init__(self, buffer_capacity: int = 512,
                 fetch_batch_size: int = 32):
        self.stats = IOStats()
        self.buffer = BufferCache(self.stats, capacity=buffer_capacity)
        self.catalog = Catalog()
        self.locks = LockManager()
        self.lobs = LobManager(self.buffer, lock_manager=self.locks)
        self.files = FileStore(self.stats)
        self.txns = TransactionManager()
        self.events = EventManager()
        self.workspace = Workspace(self.stats)
        self.fetch_batch_size = fetch_batch_size
        self._stmt_depth = 0
        #: current session user; "main" is the superuser/DBA
        self.session_user = "main"
        self.trace_log: Optional[List[str]] = None
        self.planner = Planner(self.catalog, db=self)
        self.executor = Executor(self)
        self.evaluator = Evaluator(self.catalog)
        register_builtins(self.catalog)
        self.catalog.add_function(SQLFunction(
            name="varray", fn=lambda *args: tuple(args), cost=0.0001))
        from repro.sql.dictionary import dictionary_view
        self.catalog.view_provider = (
            lambda name: dictionary_view(self.catalog, name))

    # ------------------------------------------------------------------
    # registration API (stands in for PL/SQL bodies; see DESIGN.md §5)
    # ------------------------------------------------------------------

    def create_function(self, name: str, fn: Callable[..., Any],
                        cost: float = 1.0) -> None:
        """Register a SQL-visible function backed by a Python callable.

        ``cost`` is the optimizer's per-call estimate in page-I/O units;
        give expensive domain functions a high cost so the §2.4.2
        functional-vs-index choice is meaningful.
        """
        self.catalog.add_function(SQLFunction(name=name.lower(), fn=fn,
                                              cost=cost))

    def register_methods(self, name: str, cls: Type[IndexMethods]) -> None:
        """Register an ODCIIndex implementation type (CREATE TYPE body)."""
        self.catalog.register_method_type(name, cls)

    def register_stats_type(self, name: str, cls: Type[StatsMethods]) -> None:
        """Register an ODCIStats implementation type."""
        self.catalog.register_stats_type(name, cls)

    def create_object_type(self, name: str,
                           attributes: Sequence[Tuple[str, DataType]]
                           ) -> ObjectType:
        """Create an object type and its SQL constructor function."""
        object_type = ObjectType(name, list(attributes))
        self.catalog.add_object_type(object_type)
        self.catalog.add_function(SQLFunction(
            name=name.lower(), fn=object_type.new, cost=0.0001))
        return object_type

    # ------------------------------------------------------------------
    # users and privileges (§2.5)
    # ------------------------------------------------------------------

    def set_user(self, name: str) -> None:
        """Switch the session user (any name; "main" is the superuser)."""
        self.session_user = name.lower()

    @contextlib.contextmanager
    def as_user(self, name: str):
        """Context manager running a block as another user.

        This is the definer-rights mechanism: indextype routines execute
        "under the privileges of the owner of the index" by wrapping
        their callbacks in ``db.as_user(index_owner)``.
        """
        previous = self.session_user
        self.session_user = name.lower()
        try:
            yield self
        finally:
            self.session_user = previous

    def _check_table_privilege(self, table: TableDef, privilege: str) -> None:
        user = self.session_user
        if user == "main" or table.owner == user:
            return
        if self.catalog.has_grant(user, table.key, privilege):
            return
        raise PrivilegeError(
            f"user {user!r} lacks {privilege.upper()} on {table.name} "
            f"(owner {table.owner!r})")

    def _check_table_ownership(self, table: TableDef, action: str) -> None:
        user = self.session_user
        if user != "main" and table.owner != user:
            raise PrivilegeError(
                f"user {user!r} cannot {action} {table.name} "
                f"(owner {table.owner!r})")

    # ------------------------------------------------------------------
    # tracing (architecture figure F1)
    # ------------------------------------------------------------------

    def enable_tracing(self) -> None:
        """Start recording framework call events into ``trace_log``."""
        self.trace_log = []

    def disable_tracing(self) -> None:
        """Stop recording framework call events."""
        self.trace_log = None

    def _trace(self, message: str) -> None:
        if self.trace_log is not None:
            self.trace_log.append(message)

    # ------------------------------------------------------------------
    # ODCI environments
    # ------------------------------------------------------------------

    def make_env(self, phase: CallbackPhase,
                 domain: Optional[DomainIndex] = None) -> ODCIEnv:
        """Build the ODCIEnv passed into cartridge routines."""
        base_table = domain.table_name if domain is not None else None
        definer = domain.owner if domain is not None else self.session_user
        callback = CallbackSession(self, phase, base_table=base_table,
                                   definer=definer)
        return ODCIEnv(callback=callback, workspace=self.workspace,
                       stats=self.stats, trace=self.trace_log,
                       invoker=self.session_user, definer=definer,
                       lobs=self.lobs, files=self.files, events=self.events)

    def make_stats_env(self, domain: Optional[DomainIndex] = None) -> ODCIEnv:
        """Environment for optimizer statistics routines (query-only).

        When the routine concerns a specific domain index, its callbacks
        run with the index owner's privileges (definer rights) so cost
        estimation can read the cartridge's index tables regardless of
        who issued the query.
        """
        return self.make_env(CallbackPhase.SCAN, domain)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction."""
        self.txns.begin()

    def commit(self) -> None:
        """Commit: discard undo, release locks, fire COMMIT events."""
        txn = self.txns.current
        if txn is None or not txn.active:
            return  # commit with no open transaction is a no-op
        txn.commit()
        self.locks.release_all(txn.txn_id)
        self.events.fire(DatabaseEvent.COMMIT)

    def rollback(self, savepoint: Optional[str] = None) -> None:
        """Roll back the open transaction (or to a savepoint)."""
        txn = self.txns.current
        if txn is None or not txn.active:
            if savepoint is not None:
                raise TransactionError("no transaction to roll back")
            return
        if savepoint is not None:
            txn.rollback_to_savepoint(savepoint)
            return
        txn.rollback()
        self.locks.release_all(txn.txn_id)
        self.events.fire(DatabaseEvent.ROLLBACK)

    def savepoint(self, name: str) -> None:
        """Create a savepoint in the open transaction."""
        self.txns.ensure().savepoint(name)

    @property
    def in_transaction(self) -> bool:
        """True while an explicit or statement transaction is open."""
        return self.txns.in_transaction

    def _autocommit_ddl(self) -> None:
        # Oracle semantics: DDL implicitly commits the open transaction.
        if self.txns.in_transaction:
            self.commit()

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Optional[Any] = None) -> Cursor:
        """Parse and execute one SQL statement.

        ``params`` supplies bind-variable values: a sequence for
        positional binds (``:1``, ``:2``, ...) or a mapping for named
        binds (``:rid``).
        """
        statement = parse(sql)
        if params is not None:
            statement = substitute_binds(statement, params)
        return self.execute_statement(statement, sql)

    def query(self, sql: str,
              params: Optional[Any] = None) -> List[Tuple[Any, ...]]:
        """Execute a SELECT and return all rows."""
        return self.execute(sql, params).fetchall()

    def query_one(self, sql: str,
                  params: Optional[Any] = None) -> Optional[Tuple[Any, ...]]:
        """Execute a SELECT and return the first row (or None)."""
        rows = self.execute(sql, params).fetchall()
        return rows[0] if rows else None

    def explain(self, sql: str, params: Optional[Any] = None) -> List[str]:
        """Return the EXPLAIN plan lines for a query."""
        statement = parse(sql)
        if params is not None:
            statement = substitute_binds(statement, params)
        if isinstance(statement, ast.Explain):
            statement = statement.query
        if not isinstance(statement, ast.Select):
            raise ExecutionError("explain requires a SELECT")
        return self.planner.plan_select(statement).explain()

    def execute_statement(self, statement: ast.Statement,
                          sql: str = "") -> Cursor:
        """Execute a parsed statement (entry point shared with callbacks)."""
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.Explain):
            plan = self.planner.plan_select(statement.query)
            lines = plan.explain()
            return Cursor(columns=["plan"],
                          rows=iter([(line,) for line in lines]))
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            return self._execute_drop_table(statement)
        if isinstance(statement, ast.TruncateTable):
            return self._execute_truncate(statement)
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.AlterIndex):
            return self._execute_alter_index(statement)
        if isinstance(statement, ast.DropIndex):
            return self._execute_drop_index(statement)
        if isinstance(statement, ast.CreateOperator):
            return self._execute_create_operator(statement)
        if isinstance(statement, ast.DropOperator):
            return self._execute_drop_operator(statement)
        if isinstance(statement, ast.CreateIndextype):
            return self._execute_create_indextype(statement)
        if isinstance(statement, ast.DropIndextype):
            return self._execute_drop_indextype(statement)
        if isinstance(statement, ast.CreateType):
            return self._execute_create_type(statement)
        if isinstance(statement, ast.AssociateStatistics):
            return self._execute_associate(statement)
        if isinstance(statement, ast.GrantStatement):
            return self._execute_grant(statement)
        if isinstance(statement, ast.AnalyzeTable):
            return self._execute_analyze(statement)
        if isinstance(statement, ast.Commit):
            self.commit()
            return Cursor(rowcount=0)
        if isinstance(statement, ast.Rollback):
            self.rollback(statement.savepoint)
            return Cursor(rowcount=0)
        if isinstance(statement, ast.BeginTransaction):
            self.begin()
            return Cursor(rowcount=0)
        if isinstance(statement, ast.Savepoint):
            self.savepoint(statement.name)
            return Cursor(rowcount=0)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _execute_select(self, select: ast.Select) -> Cursor:
        for tref in select.tables:
            self._check_table_privilege(self.catalog.get_table(tref.name),
                                        "select")
        txn = self.txns.current
        if txn is not None and txn.active:
            for tref in select.tables:
                self.locks.acquire(txn.txn_id, f"table:{tref.name.lower()}",
                                   LockMode.SHARED)
        plan = self.planner.plan_select(select)
        rows = self.executor.run(plan)
        return Cursor(columns=plan.column_names, rows=rows)

    # ------------------------------------------------------------------
    # DDL: tables
    # ------------------------------------------------------------------

    def _column_datatype(self, col: ast.ColumnDef) -> DataType:
        if col.collection == "varray":
            return Varray(self._scalar_datatype(col.elem_type_name,
                                                col.elem_length),
                          limit=col.limit)
        if col.collection == "table":
            return NestedTable(self._scalar_datatype(col.elem_type_name,
                                                     col.elem_length))
        return self._scalar_datatype(col.type_name, col.length)

    def _scalar_datatype(self, type_name: Optional[str],
                         length: Optional[int]) -> DataType:
        name = (type_name or "").upper()
        if self.catalog.has_object_type(name):
            return self.catalog.get_object_type(name)
        return type_from_name(name, length)

    def _execute_create_table(self, stmt: ast.CreateTable) -> Cursor:
        self._autocommit_ddl()
        if self.catalog.has_table(stmt.name):
            raise CatalogError(f"table {stmt.name} already exists")
        columns = [ColumnInfo(name=c.name.lower(),
                              datatype=self._column_datatype(c),
                              not_null=c.not_null or c.primary_key)
                   for c in stmt.columns]
        pk = [c.lower() for c in stmt.primary_key]
        if stmt.organization_index:
            if not pk:
                raise CatalogError(
                    "an index-organized table requires a primary key")
            leading = [c.name for c in columns[:len(pk)]]
            if leading != pk:
                raise CatalogError(
                    "IOT primary key columns must be the leading columns "
                    f"(got key {pk}, leading columns {leading})")
            storage: Any = IndexOrganizedTable(self.buffer,
                                               key_width=len(pk),
                                               name=stmt.name,
                                               unique=True)
        else:
            storage = HeapTable(self.buffer, name=stmt.name)
        table = TableDef(name=stmt.name, columns=columns, storage=storage,
                         primary_key=pk, is_iot=stmt.organization_index,
                         owner=self.session_user)
        self.catalog.add_table(table)
        return Cursor(rowcount=0)

    def _execute_drop_table(self, stmt: ast.DropTable) -> Cursor:
        self._autocommit_ddl()
        if not self.catalog.has_table(stmt.name):
            if stmt.if_exists:
                return Cursor(rowcount=0)
            raise CatalogError(f"no such table {stmt.name!r}")
        table = self.catalog.get_table(stmt.name)
        self._check_table_ownership(table, "drop")
        for index in list(self.catalog.indexes_on(table.name)):
            self._drop_index_object(index, force=True)
        if isinstance(table.storage, HeapTable):
            self.buffer.drop_segment(table.storage.segment_id)
        else:
            table.storage.truncate()
        self.catalog.drop_table(stmt.name)
        return Cursor(rowcount=0)

    def _execute_truncate(self, stmt: ast.TruncateTable) -> Cursor:
        self._autocommit_ddl()
        table = self.catalog.get_table(stmt.name)
        self._check_table_ownership(table, "truncate")
        table.storage.truncate()
        for index in self.catalog.indexes_on(table.name):
            if index.is_domain and index.domain is not None:
                env = self.make_env(CallbackPhase.DEFINITION, index.domain)
                env.trace(f"ddl:ODCIIndexTruncate({index.name})")
                index.domain.methods.index_truncate(
                    index.domain.index_info(), env)
            elif index.structure is not None:
                index.structure.clear()
        return Cursor(rowcount=0)

    # ------------------------------------------------------------------
    # DDL: indexes
    # ------------------------------------------------------------------

    def _execute_create_index(self, stmt: ast.CreateIndex) -> Cursor:
        self._autocommit_ddl()
        if self.catalog.has_index(stmt.name):
            raise CatalogError(f"index {stmt.name} already exists")
        table = self.catalog.get_table(stmt.table)
        self._check_table_ownership(table, "index")
        columns = tuple(c.lower() for c in stmt.columns)
        for column in columns:
            table.column_position(column)  # validates existence
        if stmt.kind == "domain":
            return self._create_domain_index(stmt, table, columns)
        return self._create_native_index(stmt, table, columns)

    def _create_native_index(self, stmt: ast.CreateIndex, table: TableDef,
                             columns: Tuple[str, ...]) -> Cursor:
        touch = lambda n: setattr(  # noqa: E731 - tiny counter hook
            self.stats, "logical_reads", self.stats.logical_reads + n)
        if stmt.kind == "btree":
            structure: Any = BTree(unique=stmt.unique, touch=touch)
        elif stmt.kind == "hash":
            structure = HashIndex(unique=stmt.unique, touch=touch)
        elif stmt.kind == "bitmap":
            structure = BitmapIndex(touch=touch)
        else:
            raise CatalogError(f"unknown index kind {stmt.kind!r}")
        index = IndexDef(name=stmt.name, table_name=table.name,
                         column_names=columns, kind=stmt.kind,
                         unique=stmt.unique, structure=structure)
        positions = [table.column_position(c) for c in columns]
        for rowid, row in table.storage.scan():
            key = self._index_key(row, positions)
            if key is not None:
                structure.insert(key, rowid)
        self.catalog.add_index(index)
        return Cursor(rowcount=0)

    @staticmethod
    def _index_key(row: List[Any], positions: List[int]) -> Any:
        values = [row[p] for p in positions]
        if any(is_null(v) for v in values):
            return None  # NULL keys are not indexed (Oracle semantics)
        return values[0] if len(values) == 1 else tuple(values)

    def _create_domain_index(self, stmt: ast.CreateIndex, table: TableDef,
                             columns: Tuple[str, ...]) -> Cursor:
        indextype = self.catalog.get_indextype(stmt.indextype or "")
        methods_cls = self.catalog.get_method_type(
            indextype.implementation_name)
        column_types = tuple(table.column_info(c).datatype for c in columns)
        domain = DomainIndex(
            name=stmt.name, table_name=table.name, column_names=columns,
            column_types=column_types, indextype_name=indextype.name,
            parameters=stmt.parameters or "", methods=methods_cls(),
            owner=self.session_user)
        env = self.make_env(CallbackPhase.DEFINITION, domain)
        env.trace(f"ddl:ODCIIndexCreate({indextype.name}:{stmt.name})")
        domain.methods.index_create(domain.index_info(),
                                    stmt.parameters or "", env)
        index = IndexDef(name=stmt.name, table_name=table.name,
                         column_names=columns, kind="domain", domain=domain)
        self.catalog.add_index(index)
        return Cursor(rowcount=0)

    def _execute_alter_index(self, stmt: ast.AlterIndex) -> Cursor:
        self._autocommit_ddl()
        index = self.catalog.get_index(stmt.name)
        if index.is_domain and index.domain is not None:
            domain = index.domain
            env = self.make_env(CallbackPhase.DEFINITION, domain)
            env.trace(f"ddl:ODCIIndexAlter({index.name})")
            domain.methods.index_alter(domain.index_info(),
                                       stmt.parameters or "", env)
            if stmt.parameters is not None:
                domain.parameters = stmt.parameters
            return Cursor(rowcount=0)
        if stmt.rebuild:
            table = self.catalog.get_table(index.table_name)
            index.structure.clear()
            positions = [table.column_position(c)
                         for c in index.column_names]
            for rowid, row in table.storage.scan():
                key = self._index_key(row, positions)
                if key is not None:
                    index.structure.insert(key, rowid)
            return Cursor(rowcount=0)
        raise CatalogError(
            f"index {index.name} is not a domain index; only REBUILD applies")

    def _execute_drop_index(self, stmt: ast.DropIndex) -> Cursor:
        self._autocommit_ddl()
        index = self.catalog.get_index(stmt.name)
        self._drop_index_object(index, force=stmt.force)
        return Cursor(rowcount=0)

    def _drop_index_object(self, index: IndexDef, force: bool) -> None:
        if index.is_domain and index.domain is not None:
            env = self.make_env(CallbackPhase.DEFINITION, index.domain)
            env.trace(f"ddl:ODCIIndexDrop({index.name})")
            try:
                index.domain.methods.index_drop(index.domain.index_info(), env)
            except DatabaseError:
                if not force:
                    raise
        self.catalog.drop_index(index.name)

    # ------------------------------------------------------------------
    # DDL: operators / indextypes / types / statistics
    # ------------------------------------------------------------------

    def _binding_types(self, raw: List[Tuple[str, Optional[int]]]
                       ) -> List[DataType]:
        return [self._scalar_datatype(name, length) for name, length in raw]

    def _execute_create_operator(self, stmt: ast.CreateOperator) -> Cursor:
        self._autocommit_ddl()
        bindings = []
        for raw in stmt.bindings:
            if not self.catalog.has_function(raw.function_name):
                raise CatalogError(
                    f"operator binding references unknown function "
                    f"{raw.function_name!r}; register it with "
                    "db.create_function first")
            bindings.append(OperatorBinding(
                arg_types=self._binding_types(raw.arg_types),
                return_type=self._scalar_datatype(raw.return_type, None),
                function_name=raw.function_name))
        operator = Operator(name=stmt.name, bindings=bindings,
                            ancillary_to=stmt.ancillary_to)
        self.catalog.add_operator(operator)
        return Cursor(rowcount=0)

    def _execute_drop_operator(self, stmt: ast.DropOperator) -> Cursor:
        self._autocommit_ddl()
        operator = self.catalog.get_operator(stmt.name)
        users = [it.name for it in self.catalog.indextypes.values()
                 if it.supports(operator.name.split(".")[-1])]
        if users and not stmt.force:
            raise CatalogError(
                f"operator {operator.name} is supported by indextype(s) "
                f"{users}; use DROP OPERATOR ... FORCE")
        self.catalog.drop_operator(stmt.name)
        return Cursor(rowcount=0)

    def _execute_create_indextype(self, stmt: ast.CreateIndextype) -> Cursor:
        self._autocommit_ddl()
        operators = []
        for raw in stmt.operators:
            if not self.catalog.has_operator(raw.name):
                # tolerate schema-qualified lookup
                binder = Binder(self.catalog, Scope([]))
                if binder.find_operator(raw.name) is None:
                    raise CatalogError(
                        f"indextype references unknown operator {raw.name!r}")
            operators.append(SupportedOperator(
                operator_name=raw.name.split(".")[-1],
                arg_types=tuple(self._binding_types(raw.arg_types))))
        # validates that the implementation type is registered
        self.catalog.get_method_type(stmt.using)
        indextype = Indextype(name=stmt.name, operators=operators,
                              implementation_name=stmt.using)
        self.catalog.add_indextype(indextype)
        return Cursor(rowcount=0)

    def _execute_drop_indextype(self, stmt: ast.DropIndextype) -> Cursor:
        self._autocommit_ddl()
        if stmt.force:
            indextype = self.catalog.get_indextype(stmt.name)
            for index in list(self.catalog.indexes.values()):
                if index.is_domain and index.domain is not None and \
                        index.domain.indextype_name.lower() == indextype.key:
                    self._drop_index_object(index, force=True)
        self.catalog.drop_indextype(stmt.name)
        return Cursor(rowcount=0)

    def _execute_create_type(self, stmt: ast.CreateType) -> Cursor:
        self._autocommit_ddl()
        attributes = [(a.name, self._column_datatype(a))
                      for a in stmt.attributes]
        self.create_object_type(stmt.name, attributes)
        return Cursor(rowcount=0)

    def _execute_associate(self, stmt: ast.AssociateStatistics) -> Cursor:
        self._autocommit_ddl()
        self.catalog.get_stats_type(stmt.using)  # validates registration
        if stmt.kind == "indextypes":
            for name in stmt.names:
                self.catalog.get_indextype(name).stats_name = stmt.using
        else:
            for name in stmt.names:
                if not self.catalog.has_function(name):
                    raise CatalogError(f"no such function {name!r}")
                # the planner consults this for per-call function costs
                self.catalog.function_stats[name.lower()] = stmt.using
        return Cursor(rowcount=0)

    def _execute_grant(self, stmt: ast.GrantStatement) -> Cursor:
        self._autocommit_ddl()
        table = self.catalog.get_table(stmt.table)
        self._check_table_ownership(
            table, "revoke privileges on" if stmt.revoke
            else "grant privileges on")
        if stmt.revoke:
            self.catalog.revoke(stmt.grantee, table.key, stmt.privileges)
        else:
            self.catalog.grant(stmt.grantee, table.key, stmt.privileges)
        return Cursor(rowcount=0)

    def _execute_analyze(self, stmt: ast.AnalyzeTable) -> Cursor:
        table = self.catalog.get_table(stmt.name)
        stats = TableStats(row_count=table.storage.row_count,
                           page_count=table.storage.page_count,
                           analyzed=True)
        distinct: Dict[str, set] = {c.name: set() for c in table.columns}
        nulls: Dict[str, int] = {c.name: 0 for c in table.columns}
        mins: Dict[str, Any] = {}
        maxs: Dict[str, Any] = {}
        for __, row in table.storage.scan():
            for col, value in zip(table.columns, row):
                if is_null(value):
                    nulls[col.name] += 1
                    continue
                marker = value if isinstance(value, (int, float, str, bool)) \
                    else repr(value)
                distinct[col.name].add(marker)
                if isinstance(value, (int, float, str)) \
                        and not isinstance(value, bool):
                    if col.name not in mins or value < mins[col.name]:
                        mins[col.name] = value
                    if col.name not in maxs or value > maxs[col.name]:
                        maxs[col.name] = value
        for col in table.columns:
            stats.columns[col.name] = ColumnStats(
                ndv=len(distinct[col.name]), null_count=nulls[col.name],
                min_value=mins.get(col.name), max_value=maxs.get(col.name))
        table.stats = stats
        # ODCIStatsCollect for domain indexes with associated statistics
        for index in self.catalog.indexes_on(table.name):
            if not index.is_domain or index.domain is None:
                continue
            indextype = self.catalog.get_indextype(
                index.domain.indextype_name)
            if indextype.stats_name is None:
                continue
            stats_impl = self.catalog.get_stats_type(indextype.stats_name)()
            env = self.make_env(CallbackPhase.SCAN, index.domain)
            env.trace(f"analyze:ODCIStatsCollect({index.name})")
            collected = stats_impl.stats_collect(index.domain.index_info(),
                                                 env)
            if collected is not None:
                self.catalog.domain_index_stats[index.key] = collected
        return Cursor(rowcount=0)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _dml_transaction(self):
        """Open the statement scope: (txn, autocommit_flag).

        Every DML statement gets an implicit savepoint so a failure
        rolls back exactly that statement's changes (statement-level
        atomicity) while an enclosing explicit transaction survives.
        The depth counter keeps nested DML issued by maintenance
        callbacks from clobbering the outer statement's savepoint.
        """
        if self.txns.in_transaction:
            txn, autocommit = self.txns.current, False
        else:
            txn, autocommit = self.txns.begin(), True
        self._stmt_depth += 1
        txn.savepoint(f"__stmt_{self._stmt_depth}__")
        return txn, autocommit

    def _finish_dml(self, autocommit: bool, failed: bool = False) -> None:
        depth = self._stmt_depth
        self._stmt_depth -= 1
        if failed:
            txn = self.txns.current
            if txn is not None and txn.active:
                txn.rollback_to_savepoint(f"__stmt_{depth}__")
            if autocommit:
                self.rollback()
            return
        if autocommit:
            self.commit()

    def _validate_row(self, table: TableDef, row: List[Any]) -> List[Any]:
        out = []
        for col, value in zip(table.columns, row):
            validated = col.datatype.validate(value)
            if col.not_null and is_null(validated):
                raise ConstraintError(
                    f"column {table.name}.{col.name} is NOT NULL")
            out.append(validated)
        return out

    def insert_row(self, table_name: str, values: Sequence[Any]) -> RowId:
        """Insert one row of Python values (bypasses the parser).

        Used by application code that holds non-literal values (rowids,
        object instances, LOB locators) — e.g. the legacy text baseline
        writing rowids to its temporary result table.
        """
        table = self.catalog.get_table(table_name)
        self._check_table_privilege(table, "insert")
        if len(values) != len(table.columns):
            raise ExecutionError(
                f"{table.name} has {len(table.columns)} columns, "
                f"got {len(values)} values")
        txn, autocommit = self._dml_transaction()
        try:
            self.locks.acquire(txn.txn_id, f"table:{table.key}",
                               LockMode.EXCLUSIVE)
            rowid = self._insert_physical(table, list(values), txn)
        except Exception:
            self._finish_dml(autocommit, failed=True)
            raise
        self._finish_dml(autocommit)
        return rowid

    def insert_rows(self, table_name: str,
                    rows: Sequence[Sequence[Any]]) -> int:
        """Bulk :meth:`insert_row`; returns the number of rows inserted."""
        table = self.catalog.get_table(table_name)
        self._check_table_privilege(table, "insert")
        txn, autocommit = self._dml_transaction()
        try:
            self.locks.acquire(txn.txn_id, f"table:{table.key}",
                               LockMode.EXCLUSIVE)
            for values in rows:
                if len(values) != len(table.columns):
                    raise ExecutionError(
                        f"{table.name} has {len(table.columns)} columns, "
                        f"got {len(values)} values")
                self._insert_physical(table, list(values), txn)
        except Exception:
            self._finish_dml(autocommit, failed=True)
            raise
        self._finish_dml(autocommit)
        return len(rows)

    def _insert_physical(self, table: TableDef, row: List[Any], txn) -> RowId:
        row = self._validate_row(table, row)
        storage = table.storage
        rowid = storage.insert(row)
        txn.record_undo(lambda: storage.delete(rowid))
        self._maintain_indexes_insert(table, rowid, row, txn)
        return rowid

    def _maintain_indexes_insert(self, table: TableDef, rowid: RowId,
                                 row: List[Any], txn) -> None:
        for index in self.catalog.indexes_on(table.name):
            if index.is_domain and index.domain is not None:
                domain = index.domain
                env = self.make_env(CallbackPhase.MAINTENANCE, domain)
                env.trace(f"dml:ODCIIndexInsert({index.name})")
                values = [row[table.column_position(c)]
                          for c in index.column_names]
                domain.methods.index_insert(domain.index_info(), rowid,
                                            values, env)
                continue
            structure = index.structure
            positions = [table.column_position(c)
                         for c in index.column_names]
            key = self._index_key(row, positions)
            if key is None:
                continue
            structure.insert(key, rowid)
            txn.record_undo(
                lambda s=structure, k=key, r=rowid: s.delete(k, r))

    def _maintain_indexes_delete(self, table: TableDef, rowid: RowId,
                                 row: List[Any], txn) -> None:
        for index in self.catalog.indexes_on(table.name):
            if index.is_domain and index.domain is not None:
                domain = index.domain
                env = self.make_env(CallbackPhase.MAINTENANCE, domain)
                env.trace(f"dml:ODCIIndexDelete({index.name})")
                values = [row[table.column_position(c)]
                          for c in index.column_names]
                domain.methods.index_delete(domain.index_info(), rowid,
                                            values, env)
                continue
            structure = index.structure
            positions = [table.column_position(c)
                         for c in index.column_names]
            key = self._index_key(row, positions)
            if key is None:
                continue
            structure.delete(key, rowid)
            txn.record_undo(
                lambda s=structure, k=key, r=rowid: s.insert(k, r))

    def _maintain_indexes_update(self, table: TableDef, rowid: RowId,
                                 old_row: List[Any], new_row: List[Any],
                                 txn) -> None:
        for index in self.catalog.indexes_on(table.name):
            positions = [table.column_position(c)
                         for c in index.column_names]
            old_vals = [old_row[p] for p in positions]
            new_vals = [new_row[p] for p in positions]
            if index.is_domain and index.domain is not None:
                if old_vals == new_vals:
                    continue  # indexed columns unchanged
                domain = index.domain
                env = self.make_env(CallbackPhase.MAINTENANCE, domain)
                env.trace(f"dml:ODCIIndexUpdate({index.name})")
                domain.methods.index_update(domain.index_info(), rowid,
                                            old_vals, new_vals, env)
                continue
            structure = index.structure
            old_key = self._index_key(old_row, positions)
            new_key = self._index_key(new_row, positions)
            if old_key == new_key:
                continue
            if old_key is not None:
                structure.delete(old_key, rowid)
                txn.record_undo(
                    lambda s=structure, k=old_key, r=rowid: s.insert(k, r))
            if new_key is not None:
                structure.insert(new_key, rowid)
                txn.record_undo(
                    lambda s=structure, k=new_key, r=rowid: s.delete(k, r))

    def _execute_insert(self, stmt: ast.Insert) -> Cursor:
        table = self.catalog.get_table(stmt.table)
        self._check_table_privilege(table, "insert")
        column_order = [c.lower() for c in stmt.columns] \
            if stmt.columns else [c.name for c in table.columns]
        positions = [table.column_position(c) for c in column_order]

        def build_row(values: List[Any]) -> List[Any]:
            if len(values) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, "
                    f"got {len(values)}")
            row: List[Any] = [NULL] * len(table.columns)
            for pos, value in zip(positions, values):
                row[pos] = value
            return row

        rows_to_insert: List[List[Any]] = []
        if stmt.select is not None:
            for out in self._execute_select(stmt.select):
                rows_to_insert.append(build_row(list(out)))
        else:
            empty = RowContext()
            for value_row in stmt.rows:
                binder = Binder(self.catalog, Scope([]))
                values = [self.evaluator.evaluate(binder.bind(e), empty)
                          for e in value_row]
                rows_to_insert.append(build_row(values))

        txn, autocommit = self._dml_transaction()
        try:
            self.locks.acquire(txn.txn_id, f"table:{table.key}",
                               LockMode.EXCLUSIVE)
            for row in rows_to_insert:
                self._insert_physical(table, row, txn)
        except Exception:
            self._finish_dml(autocommit, failed=True)
            raise
        self._finish_dml(autocommit)
        return Cursor(rowcount=len(rows_to_insert))

    def _plan_target_rows(self, table: TableDef, binding: str,
                          where: Optional[ast.Expr]
                          ) -> List[Tuple[RowId, RowContext]]:
        select = ast.Select(
            items=[ast.SelectItem(ast.Star())],
            tables=[ast.TableRef(name=table.name, alias=binding)],
            where=where)
        plan = self.planner.plan_select(select)
        node = plan.root
        while isinstance(node, (pl.ProjectNode, pl.DistinctNode,
                                pl.LimitNode, pl.SortNode)):
            node = node.child
        # materialize fully before mutating (Halloween-problem avoidance)
        return [(ctx.rowids[binding], ctx)
                for ctx in self.executor.iter_node(node)]

    def _execute_update(self, stmt: ast.Update) -> Cursor:
        table = self.catalog.get_table(stmt.table)
        self._check_table_privilege(table, "update")
        binding = (stmt.alias or stmt.table).lower()
        scope = Scope([(binding, table)])
        binder = Binder(self.catalog, scope)
        where = stmt.where
        if where is not None:
            where = binder.bind(self.planner.materialize_subqueries(where))
        assignments = [(table.column_position(col), binder.bind(expr))
                       for col, expr in stmt.assignments]
        targets = self._plan_target_rows(table, binding, where)
        txn, autocommit = self._dml_transaction()
        count = 0
        try:
            self.locks.acquire(txn.txn_id, f"table:{table.key}",
                               LockMode.EXCLUSIVE)
            for rowid, ctx in targets:
                old_row = table.storage.fetch_or_none(rowid)
                if old_row is None:
                    continue
                new_row = list(old_row)
                for pos, expr in assignments:
                    new_row[pos] = self.evaluator.evaluate(expr, ctx)
                new_row = self._validate_row(table, new_row)
                storage = table.storage
                storage.update(rowid, new_row)
                old_copy = list(old_row)
                txn.record_undo(
                    lambda s=storage, r=rowid, o=old_copy: s.update(r, o))
                self._maintain_indexes_update(table, rowid, old_copy,
                                              new_row, txn)
                count += 1
        except Exception:
            self._finish_dml(autocommit, failed=True)
            raise
        self._finish_dml(autocommit)
        return Cursor(rowcount=count)

    def _execute_delete(self, stmt: ast.Delete) -> Cursor:
        table = self.catalog.get_table(stmt.table)
        self._check_table_privilege(table, "delete")
        binding = (stmt.alias or stmt.table).lower()
        scope = Scope([(binding, table)])
        binder = Binder(self.catalog, scope)
        where = stmt.where
        if where is not None:
            where = binder.bind(self.planner.materialize_subqueries(where))
        targets = self._plan_target_rows(table, binding, where)
        txn, autocommit = self._dml_transaction()
        count = 0
        try:
            self.locks.acquire(txn.txn_id, f"table:{table.key}",
                               LockMode.EXCLUSIVE)
            for rowid, __ in targets:
                old_row = table.storage.fetch_or_none(rowid)
                if old_row is None:
                    continue
                storage = table.storage
                old_copy = list(storage.delete(rowid))
                txn.record_undo(
                    lambda s=storage, r=rowid, o=old_copy: s.undelete(r, o))
                self._maintain_indexes_delete(table, rowid, old_copy, txn)
                count += 1
        except Exception:
            self._finish_dml(autocommit, failed=True)
            raise
        self._finish_dml(autocommit)
        return Cursor(rowcount=count)
