"""Sessions: per-connection state over a shared engine.

:class:`Session` fronts the staged statement pipeline
(:mod:`repro.sql.pipeline`) for one connection.  The session owns only
per-connection state — the open transaction, current user and
privileges, tracing, ODCI environments, and settings such as
``skip_unusable_indexes`` and ``lock_timeout``; everything shared
between connections (catalog, buffer cache, plan cache, lock manager,
dispatcher) lives in the :class:`~repro.sql.engine.Engine` and is
reached through delegating properties.  Statement processing is
delegated:

* **Parse → Bind → Plan → Execute** with the engine's shared plan cache
  lives in :class:`~repro.sql.pipeline.StatementPipeline`;
* **DML + implicit domain-index maintenance**
  (``ODCIIndexInsert/Update/Delete`` fan-out, §2.4.1) lives in
  :class:`~repro.sql.dml.DMLEngine`;
* **DDL** (including ``ODCIIndexCreate/Alter/Truncate/Drop`` and the
  ODCIStats wiring of §2.4.2) lives in
  :class:`~repro.sql.ddl.DDLEngine`.

Transactions: DML runs inside a transaction (autocommit when none is
open); index data written through server callbacks shares the same
undo, so rollback restores base table and in-database index state
together (§2.5).  Commit/rollback fire registered database events (§5).
Transaction ids come from the engine so they are globally ordered —
deadlock victim selection compares them across sessions.

:class:`Database` is the historical single-session facade: an engine
plus one default session, kept as a thin wrapper so existing code and
tests run unchanged.  New multi-session code should use
``Engine().connect()`` or :mod:`repro.dbapi`.  A session (and its
transaction) is confined to one thread at a time; concurrency comes
from many sessions, not from sharing one.
"""

from __future__ import annotations

import contextlib
import warnings
import weakref
from typing import (
    Any, Callable, List, Optional, Sequence, Tuple, Type)

from repro.core.callbacks import CallbackPhase, CallbackSession
from repro.core.domain_index import DomainIndex
from repro.core.odci import IndexMethods, ODCIEnv
from repro.core.scan_context import Workspace
from repro.core.stats import StatsMethods
from repro.errors import PrivilegeError, TransactionError
from repro.sql import ast_nodes as ast
from repro.sql.catalog import SQLFunction, TableDef
from repro.sql.cursor import Cursor
from repro.sql.ddl import DDLEngine
from repro.sql.dml import DMLEngine
from repro.sql.engine import Engine
from repro.sql.executor import Executor
from repro.sql.expressions import Evaluator
from repro.sql.pipeline import StatementPipeline
from repro.sql.plan_cache import PlanCache
from repro.sql.planner import Planner
from repro.storage.heap import RowId
from repro.txn.events import DatabaseEvent
from repro.txn.transaction import TransactionManager
from repro.types.datatypes import DataType
from repro.types.objects import ObjectType

__all__ = ["Cursor", "Database", "Session"]


class Session:
    """One connection: transaction state + settings over a shared engine."""

    def __init__(self, engine: Engine, user: str = "main"):
        self.engine = engine
        self.session_id = engine.allocate_session_id()
        #: per-session transaction manager drawing engine-global txn ids
        self.txns = TransactionManager(id_allocator=engine.allocate_txn_id)
        #: per-session scan workspace (ODCI handles, spill accounting)
        self.workspace = Workspace(engine.stats)
        self.fetch_batch_size = engine.fetch_batch_size
        #: plan-time expression compilation toggle (see repro.sql.compile);
        #: per-session so a session can A/B the interpreter, but note the
        #: *plan cache* is engine-wide — plans compiled by one session
        #: carry their closures to every session (executions simply
        #: ignore them when this is off)
        self.compile_expressions = engine.compile_expressions
        #: current session user; "main" is the superuser/DBA
        self.session_user = user.lower()
        self.trace_log: Optional[List[str]] = None
        #: Oracle's SKIP_UNUSABLE_INDEXES session setting (default TRUE):
        #: DML skips maintenance of non-VALID domain indexes, and a
        #: maintenance failure degrades the index to UNUSABLE and retries
        #: the statement once, instead of failing it outright.
        self.skip_unusable_indexes = True
        #: seconds a lock request blocks before LockTimeoutError
        self.lock_timeout = engine.default_lock_timeout
        #: array ODCI maintenance (ODCIIndex*Batch, one dispatch per
        #: index per statement); off restores per-row dispatch — the
        #: differential tests drive both paths over the same workload
        self.batch_index_maintenance = True
        #: opt-in: extend the maintenance queue to transaction scope
        #: (flush at commit, or earlier for read-your-writes — see
        #: DMLEngine.flush_deferred_for); only affects statements inside
        #: an explicit transaction
        self.deferred_index_maintenance = False
        #: CREATE INDEX / REBUILD may use bulk construction (bottom-up
        #: B-tree build, STR packing, sorted inverted-list load); off
        #: forces the row-at-a-time seed path (bench baseline)
        self.bulk_index_build = True
        #: when True, SELECTs skip table S-locks (plan-time stats reads)
        self._suppress_table_locks = False
        #: MVCC consistent reads (default): SELECTs resolve rows against
        #: a statement snapshot, taking *no* table locks; off restores
        #: current-mode reads (the differential suite proves parity)
        self.snapshot_reads = True
        self.__dict__.update(engine.parallel_defaults())  # parallel knobs
        #: snapshot pinned by a callback scope (ODCIIndexStart/Fetch):
        #: callback SQL reads at the opening statement's SCN
        self._pinned_snapshot = None
        #: statement cursors this session handed out that are still
        #: alive; Session.close() closes them so domain-index scans
        #: abandoned mid-fetch get their ODCIIndexClose and give their
        #: workspace handles back (weak: a collected cursor drops out)
        self._open_cursors: "weakref.WeakSet" = weakref.WeakSet()
        self.planner = Planner(engine.catalog, db=self)
        #: default bindless executor (planner subqueries, DML target rows)
        self.executor = Executor(self)
        self.evaluator = Evaluator(engine.catalog)
        self.pipeline = StatementPipeline(self, cache=engine.plan_cache)
        self.dml = DMLEngine(self)
        self.ddl = DDLEngine(self)
        engine.bind_session(self)

    def _bind(self) -> None:
        # thread ↔ session binding: lets shared components (dispatcher
        # tracing) resolve the driving session without plumbing it through
        self.engine.bind_session(self)

    # ------------------------------------------------------------------
    # shared substrate (delegates to the engine)
    # ------------------------------------------------------------------

    @property
    def stats(self):
        """Engine-wide I/O statistics."""
        return self.engine.stats

    @property
    def buffer(self):
        """The shared buffer cache."""
        return self.engine.buffer

    @property
    def catalog(self):
        """The shared catalog."""
        return self.engine.catalog

    @property
    def locks(self):
        """The shared lock manager."""
        return self.engine.locks

    @property
    def lobs(self):
        """The shared LOB manager."""
        return self.engine.lobs

    @property
    def files(self):
        """The shared external file store."""
        return self.engine.files

    @property
    def events(self):
        """The shared database-event manager."""
        return self.engine.events

    @property
    def dispatcher(self):
        """The shared ODCI callback dispatcher."""
        return self.engine.dispatcher

    @property
    def plan_cache(self) -> PlanCache:
        """The engine-wide plan cache fronting the statement pipeline."""
        return self.pipeline.cache

    # ------------------------------------------------------------------
    # registration API (stands in for PL/SQL bodies; see DESIGN.md §5)
    # ------------------------------------------------------------------

    def create_function(self, name: str, fn: Callable[..., Any],
                        cost: float = 1.0) -> None:
        """Register a SQL-visible function backed by a Python callable.

        ``cost`` is the optimizer's per-call estimate in page-I/O units;
        give expensive domain functions a high cost so the §2.4.2
        functional-vs-index choice is meaningful.
        """
        self.catalog.add_function(SQLFunction(name=name.lower(), fn=fn,
                                              cost=cost))

    def register_methods(self, name: str, cls: Type[IndexMethods]) -> None:
        """Register an ODCIIndex implementation type (CREATE TYPE body)."""
        self.catalog.register_method_type(name, cls)

    def register_stats_type(self, name: str, cls: Type[StatsMethods]) -> None:
        """Register an ODCIStats implementation type."""
        self.catalog.register_stats_type(name, cls)

    def create_object_type(self, name: str,
                           attributes: Sequence[Tuple[str, DataType]]
                           ) -> ObjectType:
        """Create an object type and its SQL constructor function."""
        object_type = ObjectType(name, list(attributes))
        self.catalog.add_object_type(object_type)
        self.catalog.add_function(SQLFunction(
            name=name.lower(), fn=object_type.new, cost=0.0001))
        return object_type

    # ------------------------------------------------------------------
    # users and privileges (§2.5)
    # ------------------------------------------------------------------

    def set_user(self, name: str) -> None:
        """Switch the session user (any name; "main" is the superuser)."""
        self.session_user = name.lower()

    @contextlib.contextmanager
    def as_user(self, name: str):
        """Context manager running a block as another user.

        This is the definer-rights mechanism: indextype routines execute
        "under the privileges of the owner of the index" by wrapping
        their callbacks in ``db.as_user(index_owner)``.
        """
        previous = self.session_user
        self.session_user = name.lower()
        try:
            yield self
        finally:
            self.session_user = previous

    def _check_table_privilege(self, table: TableDef, privilege: str) -> None:
        user = self.session_user
        if user == "main" or table.owner == user:
            return
        if self.catalog.has_grant(user, table.key, privilege):
            return
        raise PrivilegeError(
            f"user {user!r} lacks {privilege.upper()} on {table.name} "
            f"(owner {table.owner!r})")

    def _check_table_ownership(self, table: TableDef, action: str) -> None:
        user = self.session_user
        if user != "main" and table.owner != user:
            raise PrivilegeError(
                f"user {user!r} cannot {action} {table.name} "
                f"(owner {table.owner!r})")

    # ------------------------------------------------------------------
    # tracing (architecture figure F1)
    # ------------------------------------------------------------------

    def enable_tracing(self) -> None:
        """Start recording framework call events into ``trace_log``."""
        self.trace_log = []

    def disable_tracing(self) -> None:
        """Stop recording framework call events."""
        self.trace_log = None

    def _trace(self, message: str) -> None:
        if self.trace_log is not None:
            self.trace_log.append(message)

    # ------------------------------------------------------------------
    # ODCI environments
    # ------------------------------------------------------------------

    def make_env(self, phase: CallbackPhase,
                 domain: Optional[DomainIndex] = None,
                 locking: bool = True, snapshot=None) -> ODCIEnv:
        """Build the session-scoped ODCIEnv passed into cartridge routines.

        ``snapshot`` pins every SQL statement the callback runs to the
        opening statement's snapshot — the §2.5 consistency story:
        ``ODCIIndexStart/Fetch/Close`` reads the index data tables at
        the same SCN the executor reads the base table.
        """
        base_table = domain.table_name if domain is not None else None
        definer = domain.owner if domain is not None else self.session_user
        callback = CallbackSession(self, phase, base_table=base_table,
                                   definer=definer, locking=locking,
                                   snapshot=snapshot)
        return ODCIEnv(callback=callback, workspace=self.workspace,
                       stats=self.stats, trace=self.trace_log,
                       invoker=self.session_user, definer=definer,
                       lobs=self.lobs, files=self.files, events=self.events,
                       bulk_build=self.bulk_index_build)

    def make_stats_env(self, domain: Optional[DomainIndex] = None) -> ODCIEnv:
        """Environment for optimizer statistics routines (query-only).

        When the routine concerns a specific domain index, its callbacks
        run with the index owner's privileges (definer rights) so cost
        estimation can read the cartridge's index tables regardless of
        who issued the query.

        Statistics callbacks read *without table locks*: costing runs at
        plan time, before the statement has locked its own tables, so an
        S-lock on an index data table here would invert the base-table →
        index-table lock order every writer follows and manufacture
        deadlocks with concurrent DML.  Plan-time reads are estimates;
        they tolerate concurrent mutation by design.
        """
        return self.make_env(CallbackPhase.SCAN, domain, locking=False)

    @contextlib.contextmanager
    def _no_table_locks(self):
        """Scope in which this session's SELECTs skip table S-locks."""
        prev = self._suppress_table_locks
        self._suppress_table_locks = True
        try:
            yield
        finally:
            self._suppress_table_locks = prev

    # ------------------------------------------------------------------
    # snapshots (consistent reads; see repro.txn.mvcc)
    # ------------------------------------------------------------------

    def statement_snapshot(self):
        """The snapshot this statement's reads should resolve against.

        Priority: a callback-pinned snapshot (domain-index fetch SQL
        reads at the opening statement's SCN), then the transaction
        snapshot (``SET TRANSACTION READ ONLY`` / SERIALIZABLE), then a
        fresh read-committed statement snapshot.  Returns None when
        ``snapshot_reads`` is off (bare current-mode reads).
        """
        if self._pinned_snapshot is not None:
            return self._pinned_snapshot
        if not self.snapshot_reads:
            return None
        txn = self.txns.current
        if txn is not None and txn.active and txn.snapshot is not None:
            return txn.snapshot
        txn_id = txn.txn_id if txn is not None and txn.active else None
        return self.engine.mvcc.take_snapshot(txn_id, kind="statement")

    @contextlib.contextmanager
    def _pin_snapshot(self, snapshot):
        """Scope in which all reads use ``snapshot`` (callback SQL)."""
        if snapshot is None:
            yield
            return
        prev = self._pinned_snapshot
        self._pinned_snapshot = snapshot
        try:
            yield
        finally:
            self._pinned_snapshot = prev

    def set_transaction(self, read_only: bool = False,
                        isolation: Optional[str] = None) -> None:
        """SET TRANSACTION: open a txn with a transaction-duration snapshot.

        ``READ ONLY`` and ``ISOLATION LEVEL SERIALIZABLE`` both pin one
        snapshot for the whole transaction (Oracle's transaction-level
        read consistency); READ ONLY additionally rejects DML.
        """
        self._bind()
        if self.txns.in_transaction and self.txns.current.undo_depth:
            raise TransactionError(
                "SET TRANSACTION must be the first statement of the "
                "transaction")
        txn = self.txns.ensure()
        txn.read_only = read_only
        level = (isolation or "").upper()
        if read_only or level == "SERIALIZABLE":
            txn.snapshot = self.engine.mvcc.take_snapshot(
                txn.txn_id, kind="transaction")
        else:
            txn.snapshot = None

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction."""
        self._bind()
        self.txns.begin()

    def commit(self) -> None:
        """Commit: discard undo, release locks, fire COMMIT events."""
        txn = self.txns.current
        if txn is None or not txn.active:
            return  # commit with no open transaction is a no-op
        # deferred maintenance flushes first, still inside the
        # transaction: a flush failure aborts the commit with undo (and
        # the affected indexes degraded) rather than after it
        self.dml.flush_deferred()
        # stamp this txn's row versions with the commit SCN, atomically
        # with respect to snapshot handout
        prune_due = self.engine.mvcc.commit_transaction(txn)
        # the durable ack point: the commit record is fsynced (group
        # commit batches it with concurrent sessions) before commit()
        # returns; read-only transactions skip the log entirely
        durability = self.engine.durability
        if durability is not None:
            durability.commit(txn)
        txn.commit()
        self.locks.release_all(txn.txn_id)
        self.events.fire(DatabaseEvent.COMMIT)
        if prune_due:
            self.engine.prune_versions()

    def rollback(self, savepoint: Optional[str] = None) -> None:
        """Roll back the open transaction (or to a savepoint)."""
        txn = self.txns.current
        if txn is None or not txn.active:
            if savepoint is not None:
                raise TransactionError("no transaction to roll back")
            return
        if savepoint is not None:
            # undo unwinding marks this span's deferred entries dead
            txn.rollback_to_savepoint(savepoint)
            return
        txn.rollback()  # undo closures log CLRs as they compensate
        durability = self.engine.durability
        if durability is not None:
            durability.abort(txn)
        self.dml.discard_deferred()
        self.locks.release_all(txn.txn_id)
        self.events.fire(DatabaseEvent.ROLLBACK)

    def savepoint(self, name: str) -> None:
        """Create a savepoint in the open transaction."""
        self.txns.ensure().savepoint(name)

    @property
    def in_transaction(self) -> bool:
        """True while an explicit or statement transaction is open."""
        return self.txns.in_transaction

    def _autocommit_ddl(self) -> None:
        # Oracle semantics: DDL implicitly commits the open transaction.
        if self.txns.in_transaction:
            self.commit()

    # ------------------------------------------------------------------
    # statement execution (delegates to the pipeline)
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Optional[Any] = None) -> Cursor:
        """Parse and execute one SQL statement through the pipeline.

        ``params`` supplies bind-variable values: a sequence for
        positional binds (``:1``, ``:2``, ...) or a mapping for named
        binds (``:rid``).  Repeated cacheable SELECT texts reuse their
        compiled plan from the engine's shared plan cache.
        """
        self._bind()
        return self._track(self.pipeline.execute(sql, params))

    def executemany(self, sql: str,
                    seq_of_params: Sequence[Any]) -> Cursor:
        """Execute ``sql`` once per parameter set, parsing only once.

        The array-DML entry point behind ``dbapi.Cursor.executemany``:
        plain ``INSERT ... VALUES`` batches run as a single maintained
        statement with one index-maintenance flush; other statements
        execute per set.  The returned cursor's ``rowcount`` is the
        exact total across all sets.
        """
        self._bind()
        return self._track(self.pipeline.executemany(sql, seq_of_params))

    def _track(self, cursor: Cursor) -> Cursor:
        self._open_cursors.add(cursor)
        return cursor

    def close(self) -> None:
        """End the session: close tracked cursors (abandoned domain-index
        scans fire ``ODCIIndexClose`` and return their workspace handles
        *before* the rollback releases locks), then roll back.  Idempotent;
        the shared engine stays up."""
        for cursor in list(self._open_cursors):
            try:
                cursor.close()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        self._open_cursors.clear()
        self.rollback()

    def query(self, sql: str,
              params: Optional[Any] = None) -> List[Tuple[Any, ...]]:
        """Execute a SELECT and return all rows.

        .. deprecated:: use ``execute(sql, params).fetchall()`` (or
           iterate the cursor) — one fetch protocol shared with
           :mod:`repro.dbapi`.
        """
        warnings.warn("Database.query is deprecated; use "
                      "execute(...).fetchall() — see docs/API.md",
                      DeprecationWarning, stacklevel=2)
        return self.execute(sql, params).fetchall()

    def query_one(self, sql: str,
                  params: Optional[Any] = None) -> Optional[Tuple[Any, ...]]:
        """Execute a SELECT and return the first row (or None).

        .. deprecated:: use ``execute(sql, params).fetchone()``.
        """
        warnings.warn("Database.query_one is deprecated; use "
                      "execute(...).fetchone() — see docs/API.md",
                      DeprecationWarning, stacklevel=2)
        with self.execute(sql, params) as cursor:
            return cursor.fetchone()

    def explain(self, sql: str, params: Optional[Any] = None) -> List[str]:
        """Return the EXPLAIN plan lines (plus a plan-cache status line)."""
        self._bind()
        return self.pipeline.explain_lines(sql, params)

    def execute_statement(self, statement: ast.Statement,
                          sql: str = "") -> Cursor:
        """Execute a parsed statement (entry point shared with callbacks)."""
        self._bind()
        return self._track(self.pipeline.execute_statement(statement, sql))

    # ------------------------------------------------------------------
    # direct-value DML (delegates to the DML engine)
    # ------------------------------------------------------------------

    def insert_row(self, table_name: str, values: Sequence[Any]) -> RowId:
        """Insert one row of Python values (bypasses the parser).

        Used by application code that holds non-literal values (rowids,
        object instances, LOB locators) — e.g. the legacy text baseline
        writing rowids to its temporary result table.
        """
        self._bind()
        return self.dml.insert_row(table_name, values)

    def insert_rows(self, table_name: str,
                    rows: Sequence[Sequence[Any]]) -> int:
        """Bulk :meth:`insert_row`; returns the number of rows inserted."""
        self._bind()
        return self.dml.insert_rows(table_name, rows)

    def direct_load(self, table_name: str,
                    rows: Sequence[Sequence[Any]],
                    presorted: bool = False) -> int:
        """Direct-path load of cartridge-built rows (no row validation).

        Falls back to :meth:`insert_rows` unless the table is empty with
        only empty bulk-loadable native indexes — the shape of an index
        data table being populated by ``ODCIIndexCreate``/REBUILD.
        ``presorted`` additionally promises strictly increasing key
        order for key-organized storage (skips the load-time sort).
        """
        self._bind()
        return self.dml.direct_load(table_name, rows, presorted=presorted)


class Database(Session):
    """Deprecated single-session facade: engine + default session.

    New code should use :func:`repro.dbapi.connect` (no DSN for
    in-memory, ``file:/path`` for durable) and reach the native
    surface through ``conn.session`` / ``conn.engine``.  Kept as a
    thin back-compat wrapper — every pre-split attribute
    (``db.catalog``, ``db.locks``, ...) still resolves via the
    session's delegating properties.
    """

    def __init__(self, buffer_capacity: int = 512,
                 fetch_batch_size: int = 32, **engine_options: Any):
        super().__init__(Engine(buffer_capacity=buffer_capacity,
                                fetch_batch_size=fetch_batch_size,
                                **engine_options))

    def connect(self, user: str = "main") -> Session:
        """Open another session against this database's engine."""
        return self.engine.connect(user)

    def close(self) -> None:
        """Shut the engine down cleanly (see :meth:`Engine.close`).

        Closes the default session's cursors and transaction first, so
        abandoned scans release their handles before the WAL's final
        checkpoint.
        """
        super().close()
        self.engine.close()
