"""The database session facade.

:class:`Database` ties the substrates together and fronts the staged
statement pipeline (:mod:`repro.sql.pipeline`).  The facade itself owns
only cross-cutting session state — users and privileges, tracing, ODCI
environments, and transaction control; statement processing is
delegated:

* **Parse → Bind → Plan → Execute** with the shared plan cache lives in
  :class:`~repro.sql.pipeline.StatementPipeline`;
* **DML + implicit domain-index maintenance**
  (``ODCIIndexInsert/Update/Delete`` fan-out, §2.4.1) lives in
  :class:`~repro.sql.dml.DMLEngine`;
* **DDL** (including ``ODCIIndexCreate/Alter/Truncate/Drop`` and the
  ODCIStats wiring of §2.4.2) lives in
  :class:`~repro.sql.ddl.DDLEngine`.

Transactions: DML runs inside a transaction (autocommit when none is
open); index data written through server callbacks shares the same
undo, so rollback restores base table and in-database index state
together (§2.5).  Commit/rollback fire registered database events (§5).
"""

from __future__ import annotations

import contextlib
from typing import (
    Any, Callable, List, Optional, Sequence, Tuple, Type)

from repro.core.callbacks import CallbackPhase, CallbackSession
from repro.core.dispatch import CallbackDispatcher
from repro.core.domain_index import DomainIndex
from repro.core.odci import IndexMethods, ODCIEnv
from repro.core.scan_context import Workspace
from repro.core.stats import StatsMethods
from repro.errors import PrivilegeError, TransactionError
from repro.sql import ast_nodes as ast
from repro.sql.builtins import register_builtins
from repro.sql.catalog import Catalog, SQLFunction, TableDef
from repro.sql.cursor import Cursor
from repro.sql.ddl import DDLEngine
from repro.sql.dml import DMLEngine
from repro.sql.executor import Executor
from repro.sql.expressions import Evaluator
from repro.sql.pipeline import StatementPipeline
from repro.sql.plan_cache import PlanCache
from repro.sql.planner import Planner
from repro.storage.buffer import BufferCache, IOStats
from repro.storage.filestore import FileStore
from repro.storage.heap import RowId
from repro.storage.lob import LobManager
from repro.txn.events import DatabaseEvent, EventManager
from repro.txn.locks import LockManager
from repro.txn.transaction import TransactionManager
from repro.types.datatypes import DataType
from repro.types.objects import ObjectType

__all__ = ["Cursor", "Database"]


class Database:
    """One in-process database instance (engine + catalog + framework)."""

    def __init__(self, buffer_capacity: int = 512,
                 fetch_batch_size: int = 32):
        self.stats = IOStats()
        self.buffer = BufferCache(self.stats, capacity=buffer_capacity)
        self.catalog = Catalog()
        self.locks = LockManager()
        self.lobs = LobManager(self.buffer, lock_manager=self.locks)
        self.files = FileStore(self.stats)
        self.txns = TransactionManager()
        self.events = EventManager()
        self.workspace = Workspace(self.stats)
        self.fetch_batch_size = fetch_batch_size
        #: current session user; "main" is the superuser/DBA
        self.session_user = "main"
        self.trace_log: Optional[List[str]] = None
        #: fault-isolation seam every ODCI callback routes through
        self.dispatcher = CallbackDispatcher(self)
        #: Oracle's SKIP_UNUSABLE_INDEXES session setting (default TRUE):
        #: DML skips maintenance of non-VALID domain indexes, and a
        #: maintenance failure degrades the index to UNUSABLE and retries
        #: the statement once, instead of failing it outright.
        self.skip_unusable_indexes = True
        self.planner = Planner(self.catalog, db=self)
        #: default bindless executor (planner subqueries, DML target rows)
        self.executor = Executor(self)
        self.evaluator = Evaluator(self.catalog)
        self.pipeline = StatementPipeline(self)
        self.dml = DMLEngine(self)
        self.ddl = DDLEngine(self)
        register_builtins(self.catalog)
        self.catalog.add_function(SQLFunction(
            name="varray", fn=lambda *args: tuple(args), cost=0.0001))
        from repro.sql.dictionary import dictionary_view
        self.catalog.view_provider = (
            lambda name: dictionary_view(self.catalog, name))

    @property
    def plan_cache(self) -> PlanCache:
        """The shared plan cache fronting the statement pipeline."""
        return self.pipeline.cache

    # ------------------------------------------------------------------
    # registration API (stands in for PL/SQL bodies; see DESIGN.md §5)
    # ------------------------------------------------------------------

    def create_function(self, name: str, fn: Callable[..., Any],
                        cost: float = 1.0) -> None:
        """Register a SQL-visible function backed by a Python callable.

        ``cost`` is the optimizer's per-call estimate in page-I/O units;
        give expensive domain functions a high cost so the §2.4.2
        functional-vs-index choice is meaningful.
        """
        self.catalog.add_function(SQLFunction(name=name.lower(), fn=fn,
                                              cost=cost))

    def register_methods(self, name: str, cls: Type[IndexMethods]) -> None:
        """Register an ODCIIndex implementation type (CREATE TYPE body)."""
        self.catalog.register_method_type(name, cls)

    def register_stats_type(self, name: str, cls: Type[StatsMethods]) -> None:
        """Register an ODCIStats implementation type."""
        self.catalog.register_stats_type(name, cls)

    def create_object_type(self, name: str,
                           attributes: Sequence[Tuple[str, DataType]]
                           ) -> ObjectType:
        """Create an object type and its SQL constructor function."""
        object_type = ObjectType(name, list(attributes))
        self.catalog.add_object_type(object_type)
        self.catalog.add_function(SQLFunction(
            name=name.lower(), fn=object_type.new, cost=0.0001))
        return object_type

    # ------------------------------------------------------------------
    # users and privileges (§2.5)
    # ------------------------------------------------------------------

    def set_user(self, name: str) -> None:
        """Switch the session user (any name; "main" is the superuser)."""
        self.session_user = name.lower()

    @contextlib.contextmanager
    def as_user(self, name: str):
        """Context manager running a block as another user.

        This is the definer-rights mechanism: indextype routines execute
        "under the privileges of the owner of the index" by wrapping
        their callbacks in ``db.as_user(index_owner)``.
        """
        previous = self.session_user
        self.session_user = name.lower()
        try:
            yield self
        finally:
            self.session_user = previous

    def _check_table_privilege(self, table: TableDef, privilege: str) -> None:
        user = self.session_user
        if user == "main" or table.owner == user:
            return
        if self.catalog.has_grant(user, table.key, privilege):
            return
        raise PrivilegeError(
            f"user {user!r} lacks {privilege.upper()} on {table.name} "
            f"(owner {table.owner!r})")

    def _check_table_ownership(self, table: TableDef, action: str) -> None:
        user = self.session_user
        if user != "main" and table.owner != user:
            raise PrivilegeError(
                f"user {user!r} cannot {action} {table.name} "
                f"(owner {table.owner!r})")

    # ------------------------------------------------------------------
    # tracing (architecture figure F1)
    # ------------------------------------------------------------------

    def enable_tracing(self) -> None:
        """Start recording framework call events into ``trace_log``."""
        self.trace_log = []

    def disable_tracing(self) -> None:
        """Stop recording framework call events."""
        self.trace_log = None

    def _trace(self, message: str) -> None:
        if self.trace_log is not None:
            self.trace_log.append(message)

    # ------------------------------------------------------------------
    # ODCI environments
    # ------------------------------------------------------------------

    def make_env(self, phase: CallbackPhase,
                 domain: Optional[DomainIndex] = None) -> ODCIEnv:
        """Build the ODCIEnv passed into cartridge routines."""
        base_table = domain.table_name if domain is not None else None
        definer = domain.owner if domain is not None else self.session_user
        callback = CallbackSession(self, phase, base_table=base_table,
                                   definer=definer)
        return ODCIEnv(callback=callback, workspace=self.workspace,
                       stats=self.stats, trace=self.trace_log,
                       invoker=self.session_user, definer=definer,
                       lobs=self.lobs, files=self.files, events=self.events)

    def make_stats_env(self, domain: Optional[DomainIndex] = None) -> ODCIEnv:
        """Environment for optimizer statistics routines (query-only).

        When the routine concerns a specific domain index, its callbacks
        run with the index owner's privileges (definer rights) so cost
        estimation can read the cartridge's index tables regardless of
        who issued the query.
        """
        return self.make_env(CallbackPhase.SCAN, domain)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction."""
        self.txns.begin()

    def commit(self) -> None:
        """Commit: discard undo, release locks, fire COMMIT events."""
        txn = self.txns.current
        if txn is None or not txn.active:
            return  # commit with no open transaction is a no-op
        txn.commit()
        self.locks.release_all(txn.txn_id)
        self.events.fire(DatabaseEvent.COMMIT)

    def rollback(self, savepoint: Optional[str] = None) -> None:
        """Roll back the open transaction (or to a savepoint)."""
        txn = self.txns.current
        if txn is None or not txn.active:
            if savepoint is not None:
                raise TransactionError("no transaction to roll back")
            return
        if savepoint is not None:
            txn.rollback_to_savepoint(savepoint)
            return
        txn.rollback()
        self.locks.release_all(txn.txn_id)
        self.events.fire(DatabaseEvent.ROLLBACK)

    def savepoint(self, name: str) -> None:
        """Create a savepoint in the open transaction."""
        self.txns.ensure().savepoint(name)

    @property
    def in_transaction(self) -> bool:
        """True while an explicit or statement transaction is open."""
        return self.txns.in_transaction

    def _autocommit_ddl(self) -> None:
        # Oracle semantics: DDL implicitly commits the open transaction.
        if self.txns.in_transaction:
            self.commit()

    # ------------------------------------------------------------------
    # statement execution (delegates to the pipeline)
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Optional[Any] = None) -> Cursor:
        """Parse and execute one SQL statement through the pipeline.

        ``params`` supplies bind-variable values: a sequence for
        positional binds (``:1``, ``:2``, ...) or a mapping for named
        binds (``:rid``).  Repeated cacheable SELECT texts reuse their
        compiled plan from the shared plan cache.
        """
        return self.pipeline.execute(sql, params)

    def query(self, sql: str,
              params: Optional[Any] = None) -> List[Tuple[Any, ...]]:
        """Execute a SELECT and return all rows."""
        return self.execute(sql, params).fetchall()

    def query_one(self, sql: str,
                  params: Optional[Any] = None) -> Optional[Tuple[Any, ...]]:
        """Execute a SELECT and return the first row (or None)."""
        rows = self.execute(sql, params).fetchall()
        return rows[0] if rows else None

    def explain(self, sql: str, params: Optional[Any] = None) -> List[str]:
        """Return the EXPLAIN plan lines (plus a plan-cache status line)."""
        return self.pipeline.explain_lines(sql, params)

    def execute_statement(self, statement: ast.Statement,
                          sql: str = "") -> Cursor:
        """Execute a parsed statement (entry point shared with callbacks)."""
        return self.pipeline.execute_statement(statement, sql)

    # ------------------------------------------------------------------
    # direct-value DML (delegates to the DML engine)
    # ------------------------------------------------------------------

    def insert_row(self, table_name: str, values: Sequence[Any]) -> RowId:
        """Insert one row of Python values (bypasses the parser).

        Used by application code that holds non-literal values (rowids,
        object instances, LOB locators) — e.g. the legacy text baseline
        writing rowids to its temporary result table.
        """
        return self.dml.insert_row(table_name, values)

    def insert_rows(self, table_name: str,
                    rows: Sequence[Sequence[Any]]) -> int:
        """Bulk :meth:`insert_row`; returns the number of rows inserted."""
        return self.dml.insert_rows(table_name, rows)
