"""DDL execution: tables, indexes, operators, indextypes, statistics.

:class:`DDLEngine` owns every schema-changing statement.  Domain-index
DDL drives the cartridge's definition routines
(``ODCIIndexCreate/Alter/Truncate/Drop``, §2.4.1); ``ASSOCIATE
STATISTICS`` and ``ANALYZE`` wire up and run the ODCIStats routines
(§2.4.2).

Plan-cache coherence: most handlers mutate the schema through catalog
mutators, which bump ``Catalog.version`` themselves.  Handlers that
change *plan-relevant* state in place — ALTER INDEX, TRUNCATE, ASSOCIATE
STATISTICS, ANALYZE — call ``catalog.bump_version()`` explicitly so
cached plans built against the old state are invalidated.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.callbacks import CallbackPhase
from repro.core.domain_index import DomainIndex, IndexState
from repro.core.indextype import Indextype, SupportedOperator
from repro.core.operators import Operator, OperatorBinding
from repro.errors import CallbackError, CatalogError, DatabaseError
from repro.index import BitmapIndex, BTree, HashIndex
from repro.sql import ast_nodes as ast
from repro.sql.catalog import (
    ColumnInfo, ColumnStats, IndexDef, TableDef, TableStats)
from repro.sql.cursor import Cursor
from repro.sql.dml import index_key
from repro.sql.expressions import Binder, Scope
from repro.storage.heap import HeapTable
from repro.storage.iot import IndexOrganizedTable
from repro.types.datatypes import DataType, type_from_name
from repro.types.objects import NestedTable, Varray
from repro.types.values import is_null


class DDLEngine:
    """Executes DDL statements against the catalog and the cartridges."""

    def __init__(self, db: Any):
        self.db = db

    def _checkpoint_barrier(self, reason: str = "ddl") -> None:
        """Durably record a schema change before the DDL returns.

        Catalog state travels in checkpoint snapshots, not WAL records,
        so every schema-mutating handler checkpoints on its way out.
        For TRUNCATE the barrier is load-bearing rather than merely
        prompt: the storage keeps its segment id, so pre-truncate WAL
        records still target the reused segment — the checkpoint
        advances the redo start point past them so they can never
        replay onto the fresh (page_lsn 0) pages.
        """
        durability = getattr(self.db.engine, "durability", None)
        if durability is not None:
            durability.checkpoint(reason=reason)

    def _ensure_methods(self, domain: DomainIndex) -> None:
        """Re-instantiate a restored domain index's methods object.

        Restart recovery nulls ``methods`` (the instances died with the
        old process); any DDL that drives a cartridge callback first
        rebuilds one from the re-registered indextype.
        """
        if domain.methods is None:
            indextype = self.db.catalog.get_indextype(domain.indextype_name)
            domain.methods = self.db.catalog.get_method_type(
                indextype.implementation_name)()

    # ------------------------------------------------------------------
    # type resolution helpers
    # ------------------------------------------------------------------

    def _column_datatype(self, col: ast.ColumnDef) -> DataType:
        if col.collection == "varray":
            return Varray(self._scalar_datatype(col.elem_type_name,
                                                col.elem_length),
                          limit=col.limit)
        if col.collection == "table":
            return NestedTable(self._scalar_datatype(col.elem_type_name,
                                                     col.elem_length))
        return self._scalar_datatype(col.type_name, col.length)

    def _scalar_datatype(self, type_name: Optional[str],
                         length: Optional[int]) -> DataType:
        name = (type_name or "").upper()
        if self.db.catalog.has_object_type(name):
            return self.db.catalog.get_object_type(name)
        return type_from_name(name, length)

    def _binding_types(self, raw: List[Tuple[str, Optional[int]]]
                       ) -> List[DataType]:
        return [self._scalar_datatype(name, length) for name, length in raw]

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------

    def execute_create_table(self, stmt: ast.CreateTable) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        if db.catalog.has_table(stmt.name):
            raise CatalogError(f"table {stmt.name} already exists")
        columns = [ColumnInfo(name=c.name.lower(),
                              datatype=self._column_datatype(c),
                              not_null=c.not_null or c.primary_key)
                   for c in stmt.columns]
        pk = [c.lower() for c in stmt.primary_key]
        if stmt.organization_index:
            if not pk:
                raise CatalogError(
                    "an index-organized table requires a primary key")
            leading = [c.name for c in columns[:len(pk)]]
            if leading != pk:
                raise CatalogError(
                    "IOT primary key columns must be the leading columns "
                    f"(got key {pk}, leading columns {leading})")
            storage: Any = IndexOrganizedTable(db.buffer,
                                               key_width=len(pk),
                                               name=stmt.name,
                                               unique=True)
        else:
            storage = HeapTable(db.buffer, name=stmt.name)
        table = TableDef(name=stmt.name, columns=columns, storage=storage,
                         primary_key=pk, is_iot=stmt.organization_index,
                         owner=db.session_user)
        db.catalog.add_table(table)
        self._checkpoint_barrier()
        return Cursor(rowcount=0)

    def execute_drop_table(self, stmt: ast.DropTable) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        if not db.catalog.has_table(stmt.name):
            if stmt.if_exists:
                return Cursor(rowcount=0)
            raise CatalogError(f"no such table {stmt.name!r}")
        table = db.catalog.get_table(stmt.name)
        db._check_table_ownership(table, "drop")
        for index in list(db.catalog.indexes_on(table.name)):
            self.drop_index_object(index, force=True)
        if isinstance(table.storage, HeapTable):
            db.buffer.drop_segment(table.storage.segment_id)
        else:
            table.storage.truncate()
            # IOTs bypass the buffer cache's drop path; tombstone the
            # durable dump directly or recovery would resurrect it
            durability = getattr(db.engine, "durability", None)
            if durability is not None:
                durability.segment_dropped(table.storage.segment_id)
        db.catalog.drop_table(stmt.name)
        self._checkpoint_barrier()
        return Cursor(rowcount=0)

    def execute_truncate(self, stmt: ast.TruncateTable) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        table = db.catalog.get_table(stmt.name)
        db._check_table_ownership(table, "truncate")
        table.storage.truncate()
        for index in db.catalog.indexes_on(table.name):
            if index.is_domain and index.domain is not None:
                domain = index.domain
                if domain.state is IndexState.FAILED:
                    # create never succeeded; there is nothing to empty
                    db._trace(f"ddl:truncate skip({index.name}) state=FAILED")
                    continue
                self._ensure_methods(domain)
                env = db.make_env(CallbackPhase.DEFINITION, domain)
                env.trace(f"ddl:ODCIIndexTruncate({index.name})")
                try:
                    db.dispatcher.call(
                        "ODCIIndexTruncate", domain.methods.index_truncate,
                        domain.index_info(), env,
                        index_name=index.name, phase="definition")
                except CallbackError as exc:
                    # degrade, don't die: the table is already truncated,
                    # so an UNUSABLE index just forces functional fallback
                    db.catalog.set_index_state(index.name,
                                               IndexState.UNUSABLE)
                    db._trace(f"ddl:truncate degrade({index.name}) -> "
                              f"UNUSABLE [{exc.routine}]")
                    continue
                if domain.state is IndexState.UNUSABLE:
                    # empty index + empty table are trivially consistent:
                    # a successful truncate restores the index (Oracle
                    # TRUNCATE resets unusable indexes the same way)
                    db.catalog.set_index_state(index.name, IndexState.VALID)
            elif index.structure is not None:
                index.structure.clear()
        db.catalog.bump_version()  # cardinality collapsed; cached plans stale
        self._checkpoint_barrier(reason="truncate")
        return Cursor(rowcount=0)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------

    def execute_create_index(self, stmt: ast.CreateIndex) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        if db.catalog.has_index(stmt.name):
            raise CatalogError(f"index {stmt.name} already exists")
        table = db.catalog.get_table(stmt.table)
        db._check_table_ownership(table, "index")
        columns = tuple(c.lower() for c in stmt.columns)
        for column in columns:
            table.column_position(column)  # validates existence
        if stmt.kind == "domain":
            return self._create_domain_index(stmt, table, columns)
        return self._create_native_index(stmt, table, columns)

    def _create_native_index(self, stmt: ast.CreateIndex, table: TableDef,
                             columns: Tuple[str, ...]) -> Cursor:
        db = self.db
        touch = lambda n: setattr(  # noqa: E731 - tiny counter hook
            db.stats, "logical_reads", db.stats.logical_reads + n)
        if stmt.kind == "btree":
            structure: Any = BTree(unique=stmt.unique, touch=touch)
        elif stmt.kind == "hash":
            structure = HashIndex(unique=stmt.unique, touch=touch)
        elif stmt.kind == "bitmap":
            structure = BitmapIndex(touch=touch)
        else:
            raise CatalogError(f"unknown index kind {stmt.kind!r}")
        index = IndexDef(name=stmt.name, table_name=table.name,
                         column_names=columns, kind=stmt.kind,
                         unique=stmt.unique, structure=structure)
        positions = [table.column_position(c) for c in columns]
        self._populate_native(table, structure, positions)
        db.catalog.add_index(index)
        self._checkpoint_barrier()
        return Cursor(rowcount=0)

    def _populate_native(self, table: TableDef, structure: Any,
                         positions: List[int]) -> None:
        """Load a native index structure from the table's current rows.

        Sorted bulk build when the structure supports it (B-trees) and
        ``bulk_index_build`` is on; per-row insertion otherwise.
        """
        db = self.db
        if (getattr(db, "bulk_index_build", True)
                and hasattr(structure, "bulk_load")):
            pairs = []
            for rowid, row in table.storage.scan():
                key = index_key(row, positions)
                if key is not None:
                    pairs.append((key, rowid))
            structure.bulk_load(pairs)
            return
        for rowid, row in table.storage.scan():
            key = index_key(row, positions)
            if key is not None:
                structure.insert(key, rowid)

    def _create_domain_index(self, stmt: ast.CreateIndex, table: TableDef,
                             columns: Tuple[str, ...]) -> Cursor:
        db = self.db
        indextype = db.catalog.get_indextype(stmt.indextype or "")
        methods_cls = db.catalog.get_method_type(
            indextype.implementation_name)
        column_types = tuple(table.column_info(c).datatype for c in columns)
        domain = DomainIndex(
            name=stmt.name, table_name=table.name, column_names=columns,
            column_types=column_types, indextype_name=indextype.name,
            parameters=stmt.parameters or "", methods=methods_cls(),
            state=IndexState.IN_PROGRESS, owner=db.session_user)
        # Catalog entry first (Oracle records the index before building
        # it): a failed ODCIIndexCreate leaves the index behind in the
        # FAILED state, where the only legal statement is DROP INDEX.
        index = IndexDef(name=stmt.name, table_name=table.name,
                         column_names=columns, kind="domain", domain=domain)
        db.catalog.add_index(index)
        # barrier: a crash mid-build must find IN_PROGRESS on disk so
        # recovery degrades it to FAILED, never resurrects it as VALID
        self._checkpoint_barrier(reason="domain-create")
        env = db.make_env(CallbackPhase.DEFINITION, domain)
        env.trace(f"ddl:ODCIIndexCreate({indextype.name}:{stmt.name})")
        try:
            db.dispatcher.call(
                "ODCIIndexCreate", domain.methods.index_create,
                domain.index_info(), stmt.parameters or "", env,
                index_name=stmt.name, phase="definition")
        except CallbackError:
            db.catalog.set_index_state(stmt.name, IndexState.FAILED)
            self._checkpoint_barrier(reason="domain-create")
            raise
        db.catalog.set_index_state(stmt.name, IndexState.VALID)
        self._checkpoint_barrier(reason="domain-create")
        return Cursor(rowcount=0)

    def execute_alter_index(self, stmt: ast.AlterIndex) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        index = db.catalog.get_index(stmt.name)
        if index.is_domain and index.domain is not None:
            domain = index.domain
            if stmt.unusable:
                # administrative degrade: no cartridge callback involved
                db.catalog.set_index_state(index.name, IndexState.UNUSABLE)
                db._trace(f"ddl:alter {index.name} UNUSABLE")
                self._checkpoint_barrier()
                return Cursor(rowcount=0)
            if domain.state is IndexState.FAILED:
                raise CatalogError(
                    f"index {index.name} is FAILED (create died); "
                    "only DROP INDEX is allowed")
            if stmt.rebuild:
                return self._rebuild_domain_index(index)
            self._ensure_methods(domain)
            env = db.make_env(CallbackPhase.DEFINITION, domain)
            env.trace(f"ddl:ODCIIndexAlter({index.name})")
            db.dispatcher.call(
                "ODCIIndexAlter", domain.methods.index_alter,
                domain.index_info(), stmt.parameters or "", env,
                index_name=index.name, phase="definition")
            if stmt.parameters is not None:
                domain.parameters = stmt.parameters
            db.catalog.bump_version()  # parameters can change scan behaviour
            self._checkpoint_barrier()
            return Cursor(rowcount=0)
        if stmt.unusable:
            raise CatalogError(
                f"index {index.name} is not a domain index; "
                "UNUSABLE applies to domain indexes only")
        if stmt.rebuild:
            table = db.catalog.get_table(index.table_name)
            index.structure.clear()
            positions = [table.column_position(c)
                         for c in index.column_names]
            self._populate_native(table, index.structure, positions)
            db.catalog.bump_version()
            self._checkpoint_barrier()
            return Cursor(rowcount=0)
        raise CatalogError(
            f"index {index.name} is not a domain index; only REBUILD applies")

    def _rebuild_domain_index(self, index: IndexDef) -> Cursor:
        """ALTER INDEX ... REBUILD on a domain index (§2.6 recovery).

        Drop + Create from the base table: the old index data is
        discarded via a best-effort ``ODCIIndexDrop`` (an UNUSABLE
        index's drop routine may itself fail — that must not block
        recovery), then ``ODCIIndexCreate`` rebuilds from the base
        table under ``IN_PROGRESS``.  Success restores ``VALID``;
        a failed rebuild leaves the index ``FAILED``.
        """
        db = self.db
        domain = index.domain
        self._ensure_methods(domain)
        db.catalog.set_index_state(index.name, IndexState.IN_PROGRESS)
        # barrier: crash mid-rebuild must recover as FAILED, never VALID
        self._checkpoint_barrier(reason="domain-rebuild")
        env = db.make_env(CallbackPhase.DEFINITION, domain)
        env.trace(f"ddl:rebuild({index.name})")
        try:
            db.dispatcher.call(
                "ODCIIndexDrop", domain.methods.index_drop,
                domain.index_info(), env,
                index_name=index.name, phase="definition")
        except CallbackError as exc:
            db._trace(f"ddl:rebuild({index.name}) drop phase failed, "
                      f"continuing [{exc.routine}]")
        env = db.make_env(CallbackPhase.DEFINITION, domain)
        env.trace(f"ddl:ODCIIndexCreate({domain.indextype_name}:"
                  f"{index.name})")
        try:
            db.dispatcher.call(
                "ODCIIndexCreate", domain.methods.index_create,
                domain.index_info(), domain.parameters, env,
                index_name=index.name, phase="definition")
        except CallbackError:
            db.catalog.set_index_state(index.name, IndexState.FAILED)
            self._checkpoint_barrier(reason="domain-rebuild")
            raise
        db.catalog.set_index_state(index.name, IndexState.VALID)
        self._checkpoint_barrier(reason="domain-rebuild")
        return Cursor(rowcount=0)

    def execute_drop_index(self, stmt: ast.DropIndex) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        index = db.catalog.get_index(stmt.name)
        self.drop_index_object(index, force=stmt.force)
        self._checkpoint_barrier()
        return Cursor(rowcount=0)

    def drop_index_object(self, index: IndexDef, force: bool) -> None:
        db = self.db
        if index.is_domain and index.domain is not None:
            try:
                self._ensure_methods(index.domain)
            except CatalogError:
                # the indextype was never re-registered after restart;
                # there is no cartridge state to drop in this process
                db.catalog.drop_index(index.name)
                return
            env = db.make_env(CallbackPhase.DEFINITION, index.domain)
            env.trace(f"ddl:ODCIIndexDrop({index.name})")
            try:
                db.dispatcher.call(
                    "ODCIIndexDrop", index.domain.methods.index_drop,
                    index.domain.index_info(), env,
                    index_name=index.name, phase="definition")
            except DatabaseError as exc:
                # DROP ... FORCE must win even when the cartridge's own
                # drop routine is broken — the catalog entry goes away
                # regardless (§2.6: FAILED indexes can always be dropped).
                if not force:
                    raise
                db._trace(f"ddl:drop force({index.name}) ignoring "
                          f"ODCIIndexDrop failure [{exc}]")
        db.catalog.drop_index(index.name)

    # ------------------------------------------------------------------
    # operators / indextypes / types / statistics
    # ------------------------------------------------------------------

    def execute_create_operator(self, stmt: ast.CreateOperator) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        bindings = []
        for raw in stmt.bindings:
            if not db.catalog.has_function(raw.function_name):
                raise CatalogError(
                    f"operator binding references unknown function "
                    f"{raw.function_name!r}; register it with "
                    "db.create_function first")
            bindings.append(OperatorBinding(
                arg_types=self._binding_types(raw.arg_types),
                return_type=self._scalar_datatype(raw.return_type, None),
                function_name=raw.function_name))
        operator = Operator(name=stmt.name, bindings=bindings,
                            ancillary_to=stmt.ancillary_to)
        db.catalog.add_operator(operator)
        return Cursor(rowcount=0)

    def execute_drop_operator(self, stmt: ast.DropOperator) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        operator = db.catalog.get_operator(stmt.name)
        users = [it.name for it in db.catalog.indextypes.values()
                 if it.supports(operator.name.split(".")[-1])]
        if users and not stmt.force:
            raise CatalogError(
                f"operator {operator.name} is supported by indextype(s) "
                f"{users}; use DROP OPERATOR ... FORCE")
        db.catalog.drop_operator(stmt.name)
        return Cursor(rowcount=0)

    def execute_create_indextype(self, stmt: ast.CreateIndextype) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        operators = []
        for raw in stmt.operators:
            if not db.catalog.has_operator(raw.name):
                # tolerate schema-qualified lookup
                binder = Binder(db.catalog, Scope([]))
                if binder.find_operator(raw.name) is None:
                    raise CatalogError(
                        f"indextype references unknown operator {raw.name!r}")
            operators.append(SupportedOperator(
                operator_name=raw.name.split(".")[-1],
                arg_types=tuple(self._binding_types(raw.arg_types))))
        # validates that the implementation type is registered
        db.catalog.get_method_type(stmt.using)
        indextype = Indextype(name=stmt.name, operators=operators,
                              implementation_name=stmt.using)
        db.catalog.add_indextype(indextype)
        return Cursor(rowcount=0)

    def execute_drop_indextype(self, stmt: ast.DropIndextype) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        if stmt.force:
            indextype = db.catalog.get_indextype(stmt.name)
            for index in list(db.catalog.indexes.values()):
                if index.is_domain and index.domain is not None and \
                        index.domain.indextype_name.lower() == indextype.key:
                    self.drop_index_object(index, force=True)
        db.catalog.drop_indextype(stmt.name)
        self._checkpoint_barrier()
        return Cursor(rowcount=0)

    def execute_create_type(self, stmt: ast.CreateType) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        attributes = [(a.name, self._column_datatype(a))
                      for a in stmt.attributes]
        db.create_object_type(stmt.name, attributes)
        return Cursor(rowcount=0)

    def execute_associate(self, stmt: ast.AssociateStatistics) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        db.catalog.get_stats_type(stmt.using)  # validates registration
        if stmt.kind == "indextypes":
            for name in stmt.names:
                db.catalog.get_indextype(name).stats_name = stmt.using
        else:
            for name in stmt.names:
                if not db.catalog.has_function(name):
                    raise CatalogError(f"no such function {name!r}")
                # the planner consults this for per-call function costs
                db.catalog.function_stats[name.lower()] = stmt.using
        # association changes cost estimates → cached plans are stale
        db.catalog.bump_version()
        return Cursor(rowcount=0)

    def execute_grant(self, stmt: ast.GrantStatement) -> Cursor:
        db = self.db
        db._autocommit_ddl()
        table = db.catalog.get_table(stmt.table)
        db._check_table_ownership(
            table, "revoke privileges on" if stmt.revoke
            else "grant privileges on")
        if stmt.revoke:
            db.catalog.revoke(stmt.grantee, table.key, stmt.privileges)
        else:
            db.catalog.grant(stmt.grantee, table.key, stmt.privileges)
        self._checkpoint_barrier()
        return Cursor(rowcount=0)

    def execute_analyze(self, stmt: ast.AnalyzeTable) -> Cursor:
        db = self.db
        table = db.catalog.get_table(stmt.name)
        stats = TableStats(row_count=table.storage.row_count,
                           page_count=table.storage.page_count,
                           analyzed=True)
        distinct: Dict[str, set] = {c.name: set() for c in table.columns}
        nulls: Dict[str, int] = {c.name: 0 for c in table.columns}
        mins: Dict[str, Any] = {}
        maxs: Dict[str, Any] = {}
        for __, row in table.storage.scan():
            for col, value in zip(table.columns, row):
                if is_null(value):
                    nulls[col.name] += 1
                    continue
                marker = value if isinstance(value, (int, float, str, bool)) \
                    else repr(value)
                distinct[col.name].add(marker)
                if isinstance(value, (int, float, str)) \
                        and not isinstance(value, bool):
                    if col.name not in mins or value < mins[col.name]:
                        mins[col.name] = value
                    if col.name not in maxs or value > maxs[col.name]:
                        maxs[col.name] = value
        for col in table.columns:
            stats.columns[col.name] = ColumnStats(
                ndv=len(distinct[col.name]), null_count=nulls[col.name],
                min_value=mins.get(col.name), max_value=maxs.get(col.name))
        table.stats = stats
        # ODCIStatsCollect for domain indexes with associated statistics
        for index in db.catalog.indexes_on(table.name):
            if not index.is_domain or index.domain is None:
                continue
            indextype = db.catalog.get_indextype(
                index.domain.indextype_name)
            if indextype.stats_name is None:
                continue
            stats_impl = db.catalog.get_stats_type(indextype.stats_name)()
            env = db.make_env(CallbackPhase.SCAN, index.domain)
            env.trace(f"analyze:ODCIStatsCollect({index.name})")
            # a broken statistics type must not abort ANALYZE: degrade
            # to "no domain stats collected" with a trace line
            collected = db.dispatcher.call_degraded(
                "ODCIStatsCollect", stats_impl.stats_collect,
                index.domain.index_info(), env,
                index_name=index.name, phase="definition")
            if collected is not None:
                db.catalog.domain_index_stats[index.key] = collected
        # fresh statistics change cost estimates → cached plans are stale
        db.catalog.bump_version()
        return Cursor(rowcount=0)
