"""Built-in SQL functions registered in every database's catalog."""

from __future__ import annotations

import math
from typing import Any

from repro.errors import ExecutionError
from repro.sql.catalog import Catalog, SQLFunction
from repro.types.values import NULL, is_null


def _null_safe(fn):
    """Wrap a function so any NULL argument yields NULL."""
    def wrapper(*args: Any) -> Any:
        if any(is_null(a) for a in args):
            return NULL
        return fn(*args)
    return wrapper


def _substr(value: str, start: int, length: Any = None) -> str:
    # Oracle semantics: 1-based; negative start counts from the end.
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = len(value) + start
    else:
        begin = 0
    if begin < 0:
        begin = 0
    if length is None:
        return value[begin:]
    if length <= 0:
        return ""
    return value[begin:begin + int(length)]


def _instr(haystack: str, needle: str, start: int = 1) -> int:
    pos = haystack.find(needle, max(0, int(start) - 1))
    return pos + 1


def _nvl(value: Any, default: Any) -> Any:
    return default if is_null(value) else value


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if not is_null(arg):
            return arg
    return NULL


def _round(value: float, digits: int = 0) -> float:
    result = round(value + 0.0, int(digits))
    return int(result) if digits <= 0 else result


def _to_number(value: Any) -> Any:
    try:
        if isinstance(value, str) and any(c in value for c in ".eE"):
            return float(value)
        return int(value)
    except (TypeError, ValueError):
        raise ExecutionError(f"cannot convert {value!r} to a number") from None


def register_builtins(catalog: Catalog) -> None:
    """Install the built-in scalar functions into ``catalog``."""
    cheap = 0.0001
    functions = {
        "upper": _null_safe(lambda s: str(s).upper()),
        "lower": _null_safe(lambda s: str(s).lower()),
        "length": _null_safe(lambda s: len(s)),
        "substr": _null_safe(_substr),
        "instr": _null_safe(_instr),
        "trim": _null_safe(lambda s: str(s).strip()),
        "ltrim": _null_safe(lambda s: str(s).lstrip()),
        "rtrim": _null_safe(lambda s: str(s).rstrip()),
        "replace": _null_safe(lambda s, a, b="": str(s).replace(a, b)),
        "concat": _null_safe(lambda a, b: f"{a}{b}"),
        "abs": _null_safe(abs),
        "mod": _null_safe(lambda a, b: a % b),
        "power": _null_safe(lambda a, b: a ** b),
        "sqrt": _null_safe(math.sqrt),
        "floor": _null_safe(lambda v: int(math.floor(v))),
        "ceil": _null_safe(lambda v: int(math.ceil(v))),
        "round": _null_safe(_round),
        "sign": _null_safe(lambda v: (v > 0) - (v < 0)),
        "least": _null_safe(min),
        "greatest": _null_safe(max),
        "to_number": _null_safe(_to_number),
        "to_char": _null_safe(lambda v: str(v)),
    }
    for name, fn in functions.items():
        catalog.add_function(SQLFunction(name=name, fn=fn, cost=cheap))
    # NVL/COALESCE must see NULLs, so they are registered unwrapped.
    catalog.add_function(SQLFunction(name="nvl", fn=_nvl, cost=cheap))
    catalog.add_function(SQLFunction(name="coalesce", fn=_coalesce, cost=cheap))
