"""DML execution and implicit index maintenance.

:class:`DMLEngine` owns the write side of the statement pipeline:
INSERT/UPDATE/DELETE execution, statement-level atomicity (each DML
statement runs under an implicit savepoint), and the paper's *implicit
domain-index maintenance* — every mutation of a table fans out to
``ODCIIndexInsert/Update/Delete`` on its domain indexes and to direct
structure maintenance on its native indexes, with undo records so
rollback restores base table and index state together (§2.4.1, §2.5).

Maintenance callbacks are dispatched through the
:class:`~repro.core.dispatch.CallbackDispatcher`, and a failed callback
triggers the degradation policy (§2.6 analogue): the statement's
savepoint rolls back base table *and* index undo together, then — under
the ``skip_unusable_indexes`` session setting (default on) — the failing
index is marked ``UNUSABLE`` (bumping the catalog version, which drops
cached plans pinned to it) and the statement is retried once, this time
skipping maintenance of the now-UNUSABLE index.  With the setting off
the statement simply fails, mirroring ORA-01502.

Maintenance is *batched per statement*: instead of one dispatcher
crossing per row per index, each statement accumulates its domain-index
entries in a :class:`MaintenanceQueue` and flushes once per index via
``ODCIIndex{Insert,Delete,Update}Batch`` (scalar-only cartridges are
served by the dispatcher's looping shim).  A mid-batch fault therefore
fails the statement exactly as a per-row fault did — the savepoint has
everything.  The opt-in ``deferred_index_maintenance`` session setting
extends the queue to transaction scope: entries flush at commit, or
earlier when a scan touches a table with pending entries
(read-your-writes).  ``batch_index_maintenance = False`` restores the
historical per-row dispatch, which the differential tests use to prove
both paths build identical indexes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.callbacks import CallbackPhase
from repro.core.domain_index import DomainIndex, IndexState
from repro.core.odci import IndexMethods
from repro.errors import (
    CallbackError, ConstraintError, ExecutionError, IndexUnusableError,
    TransactionError)
from repro.sql import ast_nodes as ast
from repro.sql import planner as pl
from repro.sql.binds import normalize_params
from repro.sql.catalog import TableDef
from repro.sql.cursor import Cursor
from repro.sql.expressions import Binder, RowContext, Scope
from repro.storage.heap import RowId
from repro.txn.locks import LockMode
from repro.types.values import NULL, is_null


def index_key(row: List[Any], positions: List[int]) -> Any:
    """The native-index key for ``row`` restricted to ``positions``.

    Returns None for rows with any NULL key column (NULL keys are not
    indexed, Oracle semantics); a bare value for single-column keys.
    """
    values = [row[p] for p in positions]
    if any(is_null(v) for v in values):
        return None
    return values[0] if len(values) == 1 else tuple(values)


def _structure_insert(structure, key, rowid) -> None:
    """Insert into a native index under its latch (snapshot scans probe
    these structures without locks)."""
    with structure.latch:
        structure.insert(key, rowid)


def _structure_delete(structure, key, rowid) -> None:
    """Delete from a native index under its latch."""
    with structure.latch:
        structure.delete(key, rowid)


#: queued-op list layout: [kind, rowid, old_vals, new_vals, alive]
_OP_ALIVE = 4

#: kind -> (batch routine, scalar routine, batch method, scalar method)
_BATCH_SPECS = {
    "insert": ("ODCIIndexInsertBatch", "ODCIIndexInsert",
               "index_insert_batch", "index_insert"),
    "delete": ("ODCIIndexDeleteBatch", "ODCIIndexDelete",
               "index_delete_batch", "index_delete"),
    "update": ("ODCIIndexUpdateBatch", "ODCIIndexUpdate",
               "index_update_batch", "index_update"),
}


class _IndexBatch:
    """One index's slice of a maintenance queue (FIFO, kind-tagged)."""

    __slots__ = ("index", "domain", "table_name", "ops")

    def __init__(self, index: Any, domain: DomainIndex, table_name: str):
        self.index = index
        self.domain = domain
        self.table_name = table_name
        #: [kind, rowid, old_vals, new_vals, alive] in arrival order
        self.ops: List[list] = []


class MaintenanceQueue:
    """Domain-index maintenance entries awaiting a batched flush.

    One queue per statement scope (nested callback DML gets its own
    level), or per transaction under ``deferred_index_maintenance``.
    Entries keep arrival order per index; the flush dispatches each
    contiguous same-kind run as one batch, so cross-kind ordering on a
    rowid (insert before delete, etc.) is preserved.
    """

    def __init__(self) -> None:
        #: index key -> _IndexBatch, in first-touch order
        self.batches: dict = {}

    def batch_for(self, index: Any, domain: DomainIndex,
                  table_name: str) -> _IndexBatch:
        batch = self.batches.get(index.key)
        if batch is None:
            batch = self.batches[index.key] = _IndexBatch(
                index, domain, table_name)
        return batch

    def add(self, index: Any, domain: DomainIndex, table_name: str,
            kind: str, rowid: Any, old_vals: Optional[list],
            new_vals: Optional[list]) -> list:
        op = [kind, rowid, old_vals, new_vals, True]
        self.batch_for(index, domain, table_name).ops.append(op)
        return op

    def pending_tables(self) -> set:
        """Lower-cased base-table names with at least one live entry."""
        return {batch.table_name.lower()
                for batch in self.batches.values()
                if any(op[_OP_ALIVE] for op in batch.ops)}


class DMLEngine:
    """Executes DML statements and maintains every index implicitly."""

    def __init__(self, db: Any):
        self.db = db
        self._stmt_depth = 0
        #: statement-scoped maintenance queues (a stack: callback DML
        #: issued from inside a flush gets its own level)
        self._queue_stack: List[MaintenanceQueue] = []
        #: transaction-scoped queue (``deferred_index_maintenance``)
        self._deferred: Optional[MaintenanceQueue] = None

    # ------------------------------------------------------------------
    # statement scope
    # ------------------------------------------------------------------

    def statement_transaction(self):
        """Open the statement scope: (txn, autocommit_flag).

        Every DML statement gets an implicit savepoint so a failure
        rolls back exactly that statement's changes (statement-level
        atomicity) while an enclosing explicit transaction survives.
        The depth counter keeps nested DML issued by maintenance
        callbacks from clobbering the outer statement's savepoint.
        """
        db = self.db
        if db.txns.in_transaction:
            txn, autocommit = db.txns.current, False
            if txn.read_only:
                raise TransactionError(
                    "cannot execute DML in a READ ONLY transaction")
        else:
            txn, autocommit = db.txns.begin(), True
        self._stmt_depth += 1
        txn.savepoint(f"__stmt_{self._stmt_depth}__")
        return txn, autocommit

    def finish(self, autocommit: bool, failed: bool = False) -> None:
        """Close the statement scope opened by :meth:`statement_transaction`."""
        db = self.db
        depth = self._stmt_depth
        self._stmt_depth -= 1
        if failed:
            txn = db.txns.current
            if txn is not None and txn.active:
                txn.rollback_to_savepoint(f"__stmt_{depth}__")
            if autocommit:
                db.rollback()
            return
        if autocommit:
            db.commit()

    def run_maintained(self, table: TableDef, body: Callable[[Any], Any]):
        """Run one DML statement body under the degradation policy.

        The table's X lock is taken *before* ``body(txn)`` runs, so the
        body may both select its targets and mutate them — UPDATE/DELETE
        plan their target rows inside the body, under the lock, which is
        what makes read-modify-write statements from concurrent sessions
        serialize instead of losing updates.  On a maintenance
        :class:`CallbackError` the statement savepoint has already
        rolled back base table and index undo together; then, when
        ``skip_unusable_indexes`` is on, the failing index degrades to
        ``UNUSABLE`` and the body runs once more (re-planning its
        targets against the restored data) with that index's maintenance
        skipped.  Any second failure — or any failure with the setting
        off — propagates.
        """
        db = self.db
        for attempt in (0, 1):
            txn, autocommit = self.statement_transaction()
            queue = MaintenanceQueue()
            self._queue_stack.append(queue)
            try:
                try:
                    db.locks.acquire(txn.txn_id, f"table:{table.key}",
                                     LockMode.EXCLUSIVE,
                                     timeout=getattr(db, "lock_timeout",
                                                     None))
                    # write-after-deferred-write: pending deferred
                    # entries for this table flush before new DML so the
                    # queue never interleaves two statements' entries
                    self.flush_deferred_for((table.name,))
                    result = body(txn)
                    if (getattr(db, "deferred_index_maintenance", False)
                            and not autocommit):
                        self._defer_queue(queue, txn)
                    else:
                        self._flush(queue)
                finally:
                    self._queue_stack.pop()
            except CallbackError as exc:
                self.finish(autocommit, failed=True)
                if (attempt == 0 and exc.phase == "maintenance"
                        and exc.index_name and db.skip_unusable_indexes
                        and db.catalog.has_index(exc.index_name)):
                    db.catalog.set_index_state(exc.index_name,
                                               IndexState.UNUSABLE)
                    db._trace(
                        f"dml:degrade index {exc.index_name} -> UNUSABLE; "
                        f"retrying statement [{exc.routine}]")
                    continue
                raise
            except Exception:
                self.finish(autocommit, failed=True)
                raise
            self.finish(autocommit)
            return result

    def _maintainable(self, index_name: str, domain: DomainIndex) -> bool:
        """Whether a domain index participates in maintenance right now.

        Non-VALID indexes are skipped under ``skip_unusable_indexes``
        (with a trace line); with the setting off the statement fails
        immediately (ORA-01502 analogue).
        """
        if domain.valid:
            return True
        if not self.db.skip_unusable_indexes:
            raise IndexUnusableError(index_name, domain.state.value)
        self.db._trace(f"dml:skip({index_name}) state={domain.state.value}")
        return False

    # ------------------------------------------------------------------
    # maintenance queue (array ODCI dispatch)
    # ------------------------------------------------------------------

    def _enqueue(self, index: Any, domain: DomainIndex, table: TableDef,
                 kind: str, rowid: Any, old_vals: Optional[list],
                 new_vals: Optional[list]) -> bool:
        """Queue one maintenance entry; False -> caller dispatches per-row.

        Per-row dispatch remains when ``batch_index_maintenance`` is off
        (the differential-test seed path) or no statement scope is open
        (direct ``maintain_*`` calls from outside ``run_maintained``).
        """
        if not getattr(self.db, "batch_index_maintenance", True):
            return False
        if not self._queue_stack:
            return False
        self._queue_stack[-1].add(index, domain, table.name, kind, rowid,
                                  old_vals, new_vals)
        self.db.dispatcher.maintenance_for(index.name).entries_queued += 1
        return True

    def _flush(self, queue: MaintenanceQueue) -> None:
        """Dispatch every queued entry, one batch per index per kind-run.

        Raises the first :class:`CallbackError` — the caller (statement
        scope or deferred-flush policy) owns rollback and degradation.
        Indexes that degraded (or were dropped) after their entries were
        queued are skipped: their entries are moot once the index is no
        longer VALID.
        """
        if not queue.batches:
            return
        db = self.db
        for key in list(queue.batches):
            batch = queue.batches[key]
            ops = [op for op in batch.ops if op[_OP_ALIVE]]
            if ops:
                domain = batch.domain
                if not domain.valid or not db.catalog.has_index(
                        batch.index.name):
                    db._trace(f"dml:skip({batch.index.name}) "
                              f"state={domain.state.value}")
                else:
                    self._flush_index(batch.index, domain, ops)
            del queue.batches[key]

    def _flush_index(self, index: Any, domain: DomainIndex,
                     ops: List[list]) -> None:
        db = self.db
        env = db.make_env(CallbackPhase.MAINTENANCE, domain)
        methods = domain.methods
        ia = domain.index_info()
        methods_type = type(methods)
        n = len(ops)
        start = 0
        while start < n:
            kind = ops[start][0]
            end = start
            while end < n and ops[end][0] == kind:
                end += 1
            run = ops[start:end]
            start = end
            batch_routine, scalar_routine, batch_attr, scalar_attr = \
                _BATCH_SPECS[kind]
            native = (getattr(methods_type, batch_attr)
                      is not getattr(IndexMethods, batch_attr))
            if kind == "insert":
                entries = [(op[1], op[3]) for op in run]
            elif kind == "delete":
                entries = [(op[1], op[2]) for op in run]
            else:
                entries = [(op[1], op[2], op[3]) for op in run]
            if env.trace_enabled:
                # per-entry lines record the logical maintenance events
                # (the architecture-figure trace); the batch marker
                # records the physical dispatch
                for __ in entries:
                    env.trace(f"dml:{scalar_routine}({index.name})")
                env.trace(f"dml:{batch_routine}({index.name})"
                          f"[n={len(entries)}, "
                          f"{'native' if native else 'shim'}]")
            fn = getattr(methods, batch_attr if native else scalar_attr)
            db.dispatcher.call_batch(
                batch_routine, scalar_routine, fn, ia, entries, env,
                native=native, index_name=index.name, phase="maintenance")

    # -- transaction-scoped (deferred) maintenance ----------------------

    def _defer_queue(self, queue: MaintenanceQueue, txn: Any) -> None:
        """Move a finished statement's entries to the transaction queue.

        Each migrated op records an undo action that marks it dead, so
        ``ROLLBACK`` / ``ROLLBACK TO SAVEPOINT`` discards exactly the
        entries whose base-row changes it undoes.
        """
        deferred = self._deferred
        if deferred is None:
            deferred = self._deferred = MaintenanceQueue()
        for batch in queue.batches.values():
            target = deferred.batch_for(batch.index, batch.domain,
                                        batch.table_name)
            for op in batch.ops:
                if not op[_OP_ALIVE]:
                    continue
                target.ops.append(op)
                txn.record_undo(lambda o=op: o.__setitem__(_OP_ALIVE,
                                                           False))
        queue.batches.clear()

    def has_deferred(self) -> bool:
        """Whether transaction-scoped maintenance entries are pending."""
        return (self._deferred is not None
                and bool(self._deferred.pending_tables()))

    def flush_deferred_for(self, table_names) -> None:
        """Read-your-writes: flush before a scan of an affected table.

        A scan that could use a domain index with queued (unapplied)
        entries would miss this transaction's own writes; flushing the
        whole transaction queue first preserves cross-index ordering.
        """
        deferred = self._deferred
        if deferred is None:
            return
        pending = deferred.pending_tables()
        if pending and any(str(name).lower() in pending
                           for name in table_names):
            self.flush_deferred()

    def flush_deferred(self) -> None:
        """Flush the transaction queue (commit time or read-your-writes).

        The queue is detached before dispatch (reentrancy: callbacks
        issue their own SQL).  A failing flush marks every index that
        still had pending entries UNUSABLE before re-raising — the
        transaction stays open for the caller to roll back, and even a
        commit-anyway cannot leave a silently stale index behind.
        """
        deferred = self._deferred
        self._deferred = None
        if deferred is None or not deferred.batches:
            return
        db = self.db
        try:
            self._flush(deferred)
        except CallbackError:
            for batch in deferred.batches.values():
                name = batch.index.name
                if (any(op[_OP_ALIVE] for op in batch.ops)
                        and db.catalog.has_index(name)):
                    db.catalog.set_index_state(name, IndexState.UNUSABLE)
                    db._trace(f"dml:degrade index {name} -> UNUSABLE; "
                              f"deferred flush failed")
            raise

    def discard_deferred(self) -> None:
        """Drop pending entries (transaction rollback discards them)."""
        self._deferred = None

    # ------------------------------------------------------------------
    # row validation / physical insert
    # ------------------------------------------------------------------

    def validate_row(self, table: TableDef, row: List[Any]) -> List[Any]:
        out = []
        for col, value in zip(table.columns, row):
            validated = col.datatype.validate(value)
            if col.not_null and is_null(validated):
                raise ConstraintError(
                    f"column {table.name}.{col.name} is NOT NULL")
            out.append(validated)
        return out

    def insert_row(self, table_name: str, values: Sequence[Any]) -> RowId:
        """Insert one row of Python values (bypasses the parser).

        Used by application code that holds non-literal values (rowids,
        object instances, LOB locators) — e.g. the legacy text baseline
        writing rowids to its temporary result table.
        """
        db = self.db
        table = db.catalog.get_table(table_name)
        db._check_table_privilege(table, "insert")
        if len(values) != len(table.columns):
            raise ExecutionError(
                f"{table.name} has {len(table.columns)} columns, "
                f"got {len(values)} values")
        return self.run_maintained(
            table,
            lambda txn: self.insert_physical(table, list(values), txn))

    def insert_rows(self, table_name: str,
                    rows: Sequence[Sequence[Any]]) -> int:
        """Bulk :meth:`insert_row`; returns the number of rows inserted."""
        db = self.db
        table = db.catalog.get_table(table_name)
        db._check_table_privilege(table, "insert")

        def body(txn) -> int:
            bulk = self._bulk_load_plan(table, len(rows))
            if bulk is not None:
                return self._insert_bulk(table, rows, bulk, txn)
            for values in rows:
                if len(values) != len(table.columns):
                    raise ExecutionError(
                        f"{table.name} has {len(table.columns)} columns, "
                        f"got {len(values)} values")
                self.insert_physical(table, list(values), txn)
            return len(rows)

        return self.run_maintained(table, body)

    def direct_load(self, table_name: str,
                    rows: Sequence[Sequence[Any]],
                    presorted: bool = False) -> int:
        """Direct-path load: bulk-append ``rows`` without row validation.

        The analogue of Oracle's direct-path insert for index data
        tables: the caller (a cartridge's ``ODCIIndexCreate``/REBUILD
        routine) constructed the rows itself from already-validated
        base-table values, so the per-row type-coercion pass of the
        conventional path is skipped.  Only applies when the bulk-load
        plan does (empty storage, empty bulk-loadable native indexes);
        any other shape falls back to :meth:`insert_rows`, which
        validates normally.
        """
        db = self.db
        table = db.catalog.get_table(table_name)
        if self._bulk_load_plan(table, len(rows)) is None:
            return self.insert_rows(table_name, rows)
        db._check_table_privilege(table, "insert")

        def body(txn) -> int:
            bulk = self._bulk_load_plan(table, len(rows))
            if bulk is None:  # raced with another writer: conventional path
                for values in rows:
                    self.insert_physical(table, list(values), txn)
                return len(rows)
            return self._insert_bulk(table, rows, bulk, txn,
                                     validate=False, presorted=presorted)

        return self.run_maintained(table, body)

    def _bulk_load_plan(self, table: TableDef, n_rows: int):
        """The bulk-append plan for loading ``table``, or None.

        Bulk loading applies to empty storage whose indexes are all
        empty bulk-loadable native structures — the shape of a freshly
        created index data table (text IOT, spatial tiles, VIR coarse
        table) being populated by ``ODCIIndexCreate``/REBUILD.  Domain
        indexes, populated tables, and the ``bulk_index_build = False``
        seed path all take the per-row route.
        """
        db = self.db
        if n_rows < 2 or not getattr(db, "bulk_index_build", True):
            return None
        storage = table.storage
        if not hasattr(storage, "insert_bulk") or storage.row_count != 0:
            return None
        versions = getattr(storage, "versions", None)
        if versions is not None and not versions.clean:
            # version chains from prior DML may still be visible to live
            # snapshots; the one-undo-per-structure load can't honor them
            return None
        native = []
        for index in db.catalog.indexes_on(table.name):
            structure = index.structure
            if (index.is_domain or structure is None
                    or not hasattr(structure, "bulk_load")
                    or structure.entry_count != 0):
                return None
            positions = [table.column_position(c)
                         for c in index.column_names]
            native.append((structure, positions))
        return native

    def _insert_bulk(self, table: TableDef, rows: Sequence[Sequence[Any]],
                     native: list, txn, validate: bool = True,
                     presorted: bool = False) -> int:
        """Bulk-append ``rows`` and bottom-up-build the native indexes.

        One undo record per structure instead of one per row; rollback
        restores the empty pre-load state (the plan above guarantees
        storage and indexes started empty).  ``validate=False`` is the
        direct-path contract: rows were built by a cartridge from
        already-validated values, so only the column arity is checked.
        """
        n_cols = len(table.columns)
        if validate:
            # column-major validator hoist: one attribute-lookup pass over
            # the schema instead of one per value
            validators = [(col.datatype.validate, col.not_null, col.name)
                          for col in table.columns]
            validated = []
            for values in rows:
                if len(values) != n_cols:
                    raise ExecutionError(
                        f"{table.name} has {n_cols} columns, "
                        f"got {len(values)} values")
                row = []
                for (check, not_null, cname), value in zip(validators,
                                                           values):
                    value = check(value)
                    if not_null and is_null(value):
                        raise ConstraintError(
                            f"column {table.name}.{cname} is NOT NULL")
                    row.append(value)
                validated.append(row)
        else:
            # no per-row copy: both storages copy on write (heap pages
            # copy the row, the IOT splits it into fresh key/payload)
            validated = rows if isinstance(rows, list) else list(rows)
            if set(map(len, validated)) - {n_cols}:
                raise ExecutionError(
                    f"{table.name} direct load: rows must all have "
                    f"{n_cols} values")
        storage = table.storage
        versions = getattr(storage, "versions", None)
        if versions is not None:
            # one fence version covers the whole load: snapshots older
            # than this txn's commit see none of the bulk rows
            fence = versions.set_fence(txn)
            txn.track_version(fence)
            txn.record_undo(lambda: versions.drop_fence(fence))
        rowids = storage.insert_bulk(validated, with_rowids=bool(native),
                                     presorted=presorted)
        durability = self.db.engine.durability
        if durability is None:
            txn.record_undo(lambda s=storage: s.truncate())
        else:
            # one WAL record for the whole load; its undo (and CLR) is a
            # truncate, valid because the plan guaranteed empty storage
            prev = durability.log_bulk(
                txn, table.key, storage, validated,
                None if table.is_iot else rowids)
            txn.record_undo(durability.wrap_undo(
                lambda s=storage: s.truncate(), txn, table.key, storage,
                "truncate", None, None, None, prev))
        for structure, positions in native:
            pairs = []
            for rowid, row in zip(rowids, validated):
                key = index_key(row, positions)
                if key is not None:
                    pairs.append((key, rowid))
            with structure.latch:
                structure.bulk_load(pairs)
            txn.record_undo(lambda s=structure: s.clear())
        return len(validated)

    def _record_version(self, storage, rowid, new_value, old_value,
                        txn) -> None:
        """Chain an uncommitted row version (MVCC write path).

        Must run *before* the slot/tree mutates: a snapshot reader that
        races the write resolves through the chain, never through the
        raw slot.  The pop is recorded as undo so statement savepoints
        and rollback unlink exactly the versions they undo.
        """
        versions = getattr(storage, "versions", None)
        if versions is None:
            return
        version = versions.push(rowid, new_value, old_value, txn)
        txn.track_version(version)
        txn.record_undo(lambda: versions.pop(rowid, version))
        self.db.engine.mvcc.stats.versions_created += 1

    def _durable_undo(self, txn, table: TableDef, op: str, rowid,
                      old, new, action) -> None:
        """Register a row change's undo; with durability on, first log
        the change to the WAL and wrap the undo so running it writes a
        compensation record (CLR).

        Called *after* the storage mutation: the WAL rule only requires
        the log durable before a page image is, which the checkpoint
        enforces — and logging after the mutation means a fuzzy
        checkpoint can never stamp a page with an LSN whose change it
        does not contain.
        """
        durability = self.db.engine.durability
        if durability is None:
            txn.record_undo(action)
            return
        storage = table.storage
        # IOT rows are logged logically (surrogate rowids die with the
        # process); heap rows physiologically by (segment, page, slot)
        rid = None if table.is_iot else rowid
        prev = durability.log_row(txn, table.key, storage, op, rid,
                                  old, new)
        if op == "insert":
            comp_op, comp_old, comp_new = "delete", new, None
        elif op == "update":
            comp_op, comp_old, comp_new = "update", new, old
        else:
            comp_op, comp_old, comp_new = "insert", None, old
        txn.record_undo(durability.wrap_undo(
            action, txn, table.key, storage, comp_op, rid,
            comp_old, comp_new, prev))

    def insert_physical(self, table: TableDef, row: List[Any], txn) -> RowId:
        row = self.validate_row(table, row)
        storage = table.storage
        if getattr(storage, "versions", None) is not None:
            rowid = storage.insert(
                row, on_rowid=lambda rid: self._record_version(
                    storage, rid, list(row), None, txn))
        else:
            rowid = storage.insert(row)
        self._durable_undo(txn, table, "insert", rowid, None, list(row),
                           lambda: storage.delete(rowid))
        self.maintain_insert(table, rowid, row, txn)
        return rowid

    # ------------------------------------------------------------------
    # implicit index maintenance (ODCIIndexInsert/Update/Delete fan-out)
    # ------------------------------------------------------------------

    def maintain_insert(self, table: TableDef, rowid: RowId,
                        row: List[Any], txn) -> None:
        db = self.db
        for index in db.catalog.indexes_on(table.name):
            if index.is_domain and index.domain is not None:
                domain = index.domain
                if not self._maintainable(index.name, domain):
                    continue
                values = [row[table.column_position(c)]
                          for c in index.column_names]
                if self._enqueue(index, domain, table, "insert", rowid,
                                 None, values):
                    continue
                env = db.make_env(CallbackPhase.MAINTENANCE, domain)
                if env.trace_enabled:
                    env.trace(f"dml:ODCIIndexInsert({index.name})")
                db.dispatcher.call(
                    "ODCIIndexInsert", domain.methods.index_insert,
                    domain.index_info(), rowid, values, env,
                    index_name=index.name, phase="maintenance")
                continue
            structure = index.structure
            positions = [table.column_position(c)
                         for c in index.column_names]
            key = index_key(row, positions)
            if key is None:
                continue
            _structure_insert(structure, key, rowid)
            txn.record_undo(
                lambda s=structure, k=key, r=rowid: _structure_delete(
                    s, k, r))

    def maintain_delete(self, table: TableDef, rowid: RowId,
                        row: List[Any], txn) -> None:
        db = self.db
        for index in db.catalog.indexes_on(table.name):
            if index.is_domain and index.domain is not None:
                domain = index.domain
                if not self._maintainable(index.name, domain):
                    continue
                values = [row[table.column_position(c)]
                          for c in index.column_names]
                if self._enqueue(index, domain, table, "delete", rowid,
                                 values, None):
                    continue
                env = db.make_env(CallbackPhase.MAINTENANCE, domain)
                if env.trace_enabled:
                    env.trace(f"dml:ODCIIndexDelete({index.name})")
                db.dispatcher.call(
                    "ODCIIndexDelete", domain.methods.index_delete,
                    domain.index_info(), rowid, values, env,
                    index_name=index.name, phase="maintenance")
                continue
            structure = index.structure
            positions = [table.column_position(c)
                         for c in index.column_names]
            key = index_key(row, positions)
            if key is None:
                continue
            _structure_delete(structure, key, rowid)
            txn.record_undo(
                lambda s=structure, k=key, r=rowid: _structure_insert(
                    s, k, r))

    def maintain_update(self, table: TableDef, rowid: RowId,
                        old_row: List[Any], new_row: List[Any],
                        txn) -> None:
        db = self.db
        for index in db.catalog.indexes_on(table.name):
            positions = [table.column_position(c)
                         for c in index.column_names]
            old_vals = [old_row[p] for p in positions]
            new_vals = [new_row[p] for p in positions]
            if index.is_domain and index.domain is not None:
                if old_vals == new_vals:
                    continue  # indexed columns unchanged
                domain = index.domain
                if not self._maintainable(index.name, domain):
                    continue
                if self._enqueue(index, domain, table, "update", rowid,
                                 old_vals, new_vals):
                    continue
                env = db.make_env(CallbackPhase.MAINTENANCE, domain)
                if env.trace_enabled:
                    env.trace(f"dml:ODCIIndexUpdate({index.name})")
                db.dispatcher.call(
                    "ODCIIndexUpdate", domain.methods.index_update,
                    domain.index_info(), rowid, old_vals, new_vals, env,
                    index_name=index.name, phase="maintenance")
                continue
            structure = index.structure
            old_key = index_key(old_row, positions)
            new_key = index_key(new_row, positions)
            if old_key == new_key:
                continue
            if old_key is not None:
                _structure_delete(structure, old_key, rowid)
                txn.record_undo(
                    lambda s=structure, k=old_key, r=rowid:
                    _structure_insert(s, k, r))
            if new_key is not None:
                _structure_insert(structure, new_key, rowid)
                txn.record_undo(
                    lambda s=structure, k=new_key, r=rowid:
                    _structure_delete(s, k, r))

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def execute_insert(self, stmt: ast.Insert) -> Cursor:
        db = self.db
        table = db.catalog.get_table(stmt.table)
        db._check_table_privilege(table, "insert")
        column_order = [c.lower() for c in stmt.columns] \
            if stmt.columns else [c.name for c in table.columns]
        positions = [table.column_position(c) for c in column_order]

        def build_row(values: List[Any]) -> List[Any]:
            if len(values) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, "
                    f"got {len(values)}")
            row: List[Any] = [NULL] * len(table.columns)
            for pos, value in zip(positions, values):
                row[pos] = value
            return row

        rows_to_insert: List[List[Any]] = []
        if stmt.select is not None:
            for out in db.pipeline.run_select(stmt.select):
                rows_to_insert.append(build_row(list(out)))
        else:
            empty = RowContext()
            for value_row in stmt.rows:
                binder = Binder(db.catalog, Scope([]))
                values = [db.evaluator.evaluate(binder.bind(e), empty)
                          for e in value_row]
                rows_to_insert.append(build_row(values))

        def body(txn) -> int:
            for row in rows_to_insert:
                self.insert_physical(table, list(row), txn)
            return len(rows_to_insert)

        return Cursor(rowcount=self.run_maintained(table, body))

    def execute_insert_many(self, stmt: ast.Insert,
                            param_sets: List[Any]) -> Cursor:
        """Array INSERT: one parse, one statement scope, one flush.

        The ``executemany`` fast path for ``INSERT ... VALUES`` whose
        row expressions are plain binds/literals: the VALUES template is
        resolved once, each parameter set instantiates it, and the whole
        batch runs as a single maintained statement — so index
        maintenance flushes once per index for the entire batch, and the
        batch is atomic (a failing set rolls back every set, like Oracle
        array DML without SAVE EXCEPTIONS).
        """
        db = self.db
        table = db.catalog.get_table(stmt.table)
        db._check_table_privilege(table, "insert")
        column_order = [c.lower() for c in stmt.columns] \
            if stmt.columns else [c.name for c in table.columns]
        positions = [table.column_position(c) for c in column_order]
        n_cols = len(table.columns)

        empty = RowContext()
        binder = Binder(db.catalog, Scope([]))
        # per-cell resolvers: a bind key, or a once-evaluated constant
        templates = []
        for value_row in stmt.rows:
            if len(value_row) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, "
                    f"got {len(value_row)}")
            cells = []
            for expr in value_row:
                if isinstance(expr, ast.BindParam):
                    cells.append((expr.name.lower(), None))
                else:
                    cells.append((None, db.evaluator.evaluate(
                        binder.bind(expr), empty)))
            templates.append(cells)

        rows_to_insert: List[List[Any]] = []
        for params in param_sets:
            values_map = normalize_params(params)
            for cells in templates:
                row: List[Any] = [NULL] * n_cols
                for pos, (bind_key, const) in zip(positions, cells):
                    if bind_key is None:
                        row[pos] = const
                    elif bind_key in values_map:
                        row[pos] = values_map[bind_key]
                    else:
                        raise ExecutionError(
                            f"no value supplied for bind :{bind_key}")
                rows_to_insert.append(row)

        def body(txn) -> int:
            for row in rows_to_insert:
                self.insert_physical(table, list(row), txn)
            return len(rows_to_insert)

        return Cursor(rowcount=self.run_maintained(table, body))

    def plan_target_rows(self, table: TableDef, binding: str,
                         where: Optional[ast.Expr]
                         ) -> List[Tuple[RowId, RowContext]]:
        db = self.db
        select = ast.Select(
            items=[ast.SelectItem(ast.Star())],
            tables=[ast.TableRef(name=table.name, alias=binding)],
            where=where)
        plan = db.planner.plan_select(select)
        node = plan.root
        while isinstance(node, (pl.ProjectNode, pl.DistinctNode,
                                pl.LimitNode, pl.SortNode)):
            node = node.child
        # materialize fully before mutating (Halloween-problem avoidance)
        return [(ctx.rowids[binding], ctx)
                for ctx in db.executor.iter_node(node)]

    def execute_update(self, stmt: ast.Update) -> Cursor:
        db = self.db
        table = db.catalog.get_table(stmt.table)
        db._check_table_privilege(table, "update")
        binding = (stmt.alias or stmt.table).lower()
        scope = Scope([(binding, table)])
        binder = Binder(db.catalog, scope)
        where = stmt.where
        if where is not None:
            where = binder.bind(db.planner.materialize_subqueries(where))
        assignments = [(table.column_position(col), binder.bind(expr))
                       for col, expr in stmt.assignments]

        def body(txn) -> int:
            # target selection runs under the table X lock taken by
            # run_maintained: SET expressions see current values, and
            # concurrent read-modify-write UPDATEs serialize (no lost
            # updates); materialized fully before mutating (Halloween)
            targets = self.plan_target_rows(table, binding, where)
            count = 0
            for rowid, ctx in targets:
                old_row = table.storage.fetch_or_none(rowid)
                if old_row is None:
                    continue
                new_row = list(old_row)
                for pos, expr in assignments:
                    new_row[pos] = db.evaluator.evaluate(expr, ctx)
                new_row = self.validate_row(table, new_row)
                storage = table.storage
                old_copy = list(old_row)
                self._record_version(storage, rowid, list(new_row),
                                     old_copy, txn)
                storage.update(rowid, new_row)
                self._durable_undo(
                    txn, table, "update", rowid, old_copy, list(new_row),
                    lambda s=storage, r=rowid, o=old_copy: s.update(r, o))
                self.maintain_update(table, rowid, old_copy, new_row, txn)
                count += 1
            return count

        return Cursor(rowcount=self.run_maintained(table, body))

    def execute_delete(self, stmt: ast.Delete) -> Cursor:
        db = self.db
        table = db.catalog.get_table(stmt.table)
        db._check_table_privilege(table, "delete")
        binding = (stmt.alias or stmt.table).lower()
        scope = Scope([(binding, table)])
        binder = Binder(db.catalog, scope)
        where = stmt.where
        if where is not None:
            where = binder.bind(db.planner.materialize_subqueries(where))

        def body(txn) -> int:
            # targets planned under the table X lock (see execute_update)
            targets = self.plan_target_rows(table, binding, where)
            count = 0
            for rowid, __ in targets:
                old_row = table.storage.fetch_or_none(rowid)
                if old_row is None:
                    continue
                storage = table.storage
                old_copy = list(old_row)
                self._record_version(storage, rowid, None, old_copy, txn)
                storage.delete(rowid)
                self._durable_undo(
                    txn, table, "delete", rowid, old_copy, None,
                    lambda s=storage, r=rowid, o=old_copy: s.undelete(r, o))
                self.maintain_delete(table, rowid, old_copy, txn)
                count += 1
            return count

        return Cursor(rowcount=self.run_maintained(table, body))
