"""DML execution and implicit index maintenance.

:class:`DMLEngine` owns the write side of the statement pipeline:
INSERT/UPDATE/DELETE execution, statement-level atomicity (each DML
statement runs under an implicit savepoint), and the paper's *implicit
domain-index maintenance* — every mutation of a table fans out to
``ODCIIndexInsert/Update/Delete`` on its domain indexes and to direct
structure maintenance on its native indexes, with undo records so
rollback restores base table and index state together (§2.4.1, §2.5).

Maintenance callbacks are dispatched through the
:class:`~repro.core.dispatch.CallbackDispatcher`, and a failed callback
triggers the degradation policy (§2.6 analogue): the statement's
savepoint rolls back base table *and* index undo together, then — under
the ``skip_unusable_indexes`` session setting (default on) — the failing
index is marked ``UNUSABLE`` (bumping the catalog version, which drops
cached plans pinned to it) and the statement is retried once, this time
skipping maintenance of the now-UNUSABLE index.  With the setting off
the statement simply fails, mirroring ORA-01502.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.callbacks import CallbackPhase
from repro.core.domain_index import DomainIndex, IndexState
from repro.errors import (
    CallbackError, ConstraintError, ExecutionError, IndexUnusableError)
from repro.sql import ast_nodes as ast
from repro.sql import planner as pl
from repro.sql.catalog import TableDef
from repro.sql.cursor import Cursor
from repro.sql.expressions import Binder, RowContext, Scope
from repro.storage.heap import RowId
from repro.txn.locks import LockMode
from repro.types.values import NULL, is_null


def index_key(row: List[Any], positions: List[int]) -> Any:
    """The native-index key for ``row`` restricted to ``positions``.

    Returns None for rows with any NULL key column (NULL keys are not
    indexed, Oracle semantics); a bare value for single-column keys.
    """
    values = [row[p] for p in positions]
    if any(is_null(v) for v in values):
        return None
    return values[0] if len(values) == 1 else tuple(values)


class DMLEngine:
    """Executes DML statements and maintains every index implicitly."""

    def __init__(self, db: Any):
        self.db = db
        self._stmt_depth = 0

    # ------------------------------------------------------------------
    # statement scope
    # ------------------------------------------------------------------

    def statement_transaction(self):
        """Open the statement scope: (txn, autocommit_flag).

        Every DML statement gets an implicit savepoint so a failure
        rolls back exactly that statement's changes (statement-level
        atomicity) while an enclosing explicit transaction survives.
        The depth counter keeps nested DML issued by maintenance
        callbacks from clobbering the outer statement's savepoint.
        """
        db = self.db
        if db.txns.in_transaction:
            txn, autocommit = db.txns.current, False
        else:
            txn, autocommit = db.txns.begin(), True
        self._stmt_depth += 1
        txn.savepoint(f"__stmt_{self._stmt_depth}__")
        return txn, autocommit

    def finish(self, autocommit: bool, failed: bool = False) -> None:
        """Close the statement scope opened by :meth:`statement_transaction`."""
        db = self.db
        depth = self._stmt_depth
        self._stmt_depth -= 1
        if failed:
            txn = db.txns.current
            if txn is not None and txn.active:
                txn.rollback_to_savepoint(f"__stmt_{depth}__")
            if autocommit:
                db.rollback()
            return
        if autocommit:
            db.commit()

    def run_maintained(self, table: TableDef, body: Callable[[Any], Any]):
        """Run one DML statement body under the degradation policy.

        The table's X lock is taken *before* ``body(txn)`` runs, so the
        body may both select its targets and mutate them — UPDATE/DELETE
        plan their target rows inside the body, under the lock, which is
        what makes read-modify-write statements from concurrent sessions
        serialize instead of losing updates.  On a maintenance
        :class:`CallbackError` the statement savepoint has already
        rolled back base table and index undo together; then, when
        ``skip_unusable_indexes`` is on, the failing index degrades to
        ``UNUSABLE`` and the body runs once more (re-planning its
        targets against the restored data) with that index's maintenance
        skipped.  Any second failure — or any failure with the setting
        off — propagates.
        """
        db = self.db
        for attempt in (0, 1):
            txn, autocommit = self.statement_transaction()
            try:
                db.locks.acquire(txn.txn_id, f"table:{table.key}",
                                 LockMode.EXCLUSIVE,
                                 timeout=getattr(db, "lock_timeout", None))
                result = body(txn)
            except CallbackError as exc:
                self.finish(autocommit, failed=True)
                if (attempt == 0 and exc.phase == "maintenance"
                        and exc.index_name and db.skip_unusable_indexes
                        and db.catalog.has_index(exc.index_name)):
                    db.catalog.set_index_state(exc.index_name,
                                               IndexState.UNUSABLE)
                    db._trace(
                        f"dml:degrade index {exc.index_name} -> UNUSABLE; "
                        f"retrying statement [{exc.routine}]")
                    continue
                raise
            except Exception:
                self.finish(autocommit, failed=True)
                raise
            self.finish(autocommit)
            return result

    def _maintainable(self, index_name: str, domain: DomainIndex) -> bool:
        """Whether a domain index participates in maintenance right now.

        Non-VALID indexes are skipped under ``skip_unusable_indexes``
        (with a trace line); with the setting off the statement fails
        immediately (ORA-01502 analogue).
        """
        if domain.valid:
            return True
        if not self.db.skip_unusable_indexes:
            raise IndexUnusableError(index_name, domain.state.value)
        self.db._trace(f"dml:skip({index_name}) state={domain.state.value}")
        return False

    # ------------------------------------------------------------------
    # row validation / physical insert
    # ------------------------------------------------------------------

    def validate_row(self, table: TableDef, row: List[Any]) -> List[Any]:
        out = []
        for col, value in zip(table.columns, row):
            validated = col.datatype.validate(value)
            if col.not_null and is_null(validated):
                raise ConstraintError(
                    f"column {table.name}.{col.name} is NOT NULL")
            out.append(validated)
        return out

    def insert_row(self, table_name: str, values: Sequence[Any]) -> RowId:
        """Insert one row of Python values (bypasses the parser).

        Used by application code that holds non-literal values (rowids,
        object instances, LOB locators) — e.g. the legacy text baseline
        writing rowids to its temporary result table.
        """
        db = self.db
        table = db.catalog.get_table(table_name)
        db._check_table_privilege(table, "insert")
        if len(values) != len(table.columns):
            raise ExecutionError(
                f"{table.name} has {len(table.columns)} columns, "
                f"got {len(values)} values")
        return self.run_maintained(
            table,
            lambda txn: self.insert_physical(table, list(values), txn))

    def insert_rows(self, table_name: str,
                    rows: Sequence[Sequence[Any]]) -> int:
        """Bulk :meth:`insert_row`; returns the number of rows inserted."""
        db = self.db
        table = db.catalog.get_table(table_name)
        db._check_table_privilege(table, "insert")

        def body(txn) -> int:
            for values in rows:
                if len(values) != len(table.columns):
                    raise ExecutionError(
                        f"{table.name} has {len(table.columns)} columns, "
                        f"got {len(values)} values")
                self.insert_physical(table, list(values), txn)
            return len(rows)

        return self.run_maintained(table, body)

    def insert_physical(self, table: TableDef, row: List[Any], txn) -> RowId:
        row = self.validate_row(table, row)
        storage = table.storage
        rowid = storage.insert(row)
        txn.record_undo(lambda: storage.delete(rowid))
        self.maintain_insert(table, rowid, row, txn)
        return rowid

    # ------------------------------------------------------------------
    # implicit index maintenance (ODCIIndexInsert/Update/Delete fan-out)
    # ------------------------------------------------------------------

    def maintain_insert(self, table: TableDef, rowid: RowId,
                        row: List[Any], txn) -> None:
        db = self.db
        for index in db.catalog.indexes_on(table.name):
            if index.is_domain and index.domain is not None:
                domain = index.domain
                if not self._maintainable(index.name, domain):
                    continue
                env = db.make_env(CallbackPhase.MAINTENANCE, domain)
                env.trace(f"dml:ODCIIndexInsert({index.name})")
                values = [row[table.column_position(c)]
                          for c in index.column_names]
                db.dispatcher.call(
                    "ODCIIndexInsert", domain.methods.index_insert,
                    domain.index_info(), rowid, values, env,
                    index_name=index.name, phase="maintenance")
                continue
            structure = index.structure
            positions = [table.column_position(c)
                         for c in index.column_names]
            key = index_key(row, positions)
            if key is None:
                continue
            structure.insert(key, rowid)
            txn.record_undo(
                lambda s=structure, k=key, r=rowid: s.delete(k, r))

    def maintain_delete(self, table: TableDef, rowid: RowId,
                        row: List[Any], txn) -> None:
        db = self.db
        for index in db.catalog.indexes_on(table.name):
            if index.is_domain and index.domain is not None:
                domain = index.domain
                if not self._maintainable(index.name, domain):
                    continue
                env = db.make_env(CallbackPhase.MAINTENANCE, domain)
                env.trace(f"dml:ODCIIndexDelete({index.name})")
                values = [row[table.column_position(c)]
                          for c in index.column_names]
                db.dispatcher.call(
                    "ODCIIndexDelete", domain.methods.index_delete,
                    domain.index_info(), rowid, values, env,
                    index_name=index.name, phase="maintenance")
                continue
            structure = index.structure
            positions = [table.column_position(c)
                         for c in index.column_names]
            key = index_key(row, positions)
            if key is None:
                continue
            structure.delete(key, rowid)
            txn.record_undo(
                lambda s=structure, k=key, r=rowid: s.insert(k, r))

    def maintain_update(self, table: TableDef, rowid: RowId,
                        old_row: List[Any], new_row: List[Any],
                        txn) -> None:
        db = self.db
        for index in db.catalog.indexes_on(table.name):
            positions = [table.column_position(c)
                         for c in index.column_names]
            old_vals = [old_row[p] for p in positions]
            new_vals = [new_row[p] for p in positions]
            if index.is_domain and index.domain is not None:
                if old_vals == new_vals:
                    continue  # indexed columns unchanged
                domain = index.domain
                if not self._maintainable(index.name, domain):
                    continue
                env = db.make_env(CallbackPhase.MAINTENANCE, domain)
                env.trace(f"dml:ODCIIndexUpdate({index.name})")
                db.dispatcher.call(
                    "ODCIIndexUpdate", domain.methods.index_update,
                    domain.index_info(), rowid, old_vals, new_vals, env,
                    index_name=index.name, phase="maintenance")
                continue
            structure = index.structure
            old_key = index_key(old_row, positions)
            new_key = index_key(new_row, positions)
            if old_key == new_key:
                continue
            if old_key is not None:
                structure.delete(old_key, rowid)
                txn.record_undo(
                    lambda s=structure, k=old_key, r=rowid: s.insert(k, r))
            if new_key is not None:
                structure.insert(new_key, rowid)
                txn.record_undo(
                    lambda s=structure, k=new_key, r=rowid: s.delete(k, r))

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def execute_insert(self, stmt: ast.Insert) -> Cursor:
        db = self.db
        table = db.catalog.get_table(stmt.table)
        db._check_table_privilege(table, "insert")
        column_order = [c.lower() for c in stmt.columns] \
            if stmt.columns else [c.name for c in table.columns]
        positions = [table.column_position(c) for c in column_order]

        def build_row(values: List[Any]) -> List[Any]:
            if len(values) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, "
                    f"got {len(values)}")
            row: List[Any] = [NULL] * len(table.columns)
            for pos, value in zip(positions, values):
                row[pos] = value
            return row

        rows_to_insert: List[List[Any]] = []
        if stmt.select is not None:
            for out in db.pipeline.run_select(stmt.select):
                rows_to_insert.append(build_row(list(out)))
        else:
            empty = RowContext()
            for value_row in stmt.rows:
                binder = Binder(db.catalog, Scope([]))
                values = [db.evaluator.evaluate(binder.bind(e), empty)
                          for e in value_row]
                rows_to_insert.append(build_row(values))

        def body(txn) -> int:
            for row in rows_to_insert:
                self.insert_physical(table, list(row), txn)
            return len(rows_to_insert)

        return Cursor(rowcount=self.run_maintained(table, body))

    def plan_target_rows(self, table: TableDef, binding: str,
                         where: Optional[ast.Expr]
                         ) -> List[Tuple[RowId, RowContext]]:
        db = self.db
        select = ast.Select(
            items=[ast.SelectItem(ast.Star())],
            tables=[ast.TableRef(name=table.name, alias=binding)],
            where=where)
        plan = db.planner.plan_select(select)
        node = plan.root
        while isinstance(node, (pl.ProjectNode, pl.DistinctNode,
                                pl.LimitNode, pl.SortNode)):
            node = node.child
        # materialize fully before mutating (Halloween-problem avoidance)
        return [(ctx.rowids[binding], ctx)
                for ctx in db.executor.iter_node(node)]

    def execute_update(self, stmt: ast.Update) -> Cursor:
        db = self.db
        table = db.catalog.get_table(stmt.table)
        db._check_table_privilege(table, "update")
        binding = (stmt.alias or stmt.table).lower()
        scope = Scope([(binding, table)])
        binder = Binder(db.catalog, scope)
        where = stmt.where
        if where is not None:
            where = binder.bind(db.planner.materialize_subqueries(where))
        assignments = [(table.column_position(col), binder.bind(expr))
                       for col, expr in stmt.assignments]

        def body(txn) -> int:
            # target selection runs under the table X lock taken by
            # run_maintained: SET expressions see current values, and
            # concurrent read-modify-write UPDATEs serialize (no lost
            # updates); materialized fully before mutating (Halloween)
            targets = self.plan_target_rows(table, binding, where)
            count = 0
            for rowid, ctx in targets:
                old_row = table.storage.fetch_or_none(rowid)
                if old_row is None:
                    continue
                new_row = list(old_row)
                for pos, expr in assignments:
                    new_row[pos] = db.evaluator.evaluate(expr, ctx)
                new_row = self.validate_row(table, new_row)
                storage = table.storage
                storage.update(rowid, new_row)
                old_copy = list(old_row)
                txn.record_undo(
                    lambda s=storage, r=rowid, o=old_copy: s.update(r, o))
                self.maintain_update(table, rowid, old_copy, new_row, txn)
                count += 1
            return count

        return Cursor(rowcount=self.run_maintained(table, body))

    def execute_delete(self, stmt: ast.Delete) -> Cursor:
        db = self.db
        table = db.catalog.get_table(stmt.table)
        db._check_table_privilege(table, "delete")
        binding = (stmt.alias or stmt.table).lower()
        scope = Scope([(binding, table)])
        binder = Binder(db.catalog, scope)
        where = stmt.where
        if where is not None:
            where = binder.bind(db.planner.materialize_subqueries(where))

        def body(txn) -> int:
            # targets planned under the table X lock (see execute_update)
            targets = self.plan_target_rows(table, binding, where)
            count = 0
            for rowid, __ in targets:
                old_row = table.storage.fetch_or_none(rowid)
                if old_row is None:
                    continue
                storage = table.storage
                old_copy = list(storage.delete(rowid))
                txn.record_undo(
                    lambda s=storage, r=rowid, o=old_copy: s.undelete(r, o))
                self.maintain_delete(table, rowid, old_copy, txn)
                count += 1
            return count

        return Cursor(rowcount=self.run_maintained(table, body))
