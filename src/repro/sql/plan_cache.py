"""Shared plan cache (the library-cache analogue of Oracle8i's shared pool).

Compiled :class:`~repro.sql.planner.QueryPlan` objects are expensive to
produce — parsing, binding, and the cost-based choice between functional
and domain-index evaluation all consult the catalog and (for domain
indexes) ODCIStats routines.  The cache amortizes that work across
repeated executions of the same statement text.

Key: ``(normalized SQL text, bind-variable signature)``.  Normalization
collapses whitespace outside quoted regions only — it never case-folds,
and it never touches the inside of ``'...'`` literals or ``"..."``
identifiers, so two statements that differ anywhere inside a quoted
region (case or spacing) never collide.

Validation: every entry records the :class:`~repro.sql.catalog.Catalog`
``version`` it was compiled against plus a per-table size signature.  A
lookup whose recorded version no longer matches the live catalog (any
DDL, ANALYZE, or operator/indextype re-registration bumps it) discards
the entry and reports a miss; likewise when a referenced non-analyzed
table has grown or shrunk enough to move cost estimates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["PlanCache", "CachedPlan", "PlanCacheStats", "normalize_sql"]


def normalize_sql(sql: str) -> str:
    """Whitespace-collapsed statement text used as the cache-key text.

    Quote-aware: runs of whitespace collapse to a single space *outside*
    quoted regions only.  The inside of a ``'...'`` string literal (or a
    ``"..."`` quoted identifier) is preserved byte-for-byte — literals
    are frozen into the compiled plan, so two statements whose literals
    differ only in spacing must not share a cache slot.  A doubled quote
    (``''``) is the SQL escape and stays inside the region.

    Deliberately does NOT lower-case: string literals are
    case-significant, and the parser already case-folds identifiers.
    """
    out = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in ("'", '"'):
            j = i + 1
            while j < n:
                if sql[j] == ch:
                    if j + 1 < n and sql[j + 1] == ch:  # escaped quote
                        j += 2
                        continue
                    j += 1
                    break
                j += 1
            out.append(sql[i:j])
            i = j
        elif ch.isspace():
            while i < n and sql[i].isspace():
                i += 1
            if out and i < n:  # no leading/trailing separator
                out.append(" ")
        else:
            out.append(ch)
            i += 1
    return "".join(out)


@dataclass
class PlanCacheStats:
    """Running counters, surfaced via ``db.plan_cache.stats``."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    stores: int = 0

    def reset(self) -> None:
        self.lookups = self.hits = self.misses = 0
        self.invalidations = self.evictions = self.stores = 0


@dataclass
class CachedPlan:
    """One compiled statement held in the cache.

    The plan carries the compiled expression closures produced by
    :func:`repro.sql.compile.compile_plan` on its nodes; they are pure
    functions of ``(row context, bind values)``, so sharing one entry
    across sessions executing with different bind sets is safe.
    """

    #: the compiled QueryPlan (shared across executions — treat read-only)
    plan: object
    #: Catalog.version the plan was compiled against
    catalog_version: int
    #: ((table_key, size_bucket), ...) for referenced non-analyzed tables
    table_sig: Tuple[Tuple[str, int], ...]
    #: bind names the plan expects (sorted)
    bind_names: Tuple[str, ...]
    #: original (un-normalized) statement text, for diagnostics
    sql: str
    hits: int = field(default=0)
    #: plan nodes whose row expressions all compiled (diagnostics)
    compiled_nodes: int = field(default=0)


class PlanCache:
    """LRU cache of compiled plans keyed on (normalized SQL, bind signature)."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, Tuple[str, ...]], CachedPlan]" \
            = OrderedDict()
        self.stats = PlanCacheStats()
        #: latch: the cache is engine-wide, probed by every session; the
        #: LRU OrderedDict and the counters mutate on every lookup
        self._latch = threading.RLock()

    def __len__(self) -> int:
        with self._latch:
            return len(self._entries)

    # -- key helpers -----------------------------------------------------

    @staticmethod
    def key_for(normalized_sql: str,
                bind_signature: Tuple[str, ...]) -> Tuple[str, Tuple[str, ...]]:
        return (normalized_sql, bind_signature)

    # -- core operations -------------------------------------------------

    def lookup(self, normalized_sql: str, bind_signature: Tuple[str, ...],
               catalog) -> Optional[CachedPlan]:
        """Return a still-valid cached plan, or ``None`` (a miss).

        A stale entry (catalog version moved on, or a referenced
        non-analyzed table changed size bucket) is dropped and counted
        as an invalidation + miss.
        """
        with self._latch:
            self.stats.lookups += 1
            key = self.key_for(normalized_sql, bind_signature)
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if not self._is_valid(entry, catalog):
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.stats.hits += 1
            return entry

    def store(self, normalized_sql: str, bind_signature: Tuple[str, ...],
              entry: CachedPlan) -> None:
        """Insert ``entry``, evicting the least-recently-used if full."""
        key = self.key_for(normalized_sql, bind_signature)
        with self._latch:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._latch:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    # -- validation ------------------------------------------------------

    def _is_valid(self, entry: CachedPlan, catalog) -> bool:
        if entry.catalog_version != catalog.version:
            return False
        for table_key, bucket in entry.table_sig:
            table = catalog.tables.get(table_key)
            if table is None:
                return False
            if size_bucket(table.storage.row_count) != bucket:
                return False
        return True


def size_bucket(row_count: int) -> int:
    """Logarithmic bucket of a table's live row count.

    Plans over non-ANALYZEd tables are costed from live storage counts;
    the bucket lets such plans survive small data drift but forces a
    replan once the table has grown/shrunk past a power of two.
    """
    return int(row_count).bit_length()
