"""Expression binding and evaluation.

Binding resolves raw parser output against a FROM-clause scope and the
catalog: dotted paths become (alias, column, attribute-path) references,
and ``FuncCall`` nodes are classified as aggregates, user-defined
*operators* (the paper's schema objects), or plain functions.

Evaluation implements SQL semantics (three-valued logic, NULL
propagation) over a :class:`RowContext`.  User-defined operators are
evaluated *functionally* here — by invoking the bound function — which is
exactly the paper's default path; the planner may instead satisfy the
predicate with a domain-index scan, in which case the executor never
calls back into this evaluator for that conjunct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.operators import Operator
from repro.errors import CatalogError, ExecutionError, TypeMismatchError
from repro.sql import ast_nodes as ast
from repro.sql.catalog import Catalog, TableDef
from repro.types.datatypes import (
    ANY, BOOLEAN, DataType, INTEGER, NUMBER, VARCHAR2)
from repro.types.objects import ObjectValue
from repro.types.values import (
    NULL, is_null, sql_and, sql_compare, sql_eq, sql_like, sql_not, sql_or,
    sql_truth)

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


# ---------------------------------------------------------------------------
# Bound expression nodes (produced by the binder, unknown to the parser)
# ---------------------------------------------------------------------------

@dataclass
class OperatorCall(ast.Expr):
    """A bound call of a user-defined operator.

    ``label`` carries the ancillary linkage literal (the ``1`` in
    ``Contains(resume, 'x', 1)`` / ``Score(1)``) when present.
    """

    operator: Operator
    args: List[ast.Expr]
    label: Optional[int] = None

    def __repr__(self) -> str:
        return f"OperatorCall({self.operator.name}, label={self.label})"


@dataclass
class AggregateCall(ast.Expr):
    """A bound aggregate (COUNT/SUM/AVG/MIN/MAX)."""

    func: str  # lower-cased
    arg: Optional[ast.Expr]  # None for COUNT(*)
    distinct: bool = False

    def __repr__(self) -> str:
        arg = "*" if self.arg is None else repr(self.arg)
        return f"Agg({self.func}({arg}))"


# ---------------------------------------------------------------------------
# Row context
# ---------------------------------------------------------------------------

@dataclass
class RowContext:
    """Values visible to expression evaluation for one candidate row.

    ``values`` maps (alias, column) → value; ``rowids`` maps alias →
    RowId; ``aux`` maps ancillary label → auxiliary value produced by a
    domain-index scan or a functional primary-operator evaluation.
    """

    values: Dict[Tuple[str, str], Any] = field(default_factory=dict)
    rowids: Dict[str, Any] = field(default_factory=dict)
    aux: Dict[int, Any] = field(default_factory=dict)
    #: aggregate-result values keyed by :func:`aggregate_key` (group output)
    agg: Dict[str, Any] = field(default_factory=dict)

    def merged_with(self, other: "RowContext") -> "RowContext":
        """Join contexts (left ∪ right) for join nodes."""
        merged = RowContext(dict(self.values), dict(self.rowids),
                            dict(self.aux), dict(self.agg))
        merged.values.update(other.values)
        merged.rowids.update(other.rowids)
        merged.aux.update(other.aux)
        merged.agg.update(other.agg)
        return merged


def aggregate_key(call: "AggregateCall") -> str:
    """Stable identity of an aggregate within one query (group lookup)."""
    arg = "*" if call.arg is None else repr(call.arg)
    return f"{call.func}|{int(call.distinct)}|{arg}"


def value_datatype(value: Any) -> DataType:
    """Best-effort runtime type of a Python value (binding resolution)."""
    if is_null(value):
        return ANY
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return NUMBER
    if isinstance(value, str):
        return VARCHAR2
    if isinstance(value, ObjectValue):
        return value.object_type
    return ANY


# ---------------------------------------------------------------------------
# Binder
# ---------------------------------------------------------------------------

class Scope:
    """The FROM-clause name scope: binding name → table definition."""

    def __init__(self, entries: Sequence[Tuple[str, TableDef]]):
        self.entries: List[Tuple[str, TableDef]] = [
            (name.lower(), table) for name, table in entries]
        self._by_name = dict(self.entries)

    def table_for_alias(self, alias: str) -> Optional[TableDef]:
        return self._by_name.get(alias.lower())

    def resolve_column(self, column: str) -> Optional[Tuple[str, TableDef]]:
        """Find the unique table exposing ``column`` (None if 0, error if >1)."""
        matches = []
        for name, table in self.entries:
            try:
                table.column_position(column)
            except CatalogError:
                continue
            matches.append((name, table))
        if not matches:
            return None
        if len(matches) > 1:
            raise CatalogError(
                f"column {column!r} is ambiguous across "
                f"{[name for name, _ in matches]}")
        return matches[0]


class Binder:
    """Resolves names in an expression tree against a scope + catalog."""

    def __init__(self, catalog: Catalog, scope: Scope):
        self.catalog = catalog
        self.scope = scope

    # -- lookups tolerant of schema qualification --------------------------

    def find_operator(self, name: str) -> Optional[Operator]:
        key = name.lower()
        if key in self.catalog.operators:
            return self.catalog.operators[key]
        tail = key.split(".")[-1]
        matches = [op for opkey, op in self.catalog.operators.items()
                   if opkey.split(".")[-1] == tail]
        if len(matches) == 1:
            return matches[0]
        return None

    def find_function(self, name: str):
        key = name.lower()
        if key in self.catalog.functions:
            return self.catalog.functions[key]
        tail = key.split(".")[-1]
        matches = [fn for fnkey, fn in self.catalog.functions.items()
                   if fnkey.split(".")[-1] == tail]
        if len(matches) == 1:
            return matches[0]
        return None

    # -- binding ---------------------------------------------------------------

    def bind(self, expr: ast.Expr) -> ast.Expr:
        """Return the bound version of ``expr`` (rewrites in place or anew)."""
        if isinstance(expr, ast.Literal):
            return expr
        if isinstance(expr, ast.Star):
            return expr
        if isinstance(expr, ast.ColumnRef):
            return self._bind_column(expr)
        if isinstance(expr, ast.FuncCall):
            return self._bind_call(expr)
        if isinstance(expr, ast.BinaryOp):
            expr.left = self.bind(expr.left)
            expr.right = self.bind(expr.right)
            return expr
        if isinstance(expr, ast.BoolOp):
            expr.left = self.bind(expr.left)
            expr.right = self.bind(expr.right)
            return expr
        if isinstance(expr, ast.NotOp):
            expr.operand = self.bind(expr.operand)
            return expr
        if isinstance(expr, ast.UnaryMinus):
            expr.operand = self.bind(expr.operand)
            return expr
        if isinstance(expr, ast.IsNullOp):
            expr.operand = self.bind(expr.operand)
            return expr
        if isinstance(expr, ast.LikeOp):
            expr.operand = self.bind(expr.operand)
            expr.pattern = self.bind(expr.pattern)
            return expr
        if isinstance(expr, ast.BetweenOp):
            expr.operand = self.bind(expr.operand)
            expr.low = self.bind(expr.low)
            expr.high = self.bind(expr.high)
            return expr
        if isinstance(expr, ast.InListOp):
            expr.operand = self.bind(expr.operand)
            expr.items = [self.bind(item) for item in expr.items]
            return expr
        if isinstance(expr, ast.BindParam):
            return expr  # resolved at execution time from the bind set
        if isinstance(expr, (OperatorCall, AggregateCall)):
            return expr  # already bound
        raise ExecutionError(f"cannot bind expression {expr!r}")

    def _bind_column(self, ref: ast.ColumnRef) -> ast.ColumnRef:
        if ref.bound:
            return ref
        path = ref.path
        head = path[0].lower()
        table = self.scope.table_for_alias(head)
        if table is not None and len(path) >= 2:
            ref.alias = head
            ref.column = path[1].lower()
            ref.attr_path = [p.lower() for p in path[2:]]
            if ref.column != "rowid":  # rowid is a pseudo-column
                table.column_position(ref.column)  # validates
            return ref
        if head == "rowid" and len(self.scope.entries) == 1:
            ref.alias = self.scope.entries[0][0]
            ref.column = "rowid"
            ref.attr_path = [p.lower() for p in path[1:]]
            return ref
        resolved = self.scope.resolve_column(path[0])
        if resolved is None:
            raise CatalogError(f"cannot resolve column reference "
                               f"{ref.display()!r}")
        ref.alias = resolved[0]
        ref.column = path[0].lower()
        ref.attr_path = [p.lower() for p in path[1:]]
        return ref

    def _bind_call(self, call: ast.FuncCall) -> ast.Expr:
        name = call.name.lower()
        if name in AGGREGATE_NAMES:
            if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                if name != "count":
                    raise ExecutionError(f"{call.name}(*) is not valid")
                return AggregateCall(func="count", arg=None,
                                     distinct=call.distinct)
            if len(call.args) != 1:
                raise ExecutionError(
                    f"aggregate {call.name} takes exactly one argument")
            return AggregateCall(func=name, arg=self.bind(call.args[0]),
                                 distinct=call.distinct)
        operator = self.find_operator(call.name)
        if operator is not None:
            args = [self.bind(a) for a in call.args]
            label = self._ancillary_label(operator, args)
            return OperatorCall(operator=operator, args=args, label=label)
        function = self.find_function(call.name)
        if function is not None:
            call.args = [self.bind(a) for a in call.args]
            return call
        raise CatalogError(
            f"no such function or operator {call.name!r}")

    def _ancillary_label(self, operator: Operator,
                         args: List[ast.Expr]) -> Optional[int]:
        """Extract the ancillary linkage label, when present.

        For an ancillary operator (Score), the single int-literal arg is
        the label.  For a primary operator that has ancillary partners,
        a trailing int literal beyond the binding's declared arity is
        the label.
        """
        if operator.is_ancillary:
            if len(args) == 1 and isinstance(args[0], ast.Literal) \
                    and isinstance(args[0].value, int):
                return args[0].value
            raise ExecutionError(
                f"ancillary operator {operator.name} requires a single "
                "integer label argument")
        has_partners = any(
            op.ancillary_to and op.ancillary_to.lower().split(".")[-1]
            == operator.key.split(".")[-1]
            for op in self.catalog.operators.values())
        if not has_partners or not operator.bindings:
            return None
        declared = min(len(b.arg_types) for b in operator.bindings)
        if len(args) == declared + 1 and isinstance(args[-1], ast.Literal) \
                and isinstance(args[-1].value, int):
            return args[-1].value
        return None


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------

class Evaluator:
    """Evaluates bound expressions against row contexts.

    ``binds`` maps bind-parameter name → value for the current
    execution.  Cached plans keep :class:`~repro.sql.ast_nodes.BindParam`
    nodes in the tree, so each execution supplies its own values here
    instead of rewriting the (shared) plan.
    """

    def __init__(self, catalog: Catalog,
                 binds: Optional[Dict[str, Any]] = None):
        self.catalog = catalog
        self.binds = binds or {}

    def evaluate(self, expr: ast.Expr, ctx: RowContext) -> Any:
        """SQL-evaluate ``expr``; returns a value or NULL."""
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.BindParam):
            key = expr.name.lower()
            if key not in self.binds:
                raise ExecutionError(
                    f"no value supplied for bind :{expr.name}")
            return self.binds[key]
        if isinstance(expr, ast.ColumnRef):
            return self._column_value(expr, ctx)
        if isinstance(expr, OperatorCall):
            return self._operator_value(expr, ctx)
        if isinstance(expr, ast.FuncCall):
            return self._function_value(expr, ctx)
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, ctx)
        if isinstance(expr, ast.BoolOp):
            left = self.truth(expr.left, ctx)
            right_lazy = expr.right
            if expr.op == "AND":
                if left is False:
                    return False
                return sql_and(left, self.truth(right_lazy, ctx))
            if left is True:
                return True
            return sql_or(left, self.truth(right_lazy, ctx))
        if isinstance(expr, ast.NotOp):
            return sql_not(self.truth(expr.operand, ctx))
        if isinstance(expr, ast.UnaryMinus):
            value = self.evaluate(expr.operand, ctx)
            if is_null(value):
                return NULL
            return -value
        if isinstance(expr, ast.IsNullOp):
            value = self.evaluate(expr.operand, ctx)
            result = is_null(value)
            return not result if expr.negated else result
        if isinstance(expr, ast.LikeOp):
            result = sql_like(self.evaluate(expr.operand, ctx),
                              self.evaluate(expr.pattern, ctx))
            return sql_not(result) if expr.negated else result
        if isinstance(expr, ast.BetweenOp):
            value = self.evaluate(expr.operand, ctx)
            low = self.evaluate(expr.low, ctx)
            high = self.evaluate(expr.high, ctx)
            ge_low = self._relop(">=", value, low)
            le_high = self._relop("<=", value, high)
            result = sql_and(ge_low, le_high)
            return sql_not(result) if expr.negated else result
        if isinstance(expr, ast.InListOp):
            value = self.evaluate(expr.operand, ctx)
            result: Any = False
            for item in expr.items:
                result = sql_or(result, sql_eq(value,
                                               self.evaluate(item, ctx)))
            return sql_not(result) if expr.negated else result
        if isinstance(expr, AggregateCall):
            key = aggregate_key(expr)
            if key in ctx.agg:
                return ctx.agg[key]
            raise ExecutionError(
                f"aggregate {expr.func} not allowed in this context")
        raise ExecutionError(f"cannot evaluate expression {expr!r}")

    def truth(self, expr: ast.Expr, ctx: RowContext) -> Any:
        """Evaluate ``expr`` as a predicate (TRUE/FALSE/NULL).

        A user-defined operator in boolean position is satisfied when it
        returns a truthy value (non-zero number / TRUE), matching the
        paper's relaxed ``Contains(...)`` notation for
        ``Contains(...) = 1``.
        """
        return sql_truth(self.evaluate(expr, ctx))

    # -- node kinds ----------------------------------------------------------

    def _column_value(self, ref: ast.ColumnRef, ctx: RowContext) -> Any:
        if not ref.bound:
            raise ExecutionError(f"unbound column reference {ref.display()!r}")
        key = (ref.alias, ref.column)
        if key not in ctx.values:
            raise ExecutionError(f"no value for {ref.alias}.{ref.column} "
                                 "in row context")
        value = ctx.values[key]
        for attr in ref.attr_path:
            if is_null(value):
                return NULL
            if isinstance(value, ObjectValue):
                value = value.get(attr)
            else:
                raise TypeMismatchError(
                    f"{ref.alias}.{ref.column}: cannot take attribute "
                    f"{attr!r} of non-object value {value!r}")
        return value

    def _operator_value(self, call: OperatorCall, ctx: RowContext) -> Any:
        operator = call.operator
        if operator.is_ancillary:
            if call.label in ctx.aux:
                return ctx.aux[call.label]
            raise ExecutionError(
                f"ancillary operator {operator.name}({call.label}) has no "
                "value: the primary operator was not evaluated for this row")
        arg_values = [self.evaluate(a, ctx) for a in call.args]
        func_args = arg_values
        if call.label is not None:
            # the trailing linkage label is not passed to the function
            func_args = arg_values[:-1]
        binding = operator.resolve_binding(
            [value_datatype(v) for v in func_args])
        function = self.catalog.get_function(binding.function_name)
        result = function.fn(*func_args)
        if call.label is not None:
            # functional evaluation of a primary operator feeds its
            # ancillary partners: the raw return value is the aux value
            ctx.aux[call.label] = result
        return result

    def _function_value(self, call: ast.FuncCall, ctx: RowContext) -> Any:
        function = Binder(self.catalog, Scope([])).find_function(call.name)
        if function is None:
            raise CatalogError(f"no such function {call.name!r}")
        args = [self.evaluate(a, ctx) for a in call.args]
        return function.fn(*args)

    def _binary(self, expr: ast.BinaryOp, ctx: RowContext) -> Any:
        left = self.evaluate(expr.left, ctx)
        right = self.evaluate(expr.right, ctx)
        op = expr.op
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return self._relop(op, left, right)
        if is_null(left) or is_null(right):
            return NULL
        if op == "||":
            return f"{left}{right}"
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            return left / right
        raise ExecutionError(f"unknown binary operator {op!r}")

    @staticmethod
    def _relop(op: str, left: Any, right: Any) -> Any:
        cmp = sql_compare(left, right)
        if is_null(cmp):
            return NULL
        if op == "=":
            return cmp == 0
        if op == "!=":
            return cmp != 0
        if op == "<":
            return cmp < 0
        if op == "<=":
            return cmp <= 0
        if op == ">":
            return cmp > 0
        return cmp >= 0


def static_type(expr: ast.Expr, scope: Scope, catalog: Catalog) -> DataType:
    """Best-effort static SQL type of a bound expression (planner use)."""
    if isinstance(expr, ast.Literal):
        return value_datatype(expr.value)
    if isinstance(expr, ast.BindParam):
        return ANY  # value unknown until execution
    if isinstance(expr, ast.ColumnRef) and expr.bound:
        table = scope.table_for_alias(expr.alias or "")
        if table is None:
            return ANY
        dtype = table.column_info(expr.column).datatype
        for attr in expr.attr_path:
            if hasattr(dtype, "attribute_type"):
                dtype = dtype.attribute_type(attr)
            else:
                return ANY
        return dtype
    if isinstance(expr, OperatorCall):
        if expr.operator.bindings:
            return expr.operator.bindings[0].return_type
        return ANY
    if isinstance(expr, (ast.BinaryOp, ast.UnaryMinus)):
        return NUMBER
    if isinstance(expr, (ast.BoolOp, ast.NotOp, ast.IsNullOp, ast.LikeOp,
                         ast.BetweenOp, ast.InListOp)):
        return BOOLEAN
    return ANY


def contains_aggregate(expr: ast.Expr) -> bool:
    """True when ``expr`` contains an AggregateCall anywhere."""
    if isinstance(expr, AggregateCall):
        return True
    if isinstance(expr, (ast.BinaryOp, ast.BoolOp)):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, (ast.NotOp, ast.UnaryMinus, ast.IsNullOp)):
        return contains_aggregate(expr.operand)
    if isinstance(expr, ast.LikeOp):
        return contains_aggregate(expr.operand) or contains_aggregate(expr.pattern)
    if isinstance(expr, ast.BetweenOp):
        return (contains_aggregate(expr.operand)
                or contains_aggregate(expr.low)
                or contains_aggregate(expr.high))
    if isinstance(expr, ast.InListOp):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(i) for i in expr.items)
    if isinstance(expr, (ast.FuncCall,)):
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, OperatorCall):
        return any(contains_aggregate(a) for a in expr.args)
    return False
