"""The staged statement pipeline: Parse → Bind → Plan → Execute.

Every statement the :class:`~repro.sql.session.Database` facade accepts
flows through :class:`StatementPipeline`.  Each stage produces an
inspectable artifact:

* **Parse** (:class:`ParseArtifact`) — the AST, the statement class
  (query / dml / ddl / tcl), the bind-variable names it references, and
  whether the statement is *plan-cacheable*;
* **Bind** (:class:`BindArtifact`) — normalized bind values and the
  bind-variable *signature* (the sorted name tuple that is part of the
  plan-cache key);
* **Plan** (:class:`PlanArtifact`) — the compiled
  :class:`~repro.sql.planner.QueryPlan` plus whether it came out of the
  shared :class:`~repro.sql.plan_cache.PlanCache`;
* **Execute** — a :class:`~repro.sql.cursor.Cursor` streaming rows from
  a per-execution :class:`~repro.sql.executor.Executor`.

The shared plan cache fronts the pipeline: a repeated statement text
with the same bind signature skips Parse and Plan entirely (like
Oracle8i's soft parse against the shared pool).  Only SELECTs are
cached, and only when the plan is execution-independent:

* no IN/EXISTS subquery — the planner materializes subquery results at
  plan time, freezing data into the plan;
* every referenced table is a real catalog table — dictionary views
  synthesize a fresh TableDef per lookup.

Cached plans are shared read-only templates.  Each execution gets its
own :class:`~repro.sql.executor.Executor` carrying that call's bind
values and a :class:`~repro.core.scan_context.ScanTracker`, so closing
the returned cursor drives ``ODCIIndexClose`` for any still-open domain
index scan.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.domain_index import IndexState
from repro.core.scan_context import ScanTracker
from repro.errors import CallbackError, ExecutionError
from repro.sql import ast_nodes as ast
from repro.sql.binds import (
    collect_bind_names, normalize_params, statement_has_subquery,
    substitute_binds)
from repro.sql.cursor import Cursor
from repro.sql.executor import Executor
from repro.sql.parser import parse
from repro.sql.plan_cache import (
    CachedPlan, PlanCache, normalize_sql, size_bucket)

_EXPLAIN_RE = re.compile(r"^\s*EXPLAIN(\s+PLAN\s+FOR)?\s", re.IGNORECASE)
#: cheap gate for the pre-parse cache probe — only SELECTs are ever
#: stored, so probing for DML/DDL/TCL would just inflate miss counts
_SELECT_RE = re.compile(r"^\s*SELECT\b", re.IGNORECASE)

_TCL_TYPES = (ast.Commit, ast.Rollback, ast.BeginTransaction, ast.Savepoint,
              ast.SetTransaction)
_DML_TYPES = (ast.Insert, ast.Update, ast.Delete)


@dataclass
class ParseArtifact:
    """Output of the Parse stage."""

    sql: str
    normalized_sql: str
    statement: ast.Statement
    #: 'query' | 'dml' | 'ddl' | 'tcl'
    kind: str
    #: sorted bind-variable names referenced by the statement
    bind_names: Tuple[str, ...]
    #: True when the compiled plan may enter the shared plan cache
    cacheable: bool


@dataclass
class BindArtifact:
    """Output of the Bind stage."""

    #: normalized name → value mapping (positional binds become '1', '2', ...)
    values: Dict[str, Any]
    #: sorted name tuple — the bind part of the plan-cache key
    signature: Tuple[str, ...]


@dataclass
class PlanArtifact:
    """Output of the Plan stage."""

    plan: Any
    #: True when the plan came out of the shared cache (soft parse)
    cache_hit: bool
    #: True when the plan was (or could have been) cached
    cacheable: bool


class StatementPipeline:
    """Drives statements through Parse → Bind → Plan → Execute."""

    def __init__(self, db: Any, cache_capacity: int = 128,
                 cache: Optional[PlanCache] = None):
        self.db = db
        #: the plan cache; sessions pass the engine's shared instance so
        #: a statement compiled by one connection soft-parses on all
        self.cache = cache if cache is not None else \
            PlanCache(capacity=cache_capacity)

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------

    def parse(self, sql: str) -> ParseArtifact:
        """Parse stage: AST + statement class + cacheability."""
        statement = parse(sql)
        return self.parse_artifact(sql, statement)

    def parse_artifact(self, sql: str,
                       statement: ast.Statement) -> ParseArtifact:
        """Build the Parse artifact for an already-parsed statement."""
        if isinstance(statement, (ast.Select, ast.Explain)):
            kind = "query"
        elif isinstance(statement, _DML_TYPES):
            kind = "dml"
        elif isinstance(statement, _TCL_TYPES):
            kind = "tcl"
        else:
            kind = "ddl"
        return ParseArtifact(
            sql=sql, normalized_sql=normalize_sql(sql), statement=statement,
            kind=kind, bind_names=tuple(collect_bind_names(statement)),
            cacheable=self._cacheable(statement))

    def bind(self, params: Optional[Any]) -> BindArtifact:
        """Bind stage: normalize values and derive the bind signature."""
        values = normalize_params(params)
        return BindArtifact(values=values, signature=tuple(sorted(values)))

    def plan(self, parsed: ParseArtifact, bound: BindArtifact,
             probed: bool = False) -> PlanArtifact:
        """Plan stage: cache probe, then compile-and-store on a miss.

        Only valid for cacheable SELECTs (``parsed.cacheable``); other
        statements never reach this stage.  ``probed=True`` means the
        caller already probed the cache for this key and missed, so the
        lookup (and its stats accounting) is not repeated here.
        """
        if not probed:
            entry = self.cache.lookup(parsed.normalized_sql,
                                      bound.signature, self.db.catalog)
            if entry is not None:
                return PlanArtifact(plan=entry.plan, cache_hit=True,
                                    cacheable=True)
        plan = self.db.planner.plan_select(parsed.statement,
                                           peek_binds=bound.values)
        self.cache.store(parsed.normalized_sql, bound.signature,
                         self._entry_for(parsed, plan))
        return PlanArtifact(plan=plan, cache_hit=False, cacheable=True)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Optional[Any] = None,
                check: Optional[Any] = None) -> Cursor:
        """Run one SQL text through the pipeline.

        ``check`` is a pre-execution hook ``check(statement, sql)`` used
        by restricted callback sessions; it runs after Parse on every
        path that parses.  A plan-cache hit skips it by construction:
        only SELECTs are cached and SELECTs pass every callback phase.
        """
        if _EXPLAIN_RE.match(sql):
            lines = self.explain_lines(sql, params, check=check)
            return Cursor(columns=["plan"],
                          rows=iter([(line,) for line in lines]))
        bound = self.bind(params)
        probed = False
        if _SELECT_RE.match(sql):
            entry = self.cache.lookup(normalize_sql(sql), bound.signature,
                                      self.db.catalog)
            if entry is not None:
                return self._execute_plan(entry.plan, bound.values)
            probed = True
        parsed = self.parse(sql)
        if check is not None:
            check(parsed.statement, sql)
        if parsed.cacheable:
            self._require_binds(parsed, bound)
            planned = self.plan(parsed, bound, probed=probed)
            return self._execute_plan(planned.plan, bound.values)
        statement = parsed.statement
        if params is not None:
            statement = substitute_binds(statement, params)
        return self.execute_statement(statement, sql)

    def executemany(self, sql: str, seq_of_params: Any) -> Cursor:
        """Run one SQL text once per parameter set, parsing only once.

        Plain ``INSERT ... VALUES`` statements whose VALUES expressions
        are all binds or literals take the array-DML fast path: the rows
        are validated and inserted under a *single* maintained statement,
        so index maintenance flushes once for the whole batch.  Anything
        else (UPDATE, DELETE, INSERT ... SELECT, expressions over binds)
        re-executes the parsed statement per set; ``rowcount`` is the
        exact total either way.
        """
        param_sets = list(seq_of_params)
        if not param_sets:
            return Cursor(rowcount=0)
        parsed = self.parse(sql)
        statement = parsed.statement
        if (isinstance(statement, ast.Insert) and statement.select is None
                and all(isinstance(expr, (ast.BindParam, ast.Literal))
                        for row in statement.rows for expr in row)):
            return self.db.dml.execute_insert_many(statement, param_sets)
        total = 0
        for params in param_sets:
            cursor = self.execute(sql, params)
            if cursor.rowcount > 0:
                total += cursor.rowcount
        return Cursor(rowcount=total)

    def execute_statement(self, statement: ast.Statement,
                          sql: str = "") -> Cursor:
        """Execute an already-parsed statement (no plan caching).

        Entry point for callers that build ASTs directly; binds must
        already be substituted for non-query statements.
        """
        db = self.db
        if isinstance(statement, ast.Select):
            return self.run_select(statement)
        if isinstance(statement, ast.Explain):
            plan = db.planner.plan_select(statement.query)
            return Cursor(columns=["plan"],
                          rows=iter([(line,) for line in plan.explain()]))
        if isinstance(statement, ast.Insert):
            return db.dml.execute_insert(statement)
        if isinstance(statement, ast.Update):
            return db.dml.execute_update(statement)
        if isinstance(statement, ast.Delete):
            return db.dml.execute_delete(statement)
        if isinstance(statement, ast.Commit):
            db.commit()
            return Cursor(rowcount=0)
        if isinstance(statement, ast.Rollback):
            db.rollback(statement.savepoint)
            return Cursor(rowcount=0)
        if isinstance(statement, ast.BeginTransaction):
            db.begin()
            return Cursor(rowcount=0)
        if isinstance(statement, ast.Savepoint):
            db.savepoint(statement.name)
            return Cursor(rowcount=0)
        if isinstance(statement, ast.SetTransaction):
            db.set_transaction(read_only=statement.read_only,
                               isolation=statement.isolation)
            return Cursor(rowcount=0)
        handler = self._DDL_DISPATCH.get(type(statement))
        if handler is not None:
            return getattr(db.ddl, handler)(statement)
        raise ExecutionError(
            f"unsupported statement {type(statement).__name__}")

    _DDL_DISPATCH = {
        ast.CreateTable: "execute_create_table",
        ast.DropTable: "execute_drop_table",
        ast.TruncateTable: "execute_truncate",
        ast.CreateIndex: "execute_create_index",
        ast.AlterIndex: "execute_alter_index",
        ast.DropIndex: "execute_drop_index",
        ast.CreateOperator: "execute_create_operator",
        ast.DropOperator: "execute_drop_operator",
        ast.CreateIndextype: "execute_create_indextype",
        ast.DropIndextype: "execute_drop_indextype",
        ast.CreateType: "execute_create_type",
        ast.AssociateStatistics: "execute_associate",
        ast.GrantStatement: "execute_grant",
        ast.AnalyzeTable: "execute_analyze",
    }

    def run_select(self, select: ast.Select) -> Cursor:
        """Plan and run a SELECT AST outside the plan cache."""
        db = self.db
        for tref in select.tables:
            db._check_table_privilege(db.catalog.get_table(tref.name),
                                      "select")
        # read-your-writes: deferred maintenance entries against a
        # scanned table must reach the index before the scan starts
        db.dml.flush_deferred_for([tref.name for tref in select.tables])
        plan = db.planner.plan_select(select)
        return self._run_plan(plan, {})

    def explain_lines(self, sql: str, params: Optional[Any] = None,
                      check: Optional[Any] = None) -> List[str]:
        """EXPLAIN surface: plan tree plus a plan-cache status line.

        Shares the SELECT's cache slot — explaining a statement warms
        the cache for its execution and vice versa.
        """
        statement = parse(sql)
        if check is not None:
            check(statement, sql)
        if isinstance(statement, ast.Explain):
            query: ast.Statement = statement.query
            inner_sql = _EXPLAIN_RE.sub("", sql, count=1)
        else:
            query = statement
            inner_sql = sql
        if not isinstance(query, ast.Select):
            raise ExecutionError("explain requires a SELECT")
        bound = self.bind(params)
        if not self._cacheable(query):
            if params is not None:
                query = substitute_binds(query, params)
            plan = self.db.planner.plan_select(query)
            return plan.explain() + ["plan cache: BYPASS (not cacheable)"]
        normalized = normalize_sql(inner_sql)
        entry = self.cache.lookup(normalized, bound.signature,
                                  self.db.catalog)
        if entry is not None:
            return entry.plan.explain() + \
                [f"plan cache: HIT (executions={entry.hits})"]
        plan = self.db.planner.plan_select(query, peek_binds=bound.values)
        parsed = self.parse_artifact(inner_sql, query)
        self.cache.store(normalized, bound.signature,
                         self._entry_for(parsed, plan))
        return plan.explain() + ["plan cache: MISS (stored)"]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _cacheable(self, statement: ast.Statement) -> bool:
        if not isinstance(statement, ast.Select):
            return False
        if statement_has_subquery(statement):
            return False  # subquery results are frozen into the plan
        catalog = self.db.catalog
        for tref in statement.tables:
            if not catalog.has_table(tref.name):
                return False  # dictionary view (or will fail downstream)
        return True

    def _entry_for(self, parsed: ParseArtifact, plan: Any) -> CachedPlan:
        catalog = self.db.catalog
        table_sig = tuple(
            (table.key, size_bucket(table.storage.row_count))
            for table in plan.referenced_tables()
            if not table.stats.analyzed)
        return CachedPlan(plan=plan, catalog_version=catalog.version,
                          table_sig=table_sig,
                          bind_names=parsed.bind_names, sql=parsed.sql,
                          compiled_nodes=getattr(plan, "compiled_nodes", 0))

    @staticmethod
    def _require_binds(parsed: ParseArtifact, bound: BindArtifact) -> None:
        for name in parsed.bind_names:
            if name not in bound.values:
                raise ExecutionError(f"no value supplied for bind :{name}")

    def _execute_plan(self, plan: Any, values: Dict[str, Any]) -> Cursor:
        """Execute stage for a compiled (possibly shared) plan."""
        db = self.db
        tables = plan.referenced_tables()
        for table in tables:
            db._check_table_privilege(table, "select")
        db.dml.flush_deferred_for([table.name for table in tables])
        return self._run_plan(plan, values)

    def _run_plan(self, plan: Any, values: Dict[str, Any]) -> Cursor:
        """Shared Execute stage: snapshot reads, no table locks.

        SELECTs no longer acquire LockManager S locks — the statement
        snapshot (taken here, *before* any rows stream) gives each query
        a consistent view regardless of concurrent DML, and the cursor
        holds the snapshot until it closes so the low-water mark can't
        prune versions out from under an open result set.
        """
        db = self.db
        snapshot = db.statement_snapshot()
        tracker = ScanTracker()
        rows = self._rows_with_degrade(plan, values, tracker, snapshot)
        return Cursor(columns=plan.column_names, rows=rows, tracker=tracker,
                      snapshot=snapshot)

    def _rows_with_degrade(self, plan: Any, values: Dict[str, Any],
                           tracker: ScanTracker, snapshot: Any):
        """Row stream with the scan-phase degradation policy (§2.6).

        A domain-index scan callback that fails before the first row —
        under ``skip_unusable_indexes`` — marks the index UNUSABLE,
        replans (the degraded index is no longer a candidate, so the
        optimizer falls back to functional evaluation), and re-runs
        against the *same* snapshot and tracker: the retry reads the
        exact SCN the statement started at, and cursor close still
        drives ``ODCIIndexClose`` once per opened scan.  A failure after
        rows have streamed cannot retry (rows would repeat) and
        propagates.
        """
        db = self.db
        source = getattr(plan, "source", None)
        for attempt in (0, 1):
            rows = Executor(db, values, tracker, snapshot=snapshot).run(plan)
            emitted = False
            try:
                for row in rows:
                    emitted = True
                    yield row
                return
            except CallbackError as exc:
                if (attempt == 1 or emitted or exc.phase != "scan"
                        or not exc.index_name
                        or not db.skip_unusable_indexes
                        or not db.catalog.has_index(exc.index_name)
                        or source is None):
                    raise
                db.catalog.set_index_state(exc.index_name,
                                           IndexState.UNUSABLE)
                db._trace(f"select:degrade index {exc.index_name} -> "
                          f"UNUSABLE; retrying statement [{exc.routine}]")
                plan = db.planner.plan_select(source, peek_binds=values)
