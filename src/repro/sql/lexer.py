"""SQL lexer.

Produces a flat token stream for the recursive-descent parser.  The
dialect is a practical subset of Oracle SQL plus the paper's DDL
extensions (CREATE OPERATOR, CREATE INDEXTYPE, INDEXTYPE IS ...
PARAMETERS, ASSOCIATE STATISTICS).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator, List

from repro.errors import ParseError


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    BIND = "bind"
    EOF = "eof"


#: Reserved words recognized as keywords (everything else is an IDENT).
KEYWORDS = frozenset("""
    SELECT FROM WHERE AND OR NOT AS ON ORDER BY GROUP HAVING ASC DESC DISTINCT
    INSERT INTO VALUES UPDATE SET DELETE CREATE TABLE INDEX DROP ALTER
    TRUNCATE UNIQUE PRIMARY KEY NULL IS LIKE BETWEEN IN EXISTS
    INDEXTYPE PARAMETERS OPERATOR BINDING RETURN USING FOR TYPE OBJECT
    ASSOCIATE STATISTICS WITH INDEXTYPES FUNCTIONS ANALYZE COMPUTE ESTIMATE
    COMMIT ROLLBACK SAVEPOINT TO BEGIN WORK TRANSACTION
    ORGANIZATION HEAP LIMIT OFFSET EXPLAIN PLAN VARRAY OF NESTED
    TRUE FALSE FORCE REBUILD UNUSABLE ANCILLARY GRANT REVOKE ALL
""".split())

_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>", ":=", "||")
_ONE_CHAR_OPS = "+-*/=<>"
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: TokenKind
    text: str
    value: Any
    pos: int

    def is_keyword(self, *words: str) -> bool:
        """True when this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text in words

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r})"


def tokenize(sql: str) -> List[Token]:
    """Lex ``sql`` into tokens (ending with one EOF token)."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise ParseError("unterminated comment", i, sql)
            i = end + 2
            continue
        if ch == "'":
            text, value, i = _string(sql, i)
            yield Token(TokenKind.STRING, text, value, i - len(text))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            while i < n and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            if i < n and sql[i] in "eE":
                i += 1
                if i < n and sql[i] in "+-":
                    i += 1
                while i < n and sql[i].isdigit():
                    i += 1
            text = sql[start:i]
            try:
                value: Any = int(text)
            except ValueError:
                try:
                    value = float(text)
                except ValueError:
                    raise ParseError(f"bad number {text!r}", start, sql) from None
            yield Token(TokenKind.NUMBER, text, value, start)
            continue
        if ch.isalpha() or ch == "_" or ch == '"':
            start = i
            if ch == '"':
                end = sql.find('"', i + 1)
                if end < 0:
                    raise ParseError("unterminated quoted identifier", i, sql)
                name = sql[i + 1:end]
                i = end + 1
                yield Token(TokenKind.IDENT, name, name, start)
                continue
            while i < n and (sql[i].isalnum() or sql[i] in "_$#"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenKind.KEYWORD, upper, upper, start)
            else:
                yield Token(TokenKind.IDENT, word, word, start)
            continue
        if ch == ":" and i + 1 < n and (sql[i + 1].isalnum()
                                        or sql[i + 1] == "_"):
            start = i
            i += 1
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            name = sql[start + 1:i]
            yield Token(TokenKind.BIND, sql[start:i], name, start)
            continue
        two = sql[i:i + 2]
        if two in _TWO_CHAR_OPS:
            yield Token(TokenKind.OP, two, two, i)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            yield Token(TokenKind.OP, ch, ch, i)
            i += 1
            continue
        if ch in _PUNCT:
            yield Token(TokenKind.PUNCT, ch, ch, i)
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i, sql)
    yield Token(TokenKind.EOF, "", None, n)


def _string(sql: str, i: int):
    # standard SQL string literal with '' as the escape for a quote
    start = i
    i += 1
    parts: List[str] = []
    while True:
        end = sql.find("'", i)
        if end < 0:
            raise ParseError("unterminated string literal", start, sql)
        parts.append(sql[i:end])
        if sql.startswith("''", end):
            parts.append("'")
            i = end + 2
            continue
        i = end + 1
        break
    value = "".join(parts)
    return sql[start:i], value, i
