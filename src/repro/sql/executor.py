"""The iterator executor.

Interprets :class:`~repro.sql.planner.QueryPlan` trees as Python
generators over :class:`~repro.sql.expressions.RowContext`.  Everything
streams: a LIMIT or a consumer that stops early never pulls the rest of
the pipeline — which is precisely the §3.2.1 "pipelined fashion ... all
rows that satisfy the text predicate do not have to be identified before
the first result row can be returned" behaviour the E1 benchmark
measures via time-to-first-row.

The :meth:`Executor._iter_domain_scan` method is the server side of the
ODCI scan protocol: it builds the ODCIPredInfo/ODCIQueryInfo descriptors,
invokes ``index_start``, re-enters ``index_fetch`` batch by batch until
the cartridge reports the null-terminator, fetches the streamed rowids
from the base table, and finally calls ``index_close``.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.callbacks import CallbackPhase
from repro.core.odci import ODCIPredInfo, ODCIQueryInfo
from repro.errors import ExecutionError, ODCIError
from repro.sql import ast_nodes as ast
from repro.sql import planner as pl
from repro.sql.catalog import TableDef
from repro.sql.expressions import (
    AggregateCall, Evaluator, RowContext, aggregate_key)
from repro.types.values import NULL, is_null, sql_compare


class Executor:
    """Runs query plans against the database's storage and framework.

    One instance is created per statement execution: ``binds`` carries
    that execution's bind-variable values (cached plans keep BindParam
    nodes in the tree), and ``tracker`` (a
    :class:`~repro.core.scan_context.ScanTracker`) collects closers for
    any domain-index scans opened, so an abandoned cursor can release
    them deterministically.
    """

    def __init__(self, db: Any, binds: Optional[Dict[str, Any]] = None,
                 tracker: Optional[Any] = None):
        self.db = db
        self.catalog = db.catalog
        self.evaluator = Evaluator(db.catalog, binds)
        self.tracker = tracker

    # -- public entry points -----------------------------------------------

    def run(self, plan: pl.QueryPlan) -> Iterator[Tuple[Any, ...]]:
        """Yield output tuples for the plan (streaming)."""
        root = plan.root
        if isinstance(root, pl.LimitNode):
            yield from self._apply_limit(root)
            return
        yield from self._project_rows(root)

    def _apply_limit(self, node: pl.LimitNode) -> Iterator[Tuple[Any, ...]]:
        produced = 0
        skipped = 0
        for row in self._project_rows(node.child):
            if node.offset and skipped < node.offset:
                skipped += 1
                continue
            if node.limit is not None and produced >= node.limit:
                return
            produced += 1
            yield row

    def _project_rows(self, node: pl.PlanNode) -> Iterator[Tuple[Any, ...]]:
        if isinstance(node, pl.DistinctNode):
            seen = set()
            for row in self._project_rows(node.child):
                key = tuple(repr(v) for v in row)
                if key in seen:
                    continue
                seen.add(key)
                yield row
            return
        if not isinstance(node, pl.ProjectNode):
            raise ExecutionError(f"expected projection at plan top, got "
                                 f"{node.label()}")
        for ctx in self.iter_node(node.child):
            yield tuple(self.evaluator.evaluate(expr, ctx)
                        for expr, _ in node.items)

    # -- node dispatch ----------------------------------------------------------

    def iter_node(self, node: pl.PlanNode) -> Iterator[RowContext]:
        """Yield row contexts for any relational plan node."""
        if isinstance(node, pl.FullScan):
            return self._iter_full_scan(node)
        if isinstance(node, pl.BTreeScan):
            return self._iter_btree_scan(node)
        if isinstance(node, pl.HashScan):
            return self._iter_hash_scan(node)
        if isinstance(node, pl.BitmapScan):
            return self._iter_bitmap_scan(node)
        if isinstance(node, pl.IOTPrefixScan):
            return self._iter_iot_prefix_scan(node)
        if isinstance(node, pl.DomainScan):
            return self._iter_domain_scan(node)
        if isinstance(node, pl.FilterNode):
            return self._iter_filter(node)
        if isinstance(node, pl.NestedLoopJoin):
            return self._iter_nl_join(node)
        if isinstance(node, pl.IndexedNLJoin):
            return self._iter_indexed_nl_join(node)
        if isinstance(node, pl.DomainNLJoin):
            return self._iter_domain_nl_join(node)
        if isinstance(node, pl.HashJoin):
            return self._iter_hash_join(node)
        if isinstance(node, pl.SortNode):
            return self._iter_sort(node)
        if isinstance(node, pl.GroupByNode):
            return self._iter_group_by(node)
        raise ExecutionError(f"cannot execute plan node {node.label()}")

    # -- scans ---------------------------------------------------------------

    def _make_ctx(self, table: TableDef, binding: str, rowid: Any,
                  row: List[Any]) -> RowContext:
        values: Dict[Tuple[str, str], Any] = {}
        for col, value in zip(table.columns, row):
            values[(binding, col.name.lower())] = value
        ctx = RowContext(values=values)
        ctx.rowids[binding] = rowid
        ctx.values[(binding, "rowid")] = rowid
        return ctx

    def _passes(self, predicate: Optional[ast.Expr], ctx: RowContext) -> bool:
        if predicate is None:
            return True
        return self.evaluator.truth(predicate, ctx) is True

    def _iter_full_scan(self, node: pl.FullScan) -> Iterator[RowContext]:
        for rowid, row in node.table.storage.scan():
            ctx = self._make_ctx(node.table, node.binding_name, rowid, row)
            if self._passes(node.filter, ctx):
                yield ctx

    def _const(self, expr: Optional[ast.Expr]) -> Any:
        if expr is None:
            return None
        return self.evaluator.evaluate(expr, RowContext())

    def _fetch_ctx(self, node, rowid: Any) -> Optional[RowContext]:
        row = node.table.storage.fetch_or_none(rowid)
        if row is None:
            return None
        return self._make_ctx(node.table, node.binding_name, rowid, row)

    def _iter_iot_prefix_scan(self, node: pl.IOTPrefixScan
                              ) -> Iterator[RowContext]:
        key = self._const(node.key)
        if is_null(key):
            return
        for rowid, row in node.table.storage.key_prefix_scan([key]):
            ctx = self._make_ctx(node.table, node.binding_name, rowid, row)
            if self._passes(node.filter, ctx):
                yield ctx

    def _iter_btree_scan(self, node: pl.BTreeScan) -> Iterator[RowContext]:
        low = self._const(node.low)
        high = self._const(node.high)
        structure = node.index.structure
        for __, rowid in structure.range_scan(low, high,
                                              node.low_inclusive,
                                              node.high_inclusive):
            ctx = self._fetch_ctx(node, rowid)
            if ctx is not None and self._passes(node.filter, ctx):
                yield ctx

    def _iter_hash_scan(self, node: pl.HashScan) -> Iterator[RowContext]:
        key = self._const(node.key)
        for rowid in node.index.structure.search(key):
            ctx = self._fetch_ctx(node, rowid)
            if ctx is not None and self._passes(node.filter, ctx):
                yield ctx

    def _iter_bitmap_scan(self, node: pl.BitmapScan) -> Iterator[RowContext]:
        keys = [self._const(k) for k in node.keys]
        for rowid in node.index.structure.search_any_of(keys):
            ctx = self._fetch_ctx(node, rowid)
            if ctx is not None and self._passes(node.filter, ctx):
                yield ctx

    # -- the domain index scan (ODCI orchestration) ----------------------------

    def _iter_domain_scan(self, node: pl.DomainScan) -> Iterator[RowContext]:
        domain = node.index.domain
        if domain is None or domain.methods is None:
            raise ODCIError("DomainScan", f"index {node.index.name} has no "
                            "methods instance")
        call = node.operator_call
        # evaluate the operator's constant value arguments (everything
        # after the indexed column, minus a trailing ancillary label)
        value_args = call.args[1:]
        if call.label is not None:
            value_args = value_args[:-1]
        const_ctx = RowContext()
        evaluated_args = tuple(self.evaluator.evaluate(a, const_ctx)
                               for a in value_args)
        # the plan (and its pred_info) may be shared via the plan cache:
        # never mutate it — take a per-execution copy with these args
        pred_info = node.pred_info.with_args(evaluated_args)
        query_info = ODCIQueryInfo(first_rows=node.first_rows,
                                   ancillary_label=call.label)
        env = self.db.make_env(CallbackPhase.SCAN, domain)
        ia = domain.index_info()
        methods = domain.methods
        env.trace(f"exec:ODCIIndexStart({domain.indextype_name}:"
                  f"{node.index.name})")
        dispatcher = self.db.dispatcher
        context = dispatcher.call(
            "ODCIIndexStart", methods.index_start,
            ia, pred_info, query_info, env,
            index_name=node.index.name, phase="scan")
        closer = self._make_closer(methods, context, env,
                                   index_name=node.index.name)
        batch_size = self.db.fetch_batch_size
        try:
            while True:
                env.trace(f"exec:ODCIIndexFetch(n={batch_size})")
                result = dispatcher.call(
                    "ODCIIndexFetch", methods.index_fetch,
                    context, batch_size, env,
                    index_name=node.index.name, phase="scan")
                aux = result.aux or []
                for i, rowid in enumerate(result.rowids):
                    ctx = self._fetch_ctx(node, rowid)
                    if ctx is None:
                        continue
                    if call.label is not None and i < len(aux):
                        ctx.aux[call.label] = aux[i]
                    if self._passes(node.filter, ctx):
                        yield ctx
                if result.done or not result.rowids:
                    break
        finally:
            env.trace("exec:ODCIIndexClose()")
            closer()

    def _make_closer(self, methods, context, env, index_name: str = ""):
        """An idempotent ODCIIndexClose callable, registered with the
        statement's scan tracker (if any) so cursor close can run it."""
        closed = [False]

        def closer() -> None:
            if closed[0]:
                return
            closed[0] = True
            if self.tracker is not None:
                self.tracker.unregister(closer)
            self.db.dispatcher.call(
                "ODCIIndexClose", methods.index_close, context, env,
                index_name=index_name, phase="scan")

        if self.tracker is not None:
            self.tracker.register(closer)
        return closer

    # -- composite nodes ------------------------------------------------------

    def _iter_filter(self, node: pl.FilterNode) -> Iterator[RowContext]:
        for ctx in self.iter_node(node.child):
            if self._passes(node.predicate, ctx):
                yield ctx

    def _iter_nl_join(self, node: pl.NestedLoopJoin) -> Iterator[RowContext]:
        inner_rows = list(self.iter_node(node.inner))
        for outer_ctx in self.iter_node(node.outer):
            for inner_ctx in inner_rows:
                merged = outer_ctx.merged_with(inner_ctx)
                if self._passes(node.condition, merged):
                    yield merged

    def _iter_indexed_nl_join(self, node: pl.IndexedNLJoin
                              ) -> Iterator[RowContext]:
        structure = node.index.structure
        for outer_ctx in self.iter_node(node.outer):
            key = self.evaluator.evaluate(node.outer_key, outer_ctx)
            if is_null(key):
                continue
            for rowid in structure.search(key):
                row = node.inner_table.storage.fetch_or_none(rowid)
                if row is None:
                    continue
                inner_ctx = self._make_ctx(node.inner_table,
                                           node.inner_binding, rowid, row)
                if not self._passes(node.inner_filter, inner_ctx):
                    continue
                merged = outer_ctx.merged_with(inner_ctx)
                if self._passes(node.condition, merged):
                    yield merged

    def _iter_domain_nl_join(self, node: pl.DomainNLJoin
                             ) -> Iterator[RowContext]:
        """Per outer row, re-run the domain index scan with bound args.

        "Multiple sets of invocations of operators can be interleaved.
        At any given time, a number of operators can be evaluated using
        the same indextype routines." (§2.2.3)
        """
        domain = node.index.domain
        if domain is None or domain.methods is None:
            raise ODCIError("DomainNLJoin",
                            f"index {node.index.name} has no methods instance")
        call = node.operator_call
        value_args = call.args[1:]
        if call.label is not None:
            value_args = value_args[:-1]
        env = self.db.make_env(CallbackPhase.SCAN, domain)
        ia = domain.index_info()
        methods = domain.methods
        batch_size = self.db.fetch_batch_size
        for outer_ctx in self.iter_node(node.outer):
            evaluated = tuple(self.evaluator.evaluate(a, outer_ctx)
                              for a in value_args)
            pred_info = ODCIPredInfo(
                operator_name=call.operator.name,
                operator_args=evaluated,
                lower_bound=node.lower, upper_bound=node.upper,
                include_lower=node.include_lower,
                include_upper=node.include_upper)
            query_info = ODCIQueryInfo(ancillary_label=call.label)
            env.trace(f"exec:ODCIIndexStart({domain.indextype_name}:"
                      f"{node.index.name}) [join probe]")
            dispatcher = self.db.dispatcher
            context = dispatcher.call(
                "ODCIIndexStart", methods.index_start,
                ia, pred_info, query_info, env,
                index_name=node.index.name, phase="scan")
            closer = self._make_closer(methods, context, env,
                                       index_name=node.index.name)
            try:
                while True:
                    result = dispatcher.call(
                        "ODCIIndexFetch", methods.index_fetch,
                        context, batch_size, env,
                        index_name=node.index.name, phase="scan")
                    aux = result.aux or []
                    for i, rowid in enumerate(result.rowids):
                        row = node.inner_table.storage.fetch_or_none(rowid)
                        if row is None:
                            continue
                        inner_ctx = self._make_ctx(
                            node.inner_table, node.inner_binding, rowid, row)
                        if call.label is not None and i < len(aux):
                            inner_ctx.aux[call.label] = aux[i]
                        if not self._passes(node.inner_filter, inner_ctx):
                            continue
                        merged = outer_ctx.merged_with(inner_ctx)
                        if self._passes(node.condition, merged):
                            yield merged
                    if result.done or not result.rowids:
                        break
            finally:
                closer()

    def _iter_hash_join(self, node: pl.HashJoin) -> Iterator[RowContext]:
        build: Dict[Tuple[Any, ...], List[RowContext]] = {}
        for right_ctx in self.iter_node(node.right):
            key = tuple(self.evaluator.evaluate(k, right_ctx)
                        for k in node.right_keys)
            if any(is_null(v) for v in key):
                continue
            build.setdefault(key, []).append(right_ctx)
        for left_ctx in self.iter_node(node.left):
            key = tuple(self.evaluator.evaluate(k, left_ctx)
                        for k in node.left_keys)
            if any(is_null(v) for v in key):
                continue
            for right_ctx in build.get(key, ()):
                merged = left_ctx.merged_with(right_ctx)
                if self._passes(node.condition, merged):
                    yield merged

    def _iter_sort(self, node: pl.SortNode) -> Iterator[RowContext]:
        rows = list(self.iter_node(node.child))
        items = node.order_items

        def compare(a: RowContext, b: RowContext) -> int:
            for item in items:
                va = self.evaluator.evaluate(item.expr, a)
                vb = self.evaluator.evaluate(item.expr, b)
                if is_null(va) and is_null(vb):
                    continue
                if is_null(va):
                    return 1  # NULLS LAST
                if is_null(vb):
                    return -1
                cmp = sql_compare(va, vb)
                if is_null(cmp) or cmp == 0:
                    continue
                return -cmp if item.descending else cmp
            return 0

        rows.sort(key=functools.cmp_to_key(compare))
        return iter(rows)

    def _iter_group_by(self, node: pl.GroupByNode) -> Iterator[RowContext]:
        groups: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        order: List[Tuple[Any, ...]] = []
        aggregates = node.aggregates

        for ctx in self.iter_node(node.child):
            key = tuple(
                ("\x00NULL" if is_null(v) else v)
                for v in (self.evaluator.evaluate(e, ctx)
                          for e in node.group_exprs))
            try:
                hash(key)
            except TypeError:
                key = tuple(repr(k) for k in key)
            state = groups.get(key)
            if state is None:
                state = {"ctx": ctx, "accs": [_Accumulator(a) for a in aggregates]}
                groups[key] = state
                order.append(key)
            for acc in state["accs"]:
                acc.add(self.evaluator, ctx)

        if not groups and not node.group_exprs:
            # global aggregate over an empty input still yields one row
            empty = RowContext()
            for agg in aggregates:
                empty.agg[aggregate_key(agg)] = _Accumulator(agg).result()
            if node.having is None or self._passes(node.having, empty):
                yield empty
            return

        for key in order:
            state = groups[key]
            out: RowContext = state["ctx"]
            for agg, acc in zip(aggregates, state["accs"]):
                out.agg[aggregate_key(agg)] = acc.result()
            if node.having is None or self._passes(node.having, out):
                yield out


class _Accumulator:
    """Streaming state for one aggregate call."""

    def __init__(self, call: AggregateCall):
        self.call = call
        self.count = 0
        self.total: Any = 0
        self.min_value: Any = None
        self.max_value: Any = None
        self.distinct_seen = set() if call.distinct else None

    def add(self, evaluator: Evaluator, ctx: RowContext) -> None:
        call = self.call
        if call.arg is None:  # COUNT(*)
            self.count += 1
            return
        value = evaluator.evaluate(call.arg, ctx)
        if is_null(value):
            return
        if self.distinct_seen is not None:
            marker = value if isinstance(value, (int, float, str, bool)) \
                else repr(value)
            if marker in self.distinct_seen:
                return
            self.distinct_seen.add(marker)
        self.count += 1
        if call.func in ("sum", "avg"):
            self.total += value
        if call.func == "min":
            if self.min_value is None or value < self.min_value:
                self.min_value = value
        if call.func == "max":
            if self.max_value is None or value > self.max_value:
                self.max_value = value

    def result(self) -> Any:
        func = self.call.func
        if func == "count":
            return self.count
        if self.count == 0:
            return NULL
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count
        if func == "min":
            return self.min_value
        return self.max_value
