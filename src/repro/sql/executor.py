"""The batch-pipelined executor.

Runs :class:`~repro.sql.planner.QueryPlan` trees over
:class:`~repro.sql.expressions.RowContext` values.  Everything still
streams: a LIMIT or a consumer that stops early never pulls the rest of
the pipeline — which is precisely the §3.2.1 "pipelined fashion ... all
rows that satisfy the text predicate do not have to be identified before
the first result row can be returned" behaviour the E1 benchmark
measures via time-to-first-row.  The unit of streaming, however, is a
*batch* of rows where the producer is naturally batched: full scans move
page-at-a-time (:meth:`~repro.storage.heap.HeapTable.scan_batches`), and
domain scans materialize each ODCIIndexFetch result — which the protocol
already returns in batches — into one row batch.

Row expressions come pre-compiled on the plan: the planner runs
:func:`repro.sql.compile.compile_plan` once, at plan time, so the
closures ride the shared plan cache across sessions.  The executor
resolves each slot through :meth:`Executor._truth_fn` /
:meth:`Executor._value_fns`, falling back to the tree-walking
:class:`~repro.sql.expressions.Evaluator` for any expression the
compiler declined (per-expression, so one OperatorCall in a filter does
not deoptimize its neighbours).

The :meth:`Executor._batches_domain_scan` method is the server side of
the ODCI scan protocol: it builds the ODCIPredInfo/ODCIQueryInfo
descriptors, invokes ``index_start``, re-enters ``index_fetch`` batch by
batch until the cartridge reports the null-terminator, fetches the
streamed rowids from the base table, and finally calls ``index_close``.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, \
    Tuple

from repro.core.callbacks import CallbackPhase
from repro.core.odci import ODCIPredInfo, ODCIQueryInfo
from repro.errors import ExecutionError, ODCIError
from repro.sql import ast_nodes as ast
from repro.sql import planner as pl
from repro.sql.catalog import TableDef
from repro.sql.expressions import (
    AggregateCall, Evaluator, RowContext, aggregate_key)
from repro.types.values import NULL, is_null, sql_compare

#: cap on the per-executor constant-expression memo (safety valve for
#: the session's long-lived bindless executor)
_CONST_CACHE_LIMIT = 1024


def _chunked(rows: Iterable[RowContext], size: int
             ) -> Iterator[List[RowContext]]:
    """Regroup a row stream into batches of at most ``size`` rows."""
    size = max(1, size)
    batch: List[RowContext] = []
    for ctx in rows:
        batch.append(ctx)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def _flatten(batches: Iterable[List[RowContext]]) -> Iterator[RowContext]:
    for batch in batches:
        yield from batch


class Executor:
    """Runs query plans against the database's storage and framework.

    One instance is created per statement execution: ``binds`` carries
    that execution's bind-variable values (cached plans keep BindParam
    nodes in the tree — and compiled closures take the bind set as an
    argument — so the shared plan is never specialized to one
    execution's values), and ``tracker`` (a
    :class:`~repro.core.scan_context.ScanTracker`) collects closers for
    any domain-index scans opened, so an abandoned cursor can release
    them deterministically.
    """

    def __init__(self, db: Any, binds: Optional[Dict[str, Any]] = None,
                 tracker: Optional[Any] = None,
                 snapshot: Optional[Any] = None):
        self.db = db
        self.catalog = db.catalog
        self.binds = binds or {}
        self.evaluator = Evaluator(db.catalog, binds)
        self.tracker = tracker
        #: MVCC snapshot all reads resolve against (None → current mode:
        #: DML target selection and the snapshot_reads=False seed path)
        self.snapshot = snapshot
        self.use_compiled = getattr(db, "compile_expressions", True)
        self.batch_size = getattr(db, "fetch_batch_size", 32)
        #: id(expr) -> (expr, value); the expr reference keeps the id
        #: from being recycled while the entry lives
        self._const_cache: Dict[int, Tuple[ast.Expr, Any]] = {}

    # -- public entry points -----------------------------------------------

    def run(self, plan: pl.QueryPlan) -> Iterator[Tuple[Any, ...]]:
        """Yield output tuples for the plan (streaming)."""
        root = plan.root
        if isinstance(root, pl.LimitNode):
            yield from self._apply_limit(root)
            return
        yield from self._project_rows(root)

    def _apply_limit(self, node: pl.LimitNode) -> Iterator[Tuple[Any, ...]]:
        produced = 0
        skipped = 0
        for row in self._project_rows(node.child):
            if node.offset and skipped < node.offset:
                skipped += 1
                continue
            if node.limit is not None and produced >= node.limit:
                return
            produced += 1
            yield row

    def _project_rows(self, node: pl.PlanNode) -> Iterator[Tuple[Any, ...]]:
        if isinstance(node, pl.DistinctNode):
            seen = set()
            for row in self._project_rows(node.child):
                key = tuple(repr(v) for v in row)
                if key in seen:
                    continue
                seen.add(key)
                yield row
            return
        if not isinstance(node, pl.ProjectNode):
            raise ExecutionError(f"expected projection at plan top, got "
                                 f"{node.label()}")
        fns = self._value_fns(node, "items", [e for e, _ in node.items])
        for batch in self.iter_batches(node.child):
            for ctx in batch:
                yield tuple(fn(ctx) for fn in fns)

    # -- compiled-slot resolution ------------------------------------------

    def _truth_fn(self, node: pl.PlanNode, slot: str,
                  predicate: Optional[ast.Expr]
                  ) -> Optional[Callable[[RowContext], bool]]:
        """Per-row predicate callable (strict True test), or None."""
        if predicate is None:
            return None
        fn = node.compiled.get(slot) if self.use_compiled else None
        if fn is not None:
            binds = self.binds
            return lambda ctx: fn(ctx, binds) is True
        evaluator = self.evaluator
        return lambda ctx: evaluator.truth(predicate, ctx) is True

    def _value_fn(self, node: pl.PlanNode, slot: str, expr: ast.Expr
                  ) -> Callable[[RowContext], Any]:
        """Per-row value callable for a single expression slot."""
        fn = node.compiled.get(slot) if self.use_compiled else None
        if fn is not None:
            binds = self.binds
            return lambda ctx: fn(ctx, binds)
        evaluator = self.evaluator
        return lambda ctx: evaluator.evaluate(expr, ctx)

    def _value_fns(self, node: pl.PlanNode, slot: str,
                   exprs: List[ast.Expr]
                   ) -> List[Callable[[RowContext], Any]]:
        """Per-row value callables for a list slot, with per-index
        interpreter fallback where compilation declined."""
        compiled = node.compiled.get(slot) if self.use_compiled else None
        evaluator = self.evaluator
        binds = self.binds
        fns: List[Callable[[RowContext], Any]] = []
        for i, expr in enumerate(exprs):
            fn = compiled[i] if compiled is not None and i < len(compiled) \
                else None
            if fn is not None:
                fns.append(lambda ctx, f=fn: f(ctx, binds))
            else:
                fns.append(lambda ctx, e=expr: evaluator.evaluate(e, ctx))
        return fns

    # -- node dispatch ----------------------------------------------------------

    def iter_node(self, node: pl.PlanNode) -> Iterator[RowContext]:
        """Yield row contexts for any relational plan node."""
        if isinstance(node, (pl.FullScan, pl.DomainScan, pl.FilterNode)):
            return _flatten(self.iter_batches(node))
        if isinstance(node, pl.BTreeScan):
            return self._iter_btree_scan(node)
        if isinstance(node, pl.HashScan):
            return self._iter_hash_scan(node)
        if isinstance(node, pl.BitmapScan):
            return self._iter_bitmap_scan(node)
        if isinstance(node, pl.IOTPrefixScan):
            return self._iter_iot_prefix_scan(node)
        if isinstance(node, pl.NestedLoopJoin):
            return self._iter_nl_join(node)
        if isinstance(node, pl.IndexedNLJoin):
            return self._iter_indexed_nl_join(node)
        if isinstance(node, pl.DomainNLJoin):
            return self._iter_domain_nl_join(node)
        if isinstance(node, pl.HashJoin):
            return self._iter_hash_join(node)
        if isinstance(node, pl.SortNode):
            return self._iter_sort(node)
        if isinstance(node, pl.GroupByNode):
            return self._iter_group_by(node)
        raise ExecutionError(f"cannot execute plan node {node.label()}")

    def iter_batches(self, node: pl.PlanNode
                     ) -> Iterator[List[RowContext]]:
        """Yield row contexts in batches.

        Scans whose producers are naturally batched (heap pages, ODCI
        fetch results) keep their batch shape through the pipeline;
        other nodes are regrouped into ``fetch_batch_size`` chunks so
        batch consumers (filter, project) always run their tight loop.
        """
        if isinstance(node, pl.FullScan):
            return self._batches_full_scan(node)
        if isinstance(node, pl.DomainScan):
            return self._batches_domain_scan(node)
        if isinstance(node, pl.FilterNode):
            return self._batches_filter(node)
        return _chunked(self.iter_node(node), self.batch_size)

    # -- scans ---------------------------------------------------------------

    def _make_ctx(self, table: TableDef, binding: str, rowid: Any,
                  row: List[Any]) -> RowContext:
        return self._ctx_factory(table, binding)(rowid, row)

    def _ctx_factory(self, table: TableDef, binding: str
                     ) -> Callable[[Any, List[Any]], RowContext]:
        """A (rowid, row) -> RowContext constructor with the column keys
        precomputed once per scan instead of once per row."""
        cols = [(binding, col.name.lower()) for col in table.columns]
        rowid_key = (binding, "rowid")

        def make(rowid: Any, row: List[Any]) -> RowContext:
            values = dict(zip(cols, row))
            values[rowid_key] = rowid
            ctx = RowContext(values=values)
            ctx.rowids[binding] = rowid
            return ctx
        return make

    def _passes(self, predicate: Optional[ast.Expr], ctx: RowContext) -> bool:
        if predicate is None:
            return True
        return self.evaluator.truth(predicate, ctx) is True

    def _batches_full_scan(self, node: pl.FullScan
                           ) -> Iterator[List[RowContext]]:
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        storage = node.table.storage
        snapshot = self.snapshot \
            if getattr(storage, "versions", None) is not None else None
        scan_batches = getattr(storage, "scan_batches", None)
        if scan_batches is not None:
            pages = scan_batches(snapshot) if snapshot is not None \
                else scan_batches()
        elif snapshot is not None:
            pages = _chunked(storage.scan(snapshot), self.batch_size)
        else:
            pages = _chunked(storage.scan(), self.batch_size)
        if passes is None:
            for page in pages:
                yield [make(rowid, row) for rowid, row in page]
            return
        for page in pages:
            batch = []
            for rowid, row in page:
                ctx = make(rowid, row)
                if passes(ctx):
                    batch.append(ctx)
            if batch:
                yield batch

    def _const(self, expr: Optional[ast.Expr]) -> Any:
        """Evaluate a constant expression, once per statement.

        The same expression object often appears at several call sites
        of one plan (an equality sarg feeds both the low and high bound
        of a B-tree scan); memoize by object identity, holding the expr
        so its id cannot be recycled while the entry lives.
        """
        if expr is None:
            return None
        hit = self._const_cache.get(id(expr))
        if hit is not None and hit[0] is expr:
            return hit[1]
        value = self.evaluator.evaluate(expr, RowContext())
        if len(self._const_cache) >= _CONST_CACHE_LIMIT:
            self._const_cache.clear()
        self._const_cache[id(expr)] = (expr, value)
        return value

    def _fetch_fn(self, storage: Any) -> Callable[[Any], Optional[List[Any]]]:
        """Row fetch callable for a table's storage, resolved against the
        executor's snapshot when the storage is versioned.

        Unversioned storages (dictionary views, test doubles) keep the
        plain current-mode fetch regardless of snapshot."""
        snapshot = self.snapshot
        if snapshot is None or getattr(storage, "versions", None) is None:
            return storage.fetch_or_none
        return lambda rowid: storage.fetch_or_none(rowid, snapshot)

    def _probe(self, structure: Any,
               produce: Callable[[], Iterable[Any]]) -> Iterable[Any]:
        """Run a native-index probe.

        Under a snapshot, readers hold no table locks, so a concurrent
        writer may restructure the index mid-iteration; materialize the
        probe under the structure's latch instead of streaming it."""
        if self.snapshot is None:
            return produce()
        latch = getattr(structure, "latch", None)
        if latch is None:
            return produce()
        with latch:
            return list(produce())

    def _fetch_ctx(self, node, rowid: Any) -> Optional[RowContext]:
        row = self._fetch_fn(node.table.storage)(rowid)
        if row is None:
            return None
        return self._make_ctx(node.table, node.binding_name, rowid, row)

    def _iter_iot_prefix_scan(self, node: pl.IOTPrefixScan
                              ) -> Iterator[RowContext]:
        key = self._const(node.key)
        if is_null(key):
            return
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        storage = node.table.storage
        if self.snapshot is not None \
                and getattr(storage, "versions", None) is not None:
            pairs = storage.key_prefix_scan([key], snapshot=self.snapshot)
        else:
            pairs = storage.key_prefix_scan([key])
        for rowid, row in pairs:
            ctx = make(rowid, row)
            if passes is None or passes(ctx):
                yield ctx

    def _iter_btree_scan(self, node: pl.BTreeScan) -> Iterator[RowContext]:
        low = self._const(node.low)
        high = self._const(node.high)
        structure = node.index.structure
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        fetch = self._fetch_fn(node.table.storage)
        for __, rowid in self._probe(
                structure,
                lambda: structure.range_scan(low, high,
                                             node.low_inclusive,
                                             node.high_inclusive)):
            row = fetch(rowid)
            if row is None:
                continue
            ctx = make(rowid, row)
            if passes is None or passes(ctx):
                yield ctx

    def _iter_hash_scan(self, node: pl.HashScan) -> Iterator[RowContext]:
        key = self._const(node.key)
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        fetch = self._fetch_fn(node.table.storage)
        structure = node.index.structure
        for rowid in self._probe(structure, lambda: structure.search(key)):
            row = fetch(rowid)
            if row is None:
                continue
            ctx = make(rowid, row)
            if passes is None or passes(ctx):
                yield ctx

    def _iter_bitmap_scan(self, node: pl.BitmapScan) -> Iterator[RowContext]:
        keys = [self._const(k) for k in node.keys]
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        fetch = self._fetch_fn(node.table.storage)
        structure = node.index.structure
        for rowid in self._probe(structure,
                                 lambda: structure.search_any_of(keys)):
            row = fetch(rowid)
            if row is None:
                continue
            ctx = make(rowid, row)
            if passes is None or passes(ctx):
                yield ctx

    # -- the domain index scan (ODCI orchestration) ----------------------------

    def _batches_domain_scan(self, node: pl.DomainScan
                             ) -> Iterator[List[RowContext]]:
        domain = node.index.domain
        if domain is None or domain.methods is None:
            raise ODCIError("DomainScan", f"index {node.index.name} has no "
                            "methods instance")
        call = node.operator_call
        # evaluate the operator's constant value arguments (everything
        # after the indexed column, minus a trailing ancillary label)
        value_args = call.args[1:]
        if call.label is not None:
            value_args = value_args[:-1]
        const_ctx = RowContext()
        evaluated_args = tuple(self.evaluator.evaluate(a, const_ctx)
                               for a in value_args)
        # the plan (and its pred_info) may be shared via the plan cache:
        # never mutate it — take a per-execution copy with these args
        pred_info = node.pred_info.with_args(evaluated_args)
        query_info = ODCIQueryInfo(first_rows=node.first_rows,
                                   ancillary_label=call.label)
        # pin any callback-SQL the cartridge runs during this scan to the
        # statement's snapshot: ODCIIndexStart/Fetch observe one frozen
        # database state no matter how long the fetch loop streams
        env = self.db.make_env(CallbackPhase.SCAN, domain,
                               snapshot=self.snapshot)
        ia = domain.index_info()
        methods = domain.methods
        if env.trace_enabled:
            env.trace(f"exec:ODCIIndexStart({domain.indextype_name}:"
                      f"{node.index.name})")
        dispatcher = self.db.dispatcher
        context = dispatcher.call(
            "ODCIIndexStart", methods.index_start,
            ia, pred_info, query_info, env,
            index_name=node.index.name, phase="scan")
        closer = self._make_closer(methods, context, env,
                                   index_name=node.index.name)
        batch_size = self.batch_size
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        # index-returned rowids are hints: the snapshot-aware base-table
        # fetch re-validates each one, dropping rows whose versions are
        # not visible to this statement
        fetch = self._fetch_fn(node.table.storage)
        label = call.label
        try:
            while True:
                if env.trace_enabled:
                    env.trace(f"exec:ODCIIndexFetch(n={batch_size})")
                result = dispatcher.call(
                    "ODCIIndexFetch", methods.index_fetch,
                    context, batch_size, env,
                    index_name=node.index.name, phase="scan")
                aux = result.aux or []
                # materialize the whole fetch batch into a row batch
                batch = []
                for i, rowid in enumerate(result.rowids):
                    row = fetch(rowid)
                    if row is None:
                        continue
                    ctx = make(rowid, row)
                    if label is not None and i < len(aux):
                        ctx.aux[label] = aux[i]
                    if passes is None or passes(ctx):
                        batch.append(ctx)
                if batch:
                    yield batch
                if result.done or not result.rowids:
                    break
        finally:
            env.trace("exec:ODCIIndexClose()")
            closer()

    def _make_closer(self, methods, context, env, index_name: str = ""):
        """An idempotent ODCIIndexClose callable, registered with the
        statement's scan tracker (if any) so cursor close can run it."""
        closed = [False]

        def closer() -> None:
            if closed[0]:
                return
            closed[0] = True
            if self.tracker is not None:
                self.tracker.unregister(closer)
            self.db.dispatcher.call(
                "ODCIIndexClose", methods.index_close, context, env,
                index_name=index_name, phase="scan")

        if self.tracker is not None:
            self.tracker.register(closer)
        return closer

    # -- composite nodes ------------------------------------------------------

    def _batches_filter(self, node: pl.FilterNode
                        ) -> Iterator[List[RowContext]]:
        passes = self._truth_fn(node, "predicate", node.predicate)
        if passes is None:
            yield from self.iter_batches(node.child)
            return
        for batch in self.iter_batches(node.child):
            out = [ctx for ctx in batch if passes(ctx)]
            if out:
                yield out

    def _iter_nl_join(self, node: pl.NestedLoopJoin) -> Iterator[RowContext]:
        inner_rows = list(self.iter_node(node.inner))
        accepts = self._truth_fn(node, "condition", node.condition)
        for outer_ctx in self.iter_node(node.outer):
            for inner_ctx in inner_rows:
                merged = outer_ctx.merged_with(inner_ctx)
                if accepts is None or accepts(merged):
                    yield merged

    def _iter_indexed_nl_join(self, node: pl.IndexedNLJoin
                              ) -> Iterator[RowContext]:
        structure = node.index.structure
        outer_key = self._value_fn(node, "outer_key", node.outer_key)
        inner_passes = self._truth_fn(node, "inner_filter", node.inner_filter)
        accepts = self._truth_fn(node, "condition", node.condition)
        make = self._ctx_factory(node.inner_table, node.inner_binding)
        fetch = self._fetch_fn(node.inner_table.storage)
        for outer_ctx in self.iter_node(node.outer):
            key = outer_key(outer_ctx)
            if is_null(key):
                continue
            for rowid in self._probe(structure,
                                     lambda: structure.search(key)):
                row = fetch(rowid)
                if row is None:
                    continue
                inner_ctx = make(rowid, row)
                if inner_passes is not None and not inner_passes(inner_ctx):
                    continue
                merged = outer_ctx.merged_with(inner_ctx)
                if accepts is None or accepts(merged):
                    yield merged

    def _iter_domain_nl_join(self, node: pl.DomainNLJoin
                             ) -> Iterator[RowContext]:
        """Per outer row, re-run the domain index scan with bound args.

        "Multiple sets of invocations of operators can be interleaved.
        At any given time, a number of operators can be evaluated using
        the same indextype routines." (§2.2.3)
        """
        domain = node.index.domain
        if domain is None or domain.methods is None:
            raise ODCIError("DomainNLJoin",
                            f"index {node.index.name} has no methods instance")
        call = node.operator_call
        value_args = call.args[1:]
        if call.label is not None:
            value_args = value_args[:-1]
        arg_fns = self._value_fns(node, "value_args", value_args)
        inner_passes = self._truth_fn(node, "inner_filter", node.inner_filter)
        accepts = self._truth_fn(node, "condition", node.condition)
        make = self._ctx_factory(node.inner_table, node.inner_binding)
        fetch = self._fetch_fn(node.inner_table.storage)
        env = self.db.make_env(CallbackPhase.SCAN, domain,
                               snapshot=self.snapshot)
        ia = domain.index_info()
        methods = domain.methods
        batch_size = self.batch_size
        for outer_ctx in self.iter_node(node.outer):
            evaluated = tuple(fn(outer_ctx) for fn in arg_fns)
            pred_info = ODCIPredInfo(
                operator_name=call.operator.name,
                operator_args=evaluated,
                lower_bound=node.lower, upper_bound=node.upper,
                include_lower=node.include_lower,
                include_upper=node.include_upper)
            query_info = ODCIQueryInfo(ancillary_label=call.label)
            if env.trace_enabled:
                env.trace(f"exec:ODCIIndexStart({domain.indextype_name}:"
                          f"{node.index.name}) [join probe]")
            dispatcher = self.db.dispatcher
            context = dispatcher.call(
                "ODCIIndexStart", methods.index_start,
                ia, pred_info, query_info, env,
                index_name=node.index.name, phase="scan")
            closer = self._make_closer(methods, context, env,
                                       index_name=node.index.name)
            try:
                while True:
                    result = dispatcher.call(
                        "ODCIIndexFetch", methods.index_fetch,
                        context, batch_size, env,
                        index_name=node.index.name, phase="scan")
                    aux = result.aux or []
                    for i, rowid in enumerate(result.rowids):
                        row = fetch(rowid)
                        if row is None:
                            continue
                        inner_ctx = make(rowid, row)
                        if call.label is not None and i < len(aux):
                            inner_ctx.aux[call.label] = aux[i]
                        if inner_passes is not None \
                                and not inner_passes(inner_ctx):
                            continue
                        merged = outer_ctx.merged_with(inner_ctx)
                        if accepts is None or accepts(merged):
                            yield merged
                    if result.done or not result.rowids:
                        break
            finally:
                closer()

    def _iter_hash_join(self, node: pl.HashJoin) -> Iterator[RowContext]:
        left_keys = self._value_fns(node, "left_keys", node.left_keys)
        right_keys = self._value_fns(node, "right_keys", node.right_keys)
        accepts = self._truth_fn(node, "condition", node.condition)
        build: Dict[Tuple[Any, ...], List[RowContext]] = {}
        for right_ctx in self.iter_node(node.right):
            key = tuple(fn(right_ctx) for fn in right_keys)
            if any(is_null(v) for v in key):
                continue
            build.setdefault(key, []).append(right_ctx)
        for left_ctx in self.iter_node(node.left):
            key = tuple(fn(left_ctx) for fn in left_keys)
            if any(is_null(v) for v in key):
                continue
            for right_ctx in build.get(key, ()):
                merged = left_ctx.merged_with(right_ctx)
                if accepts is None or accepts(merged):
                    yield merged

    def _iter_sort(self, node: pl.SortNode) -> Iterator[RowContext]:
        """Decorate–sort–undecorate: ORDER BY expressions are evaluated
        once per row, not once per comparison."""
        key_fns = self._value_fns(node, "keys",
                                  [item.expr for item in node.order_items])
        descending = [item.descending for item in node.order_items]
        decorated = [(tuple(fn(ctx) for fn in key_fns), ctx)
                     for ctx in self.iter_node(node.child)]

        def compare(a: Tuple[Tuple[Any, ...], RowContext],
                    b: Tuple[Tuple[Any, ...], RowContext]) -> int:
            for va, vb, desc in zip(a[0], b[0], descending):
                if is_null(va) and is_null(vb):
                    continue
                if is_null(va):
                    return 1  # NULLS LAST
                if is_null(vb):
                    return -1
                cmp = sql_compare(va, vb)
                if is_null(cmp) or cmp == 0:
                    continue
                return -cmp if desc else cmp
            return 0

        decorated.sort(key=functools.cmp_to_key(compare))
        return iter([ctx for __, ctx in decorated])

    def _iter_group_by(self, node: pl.GroupByNode) -> Iterator[RowContext]:
        groups: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        order: List[Tuple[Any, ...]] = []
        aggregates = node.aggregates
        group_fns = self._value_fns(node, "group_exprs", node.group_exprs)
        having = self._truth_fn(node, "having", node.having)
        agg_compiled = node.compiled.get("agg_args") \
            if self.use_compiled else None
        evaluator = self.evaluator
        binds = self.binds
        arg_fns: List[Optional[Callable[[RowContext], Any]]] = []
        for agg in aggregates:
            if agg.arg is None:
                arg_fns.append(None)
                continue
            fn = (agg_compiled or {}).get(aggregate_key(agg))
            if fn is not None:
                arg_fns.append(lambda ctx, f=fn: f(ctx, binds))
            else:
                arg_fns.append(
                    lambda ctx, e=agg.arg: evaluator.evaluate(e, ctx))

        for ctx in self.iter_node(node.child):
            key = tuple(
                ("\x00NULL" if is_null(v) else v)
                for v in (fn(ctx) for fn in group_fns))
            try:
                hash(key)
            except TypeError:
                key = tuple(repr(k) for k in key)
            state = groups.get(key)
            if state is None:
                state = {"ctx": ctx,
                         "accs": [_Accumulator(a, fn)
                                  for a, fn in zip(aggregates, arg_fns)]}
                groups[key] = state
                order.append(key)
            for acc in state["accs"]:
                acc.add(ctx)

        if not groups and not node.group_exprs:
            # global aggregate over an empty input still yields one row
            empty = RowContext()
            for agg in aggregates:
                empty.agg[aggregate_key(agg)] = _Accumulator(agg).result()
            if having is None or having(empty):
                yield empty
            return

        for key in order:
            state = groups[key]
            out: RowContext = state["ctx"]
            for agg, acc in zip(aggregates, state["accs"]):
                out.agg[aggregate_key(agg)] = acc.result()
            if having is None or having(out):
                yield out


class _Accumulator:
    """Streaming state for one aggregate call.

    ``arg_fn`` is the (possibly compiled) per-row argument callable;
    None for COUNT(*)."""

    def __init__(self, call: AggregateCall,
                 arg_fn: Optional[Callable[[RowContext], Any]] = None):
        self.call = call
        self.arg_fn = arg_fn
        self.count = 0
        self.total: Any = 0
        self.min_value: Any = None
        self.max_value: Any = None
        self.distinct_seen = set() if call.distinct else None

    def add(self, ctx: RowContext) -> None:
        call = self.call
        if call.arg is None:  # COUNT(*)
            self.count += 1
            return
        value = self.arg_fn(ctx)
        if is_null(value):
            return
        if self.distinct_seen is not None:
            marker = value if isinstance(value, (int, float, str, bool)) \
                else repr(value)
            if marker in self.distinct_seen:
                return
            self.distinct_seen.add(marker)
        self.count += 1
        if call.func in ("sum", "avg"):
            self.total += value
        if call.func == "min":
            if self.min_value is None or value < self.min_value:
                self.min_value = value
        if call.func == "max":
            if self.max_value is None or value > self.max_value:
                self.max_value = value

    def result(self) -> Any:
        func = self.call.func
        if func == "count":
            return self.count
        if self.count == 0:
            return NULL
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count
        if func == "min":
            return self.min_value
        return self.max_value
