"""The batch-pipelined executor.

Runs :class:`~repro.sql.planner.QueryPlan` trees over
:class:`~repro.sql.expressions.RowContext` values.  Everything still
streams: a LIMIT or a consumer that stops early never pulls the rest of
the pipeline — which is precisely the §3.2.1 "pipelined fashion ... all
rows that satisfy the text predicate do not have to be identified before
the first result row can be returned" behaviour the E1 benchmark
measures via time-to-first-row.  The unit of streaming, however, is a
*batch* of rows where the producer is naturally batched: full scans move
page-at-a-time (:meth:`~repro.storage.heap.HeapTable.scan_batches`), and
domain scans materialize each ODCIIndexFetch result — which the protocol
already returns in batches — into one row batch.

Row expressions come pre-compiled on the plan: the planner runs
:func:`repro.sql.compile.compile_plan` once, at plan time, so the
closures ride the shared plan cache across sessions.  The executor
resolves each slot through :meth:`Executor._truth_fn` /
:meth:`Executor._value_fns`, falling back to the tree-walking
:class:`~repro.sql.expressions.Evaluator` for any expression the
compiler declined (per-expression, so one OperatorCall in a filter does
not deoptimize its neighbours).

The :meth:`Executor._batches_domain_scan` method is the server side of
the ODCI scan protocol: it builds the ODCIPredInfo/ODCIQueryInfo
descriptors, invokes ``index_start``, re-enters ``index_fetch`` batch by
batch until the cartridge reports the null-terminator, fetches the
streamed rowids from the base table, and finally calls ``index_close``.

Parallel execution (see :mod:`repro.sql.parallel`): when the plan marks
a heap full scan ``[PARALLEL dop=N]`` and the session allows it, the
scan runs as page-range morsels on the engine's worker pool through an
order-preserving exchange (ORDER BY gets per-morsel sorted runs merged
k-way instead); when a domain scan is marked ``[PREFETCH depth=K]``,
the ODCIIndexFetch loop moves to a producer task that stays ``K``
batches ahead of materialization.  Both paths demand a statement
snapshot — current-mode reads (DML target selection) stay serial — and
both degrade to the serial loop when the executor is already running on
a pool worker (nested callback SQL must not deadlock the pool).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, \
    Tuple

from repro.core.callbacks import CallbackPhase
from repro.core.odci import ODCIPredInfo, ODCIQueryInfo
from repro.errors import ExecutionError, ODCIError
from repro.sql import ast_nodes as ast
from repro.sql import planner as pl
from repro.sql.catalog import TableDef
from repro.sql.columnar import ColumnBatch, ExecutorStats
from repro.sql.expressions import (
    AggregateCall, Evaluator, RowContext, aggregate_key)
from repro.types.values import NULL, is_null, sql_compare

#: cap on the per-executor constant-expression memo (safety valve for
#: the session's long-lived bindless executor)
_CONST_CACHE_LIMIT = 1024


def _chunked(rows: Iterable[RowContext], size: int
             ) -> Iterator[List[RowContext]]:
    """Regroup a row stream into batches of at most ``size`` rows."""
    size = max(1, size)
    batch: List[RowContext] = []
    for ctx in rows:
        batch.append(ctx)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def _flatten(batches: Iterable[List[RowContext]]) -> Iterator[RowContext]:
    for batch in batches:
        yield from batch


class Executor:
    """Runs query plans against the database's storage and framework.

    One instance is created per statement execution: ``binds`` carries
    that execution's bind-variable values (cached plans keep BindParam
    nodes in the tree — and compiled closures take the bind set as an
    argument — so the shared plan is never specialized to one
    execution's values), and ``tracker`` (a
    :class:`~repro.core.scan_context.ScanTracker`) collects closers for
    any domain-index scans opened, so an abandoned cursor can release
    them deterministically.
    """

    def __init__(self, db: Any, binds: Optional[Dict[str, Any]] = None,
                 tracker: Optional[Any] = None,
                 snapshot: Optional[Any] = None):
        self.db = db
        self.catalog = db.catalog
        self.binds = binds or {}
        self.evaluator = Evaluator(db.catalog, binds)
        self.tracker = tracker
        #: MVCC snapshot all reads resolve against (None → current mode:
        #: DML target selection and the snapshot_reads=False seed path)
        self.snapshot = snapshot
        self.use_compiled = getattr(db, "compile_expressions", True)
        #: columnar pipeline gate: vector kernels are generated against
        #: the same plan artifacts as closures, so compile_expressions
        #: off implies vectorized off
        self.use_vectorized = self.use_compiled and getattr(
            db, "vectorized_execution", True)
        engine = getattr(db, "engine", None)
        self.xstats: ExecutorStats = (
            engine.executor_stats
            if engine is not None
            and getattr(engine, "executor_stats", None) is not None
            else ExecutorStats())
        self.batch_size = getattr(db, "fetch_batch_size", 32)
        #: LIMIT-derived row budget for the statement's single scan
        #: (None = unbounded); lets batched producers stop issuing
        #: work — ODCIIndexFetch calls, morsels — once met
        self._scan_budget: Optional[int] = None
        #: id(expr) -> (expr, value); the expr reference keeps the id
        #: from being recycled while the entry lives
        self._const_cache: Dict[int, Tuple[ast.Expr, Any]] = {}

    # -- public entry points -----------------------------------------------

    def run(self, plan: pl.QueryPlan) -> Iterator[Tuple[Any, ...]]:
        """Yield output tuples for the plan (streaming)."""
        root = plan.root
        if isinstance(root, pl.LimitNode):
            self._scan_budget = self._limit_budget(root)
            yield from self._apply_limit(root)
            return
        self._scan_budget = None
        yield from self._project_rows(root)

    def _limit_budget(self, node: pl.LimitNode) -> Optional[int]:
        """Row budget a LIMIT imposes on the scan feeding it, or None.

        Only valid when every scanned row that passes the scan's own
        filter becomes exactly one output row — a plain projection over
        a single scan.  Sorts, grouping, DISTINCT, joins, and detached
        FILTER nodes all consume more input rows than they emit, so any
        of those between the LIMIT and the scan voids the budget.
        """
        if node.limit is None:
            return None
        child = node.child
        if isinstance(child, pl.ProjectNode) \
                and isinstance(child.child, (pl.FullScan, pl.DomainScan)):
            return node.limit + (node.offset or 0)
        return None

    def _apply_limit(self, node: pl.LimitNode) -> Iterator[Tuple[Any, ...]]:
        # Yield-then-check: testing the limit only *after* emitting row N
        # means the producer is never pulled for row N+1 — for a batched
        # domain scan whose batch boundary lands exactly on the LIMIT,
        # the old check-then-yield order issued one extra ODCIIndexFetch
        # just to discover it wasn't needed.
        limit = node.limit
        if limit is not None and limit <= 0:
            return
        produced = 0
        skipped = 0
        for row in self._project_rows(node.child):
            if node.offset and skipped < node.offset:
                skipped += 1
                continue
            yield row
            produced += 1
            if limit is not None and produced >= limit:
                return

    def _project_rows(self, node: pl.PlanNode) -> Iterator[Tuple[Any, ...]]:
        if isinstance(node, pl.DistinctNode):
            seen = set()
            for row in self._project_rows(node.child):
                key = tuple(repr(v) for v in row)
                if key in seen:
                    continue
                seen.add(key)
                yield row
            return
        if not isinstance(node, pl.ProjectNode):
            raise ExecutionError(f"expected projection at plan top, got "
                                 f"{node.label()}")
        if isinstance(node.child, pl.FullScan):
            fused = self._vector_project_scan(node, node.child)
            if fused is not None:
                yield from fused
                return
        fns = self._value_fns(node, "items", [e for e, _ in node.items])
        for batch in self.iter_batches(node.child):
            for ctx in batch:
                yield tuple(fn(ctx) for fn in fns)

    # -- compiled-slot resolution ------------------------------------------

    def _truth_fn(self, node: pl.PlanNode, slot: str,
                  predicate: Optional[ast.Expr]
                  ) -> Optional[Callable[[RowContext], bool]]:
        """Per-row predicate callable (strict True test), or None."""
        if predicate is None:
            return None
        fn = node.compiled.get(slot) if self.use_compiled else None
        if fn is not None:
            binds = self.binds
            return lambda ctx: fn(ctx, binds) is True
        evaluator = self.evaluator
        return lambda ctx: evaluator.truth(predicate, ctx) is True

    def _value_fn(self, node: pl.PlanNode, slot: str, expr: ast.Expr
                  ) -> Callable[[RowContext], Any]:
        """Per-row value callable for a single expression slot."""
        fn = node.compiled.get(slot) if self.use_compiled else None
        if fn is not None:
            binds = self.binds
            return lambda ctx: fn(ctx, binds)
        evaluator = self.evaluator
        return lambda ctx: evaluator.evaluate(expr, ctx)

    def _value_fns(self, node: pl.PlanNode, slot: str,
                   exprs: List[ast.Expr]
                   ) -> List[Callable[[RowContext], Any]]:
        """Per-row value callables for a list slot, with per-index
        interpreter fallback where compilation declined."""
        compiled = node.compiled.get(slot) if self.use_compiled else None
        evaluator = self.evaluator
        binds = self.binds
        fns: List[Callable[[RowContext], Any]] = []
        for i, expr in enumerate(exprs):
            fn = compiled[i] if compiled is not None and i < len(compiled) \
                else None
            if fn is not None:
                fns.append(lambda ctx, f=fn: f(ctx, binds))
            else:
                fns.append(lambda ctx, e=expr: evaluator.evaluate(e, ctx))
        return fns

    # -- node dispatch ----------------------------------------------------------

    def iter_node(self, node: pl.PlanNode) -> Iterator[RowContext]:
        """Yield row contexts for any relational plan node."""
        if isinstance(node, (pl.FullScan, pl.DomainScan, pl.FilterNode)):
            return _flatten(self.iter_batches(node))
        if isinstance(node, pl.BTreeScan):
            return self._iter_btree_scan(node)
        if isinstance(node, pl.HashScan):
            return self._iter_hash_scan(node)
        if isinstance(node, pl.BitmapScan):
            return self._iter_bitmap_scan(node)
        if isinstance(node, pl.IOTPrefixScan):
            return self._iter_iot_prefix_scan(node)
        if isinstance(node, pl.NestedLoopJoin):
            return self._iter_nl_join(node)
        if isinstance(node, pl.IndexedNLJoin):
            return self._iter_indexed_nl_join(node)
        if isinstance(node, pl.DomainNLJoin):
            return self._iter_domain_nl_join(node)
        if isinstance(node, pl.HashJoin):
            return self._iter_hash_join(node)
        if isinstance(node, pl.SortNode):
            return self._iter_sort(node)
        if isinstance(node, pl.GroupByNode):
            return self._iter_group_by(node)
        raise ExecutionError(f"cannot execute plan node {node.label()}")

    def iter_batches(self, node: pl.PlanNode
                     ) -> Iterator[List[RowContext]]:
        """Yield row contexts in batches.

        Scans whose producers are naturally batched (heap pages, ODCI
        fetch results) keep their batch shape through the pipeline;
        other nodes are regrouped into ``fetch_batch_size`` chunks so
        batch consumers (filter, project) always run their tight loop.
        """
        if isinstance(node, pl.FullScan):
            return self._batches_full_scan(node)
        if isinstance(node, pl.DomainScan):
            return self._batches_domain_scan(node)
        if isinstance(node, pl.FilterNode):
            return self._batches_filter(node)
        return _chunked(self.iter_node(node), self.batch_size)

    # -- scans ---------------------------------------------------------------

    def _make_ctx(self, table: TableDef, binding: str, rowid: Any,
                  row: List[Any]) -> RowContext:
        return self._ctx_factory(table, binding)(rowid, row)

    def _ctx_factory(self, table: TableDef, binding: str
                     ) -> Callable[[Any, List[Any]], RowContext]:
        """A (rowid, row) -> RowContext constructor with the column keys
        precomputed once per scan instead of once per row."""
        cols = [(binding, col.name.lower()) for col in table.columns]
        rowid_key = (binding, "rowid")

        def make(rowid: Any, row: List[Any]) -> RowContext:
            values = dict(zip(cols, row))
            values[rowid_key] = rowid
            ctx = RowContext(values=values)
            ctx.rowids[binding] = rowid
            return ctx
        return make

    def _passes(self, predicate: Optional[ast.Expr], ctx: RowContext) -> bool:
        if predicate is None:
            return True
        return self.evaluator.truth(predicate, ctx) is True

    def _batches_full_scan(self, node: pl.FullScan
                           ) -> Iterator[List[RowContext]]:
        # Row consumer over a vector-eligible filtered scan (joins, DML
        # subselects): run the vector filter over columns, then cross
        # the materialization boundary for survivors only — the kernel
        # win pays for the transpose when the filter is selective.
        if node.filter is not None:
            cbatches = self._vector_scan(node, require_kernel=True)
            if cbatches is not None:
                make = self._ctx_factory(node.table, node.binding_name)
                self.xstats.record_materialize_boundary()
                for cbatch in cbatches:
                    batch = [make(rowid, row)
                             for rowid, row in cbatch.iter_rows()]
                    if batch:
                        yield batch
                return
        dop = self._effective_dop(node)
        if dop >= 2:
            yield from self._batches_parallel_scan(node, dop)
            return
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        storage = node.table.storage
        # storage capabilities were probed once at plan time
        # (node.has_scan_batches / node.versioned), not per statement
        snapshot = self.snapshot if node.versioned else None
        if node.has_scan_batches:
            pages = storage.scan_batches(snapshot) if snapshot is not None \
                else storage.scan_batches()
        elif snapshot is not None:
            pages = _chunked(storage.scan(snapshot), self.batch_size)
        else:
            pages = _chunked(storage.scan(), self.batch_size)
        if passes is None:
            for page in pages:
                yield [make(rowid, row) for rowid, row in page]
            return
        for page in pages:
            batch = []
            for rowid, row in page:
                ctx = make(rowid, row)
                if passes(ctx):
                    batch.append(ctx)
            if batch:
                yield batch

    # -- vectorized columnar scan ----------------------------------------------

    def _vector_scan(self, node: pl.FullScan, require_kernel: bool = False
                     ) -> Optional[Iterator[ColumnBatch]]:
        """Columnar batches for a full scan, or None for the row path.

        Eligibility is plan-time (``vector_mode == "VECTORIZED"``, which
        implies the filter — if any — compiled to a vector kernel) plus
        the session gate and the kernel factory's per-execution bind
        inspection: a declined factory sends the whole statement back to
        the row pipeline, mirroring the PR 9 row-kernel contract.  With
        ``require_kernel`` a filterless scan declines too — transposing
        pages for a row consumer with no filter to vectorize is pure
        overhead.
        """
        if not self.use_vectorized:
            return None
        if node.vector_mode != "VECTORIZED" or not node.has_scan_columns:
            return None
        kernel = None
        if node.filter is not None:
            factory = node.compiled.get("vector_kernel")
            if factory is None:
                return None
            kernel = factory(self.binds)
            if kernel is None:
                # bind values outside the kernel contract (NULL, bool,
                # non-string LIKE pattern)
                self.xstats.record_factory_decline()
                return None
        elif require_kernel:
            return None
        dop = self._effective_dop(node)
        if dop >= 2:
            return self._cbatches_parallel(node, kernel, dop)
        return self._cbatches_serial(node, kernel)

    def _cbatches_serial(self, node: pl.FullScan, kernel: Optional[Callable]
                         ) -> Iterator[ColumnBatch]:
        storage = node.table.storage
        snapshot = self.snapshot if node.versioned else None
        width = len(node.table.columns)
        xstats = self.xstats
        for rowids, columns in storage.scan_batches_columnar(width, snapshot):
            cbatch = ColumnBatch(rowids, columns)
            if kernel is not None:
                try:
                    cbatch.sel = kernel(columns, rowids, cbatch.n)
                    xstats.record_vector_batch(cbatch.n)
                except Exception:  # noqa: BLE001 — degrade to exact semantics
                    # mid-batch kernel failure: re-run THIS batch on the
                    # closure path so accept/reject outcomes, evaluation
                    # order, and error classes are byte-identical
                    xstats.record_fallback_batch()
                    cbatch.sel = self._closure_sel(node, cbatch)
            else:
                xstats.record_vector_batch(cbatch.n)
            if cbatch.selected_count():
                yield cbatch

    def _closure_sel(self, node: pl.FullScan,
                     cbatch: ColumnBatch) -> List[int]:
        """Selection vector for one batch via the closure/interpreter
        path — the serial-exact fallback tier."""
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        rowids = cbatch.rowids
        return [i for i in range(cbatch.n)
                if passes(make(rowids[i], cbatch.row(i)))]

    def _cbatches_parallel(self, node: pl.FullScan,
                           kernel: Optional[Callable], dop: int
                           ) -> Iterator[ColumnBatch]:
        """Morsel-parallel columnar scan: the exchange carries
        ``ColumnBatch`` values unchanged; each worker filters its pages
        with the vector kernel, falling back per batch to the pure
        ``(ctx, binds)`` closure (safe off-thread, like the row tiers).
        """
        from repro.sql.parallel import plan_morsels, run_morsels
        engine = self.db.engine
        storage = node.table.storage
        morsels = plan_morsels(storage.page_count, dop)
        if not morsels:
            return
        stats = engine.parallel_stats
        stats.record_query(dop)
        width = len(node.table.columns)
        snapshot = self.snapshot
        xstats = self.xstats
        binds = self.binds
        # guaranteed compiled when a filter exists (_effective_dop gate)
        ctx_filter = node.compiled.get("filter")
        cols = [(node.binding_name, col.name.lower())
                for col in node.table.columns]
        rowid_key = (node.binding_name, "rowid")
        binding = node.binding_name

        def closure_sel(cbatch: ColumnBatch) -> List[int]:
            scratch = RowContext()
            values = scratch.values
            sel = []
            for i in range(cbatch.n):
                rowid = cbatch.rowids[i]
                values.clear()
                values.update(zip(cols, cbatch.row(i)))
                values[rowid_key] = rowid
                scratch.rowids[binding] = rowid
                if ctx_filter(scratch, binds) is True:
                    sel.append(i)
            return sel

        def morsel_kernel(start: int, stop: int) -> List[ColumnBatch]:
            out: List[ColumnBatch] = []
            for rowids, columns in storage.scan_page_range_columnar(
                    start, stop, width, snapshot):
                cbatch = ColumnBatch(rowids, columns)
                if kernel is not None:
                    try:
                        cbatch.sel = kernel(columns, rowids, cbatch.n)
                        xstats.record_vector_batch(cbatch.n)
                    except Exception:  # noqa: BLE001 — exact semantics
                        xstats.record_fallback_batch()
                        cbatch.sel = closure_sel(cbatch)
                else:
                    xstats.record_vector_batch(cbatch.n)
                if cbatch.selected_count():
                    out.append(cbatch)
            return out

        budget = self._scan_budget
        emitted = 0
        exchange = run_morsels(engine.worker_pool(), morsel_kernel,
                               morsels, dop, stats)
        for cbatches in exchange:
            for cbatch in cbatches:
                yield cbatch
                emitted += cbatch.selected_count()
            if budget is not None and emitted >= budget:
                exchange.close()
                return

    def _vector_project_scan(self, node: pl.ProjectNode, scan: pl.FullScan
                             ) -> Optional[Iterator[Tuple[Any, ...]]]:
        """Fused filter→project over columnar batches, or None.

        Output tuples are gathered straight from the column vectors
        through the selection vector — selected rows are never
        materialized as row tuples between the two operators.
        """
        if not self.use_vectorized or node.vector_mode != "VECTORIZED":
            return None
        factory = node.compiled.get("vector_items")
        if factory is None:
            return None
        project = factory(self.binds)
        if project is None:
            self.xstats.record_factory_decline()
            return None
        cbatches = self._vector_scan(scan)
        if cbatches is None:
            return None
        return self._project_cbatches(node, scan, project, cbatches)

    def _project_cbatches(self, node: pl.ProjectNode, scan: pl.FullScan,
                          project: Callable,
                          cbatches: Iterator[ColumnBatch]
                          ) -> Iterator[Tuple[Any, ...]]:
        xstats = self.xstats
        fallback = None
        for cbatch in cbatches:
            try:
                rows = project(cbatch.columns, cbatch.rowids,
                               cbatch.selected())
            except Exception:  # noqa: BLE001 — degrade to exact semantics
                # a projection item hit a value outside the generated
                # code's contract: materialize this batch and re-project
                # through the closure path, which yields the same prefix
                # then raises the proper taxonomy error if one is real
                if fallback is None:
                    fallback = (
                        self._value_fns(node, "items",
                                        [e for e, _ in node.items]),
                        self._ctx_factory(scan.table, scan.binding_name))
                xstats.record_fallback_batch()
                xstats.record_materialize_boundary()
                fns, make = fallback
                for rowid, row in cbatch.iter_rows():
                    ctx = make(rowid, row)
                    yield tuple(fn(ctx) for fn in fns)
                continue
            yield from rows

    # -- parallel morsel scan --------------------------------------------------

    def _effective_dop(self, node: pl.PlanNode) -> int:
        """The degree of parallelism this execution may actually use.

        0/1 means serial.  Requires the plan-time eligibility marker, a
        session with the feature on, a statement snapshot (current-mode
        reads — DML target selection — must observe in-flight changes,
        which morsel workers do not), a shareable (compiled or absent)
        filter, and *not* already running on a pool worker: a worker
        waiting on nested workers from the same bounded pool deadlocks.
        """
        dop = getattr(node, "parallel_dop", 0)
        if dop < 2 or self.snapshot is None:
            return 0
        db = self.db
        if not getattr(db, "parallel_execution", False):
            return 0
        if node.filter is not None and (
                not self.use_compiled
                or node.compiled.get("filter") is None):
            return 0
        engine = getattr(db, "engine", None)
        if engine is None:
            return 0
        if engine.worker_pool().on_worker():
            return 0
        return min(dop, max(1, getattr(db, "max_dop", 1)))

    def _morsel_kernel(self, node: pl.FullScan
                       ) -> Callable[[int, int], List[RowContext]]:
        """Build the ``kernel(start, stop) -> [RowContext]`` a morsel runs.

        Four tiers, fastest first: a *generated* kernel (the whole
        predicate eval-compiled to one Python expression over the raw
        row), the fused raw-row closure tree, a scratch-context filter
        (one reusable context probes the compiled closure; survivors
        get a real context), or no filter at all.  The generated tier
        answers only accept/reject on well-typed rows — if it raises
        anything, the morsel transparently re-runs on the closure tier,
        which reproduces the exact serial result or error.  All tiers
        share the plan's compiled closures, which are pure
        ``(ctx, binds)`` functions — nothing session-bound crosses into
        the workers except the snapshot, which is immutable by
        construction.
        """
        storage = node.table.storage
        snapshot = self.snapshot
        make = self._ctx_factory(node.table, node.binding_name)
        binds = self.binds
        if node.filter is None:
            def kernel(start: int, stop: int) -> List[RowContext]:
                out: List[RowContext] = []
                for page in storage.scan_page_range(start, stop, snapshot):
                    out.extend(make(rowid, row) for rowid, row in page)
                return out
            return kernel
        safe = self._safe_filter_kernel(node, storage, snapshot, make, binds)
        factory = node.compiled.get("row_kernel") \
            if self.use_compiled else None
        fast_filter = factory(binds) if factory is not None else None
        if fast_filter is None:
            return safe

        def fast(start: int, stop: int) -> List[RowContext]:
            out: List[RowContext] = []
            append = out.append
            for page in storage.scan_page_range(start, stop, snapshot):
                for rowid, row in page:
                    if fast_filter(row):
                        append(make(rowid, row))
            return out

        def kernel(start: int, stop: int) -> List[RowContext]:
            try:
                return fast(start, stop)
            except Exception:  # noqa: BLE001 — degrade to exact semantics
                # the generated kernel met a value it has no contract
                # for (type mismatch, division by zero); the snapshot
                # makes the re-read deterministic and the closure tier
                # raises the proper taxonomy error if one is real
                return safe(start, stop)
        return kernel

    def _safe_filter_kernel(self, node: pl.FullScan, storage: Any,
                            snapshot: Any, make: Callable, binds: Dict
                            ) -> Callable[[int, int], List[RowContext]]:
        """The exact-semantics morsel kernel (closure-tree tiers)."""
        row_filter = node.compiled.get("row_filter") \
            if self.use_compiled else None
        if row_filter is not None:
            def kernel(start: int, stop: int) -> List[RowContext]:
                out: List[RowContext] = []
                append = out.append
                for page in storage.scan_page_range(start, stop, snapshot):
                    for rowid, row in page:
                        if row_filter(row, binds) is True:
                            append(make(rowid, row))
                return out
            return kernel
        ctx_filter = node.compiled["filter"]  # guaranteed by _effective_dop
        cols = [(node.binding_name, col.name.lower())
                for col in node.table.columns]
        rowid_key = (node.binding_name, "rowid")
        binding = node.binding_name

        def kernel(start: int, stop: int) -> List[RowContext]:
            out: List[RowContext] = []
            scratch = RowContext()
            values = scratch.values
            for page in storage.scan_page_range(start, stop, snapshot):
                for rowid, row in page:
                    values.clear()
                    values.update(zip(cols, row))
                    values[rowid_key] = rowid
                    scratch.rowids[binding] = rowid
                    if ctx_filter(scratch, binds) is True:
                        out.append(make(rowid, row))
            return out
        return kernel

    def _batches_parallel_scan(self, node: pl.FullScan, dop: int
                               ) -> Iterator[List[RowContext]]:
        from repro.sql.parallel import plan_morsels, run_morsels
        engine = self.db.engine
        storage = node.table.storage
        morsels = plan_morsels(storage.page_count, dop)
        if not morsels:
            return
        stats = engine.parallel_stats
        stats.record_query(dop)
        kernel = self._morsel_kernel(node)
        budget = self._scan_budget
        emitted = 0
        exchange = run_morsels(engine.worker_pool(), kernel, morsels,
                               dop, stats)
        # closing this generator (LIMIT satisfied, abandoned cursor)
        # closes the exchange, which cancels unissued morsels
        for batch in exchange:
            yield batch
            emitted += len(batch)
            if budget is not None and emitted >= budget:
                exchange.close()
                return

    def _const(self, expr: Optional[ast.Expr]) -> Any:
        """Evaluate a constant expression, once per statement.

        The same expression object often appears at several call sites
        of one plan (an equality sarg feeds both the low and high bound
        of a B-tree scan); memoize by object identity, holding the expr
        so its id cannot be recycled while the entry lives.
        """
        if expr is None:
            return None
        hit = self._const_cache.get(id(expr))
        if hit is not None and hit[0] is expr:
            return hit[1]
        value = self.evaluator.evaluate(expr, RowContext())
        if len(self._const_cache) >= _CONST_CACHE_LIMIT:
            self._const_cache.clear()
        self._const_cache[id(expr)] = (expr, value)
        return value

    def _fetch_fn(self, storage: Any) -> Callable[[Any], Optional[List[Any]]]:
        """Row fetch callable for a table's storage, resolved against the
        executor's snapshot when the storage is versioned.

        Unversioned storages (dictionary views, test doubles) keep the
        plain current-mode fetch regardless of snapshot."""
        snapshot = self.snapshot
        if snapshot is None or getattr(storage, "versions", None) is None:
            return storage.fetch_or_none
        return lambda rowid: storage.fetch_or_none(rowid, snapshot)

    def _probe(self, structure: Any,
               produce: Callable[[], Iterable[Any]]) -> Iterable[Any]:
        """Run a native-index probe.

        Under a snapshot, readers hold no table locks, so a concurrent
        writer may restructure the index mid-iteration; materialize the
        probe under the structure's latch instead of streaming it."""
        if self.snapshot is None:
            return produce()
        latch = getattr(structure, "latch", None)
        if latch is None:
            return produce()
        with latch:
            return list(produce())

    def _fetch_ctx(self, node, rowid: Any) -> Optional[RowContext]:
        row = self._fetch_fn(node.table.storage)(rowid)
        if row is None:
            return None
        return self._make_ctx(node.table, node.binding_name, rowid, row)

    def _iter_iot_prefix_scan(self, node: pl.IOTPrefixScan
                              ) -> Iterator[RowContext]:
        key = self._const(node.key)
        if is_null(key):
            return
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        storage = node.table.storage
        if self.snapshot is not None \
                and getattr(storage, "versions", None) is not None:
            pairs = storage.key_prefix_scan([key], snapshot=self.snapshot)
        else:
            pairs = storage.key_prefix_scan([key])
        for rowid, row in pairs:
            ctx = make(rowid, row)
            if passes is None or passes(ctx):
                yield ctx

    def _iter_btree_scan(self, node: pl.BTreeScan) -> Iterator[RowContext]:
        low = self._const(node.low)
        high = self._const(node.high)
        structure = node.index.structure
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        fetch = self._fetch_fn(node.table.storage)
        for __, rowid in self._probe(
                structure,
                lambda: structure.range_scan(low, high,
                                             node.low_inclusive,
                                             node.high_inclusive)):
            row = fetch(rowid)
            if row is None:
                continue
            ctx = make(rowid, row)
            if passes is None or passes(ctx):
                yield ctx

    def _iter_hash_scan(self, node: pl.HashScan) -> Iterator[RowContext]:
        key = self._const(node.key)
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        fetch = self._fetch_fn(node.table.storage)
        structure = node.index.structure
        for rowid in self._probe(structure, lambda: structure.search(key)):
            row = fetch(rowid)
            if row is None:
                continue
            ctx = make(rowid, row)
            if passes is None or passes(ctx):
                yield ctx

    def _iter_bitmap_scan(self, node: pl.BitmapScan) -> Iterator[RowContext]:
        keys = [self._const(k) for k in node.keys]
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        fetch = self._fetch_fn(node.table.storage)
        structure = node.index.structure
        for rowid in self._probe(structure,
                                 lambda: structure.search_any_of(keys)):
            row = fetch(rowid)
            if row is None:
                continue
            ctx = make(rowid, row)
            if passes is None or passes(ctx):
                yield ctx

    # -- the domain index scan (ODCI orchestration) ----------------------------

    def _batches_domain_scan(self, node: pl.DomainScan
                             ) -> Iterator[List[RowContext]]:
        domain = node.index.domain
        if domain is None or domain.methods is None:
            raise ODCIError("DomainScan", f"index {node.index.name} has no "
                            "methods instance")
        call = node.operator_call
        # evaluate the operator's constant value arguments (everything
        # after the indexed column, minus a trailing ancillary label)
        value_args = call.args[1:]
        if call.label is not None:
            value_args = value_args[:-1]
        const_ctx = RowContext()
        evaluated_args = tuple(self.evaluator.evaluate(a, const_ctx)
                               for a in value_args)
        # the plan (and its pred_info) may be shared via the plan cache:
        # never mutate it — take a per-execution copy with these args
        pred_info = node.pred_info.with_args(evaluated_args)
        query_info = ODCIQueryInfo(first_rows=node.first_rows,
                                   ancillary_label=call.label)
        # pin any callback-SQL the cartridge runs during this scan to the
        # statement's snapshot: ODCIIndexStart/Fetch observe one frozen
        # database state no matter how long the fetch loop streams
        env = self.db.make_env(CallbackPhase.SCAN, domain,
                               snapshot=self.snapshot)
        ia = domain.index_info()
        methods = domain.methods
        if env.trace_enabled:
            env.trace(f"exec:ODCIIndexStart({domain.indextype_name}:"
                      f"{node.index.name})")
        dispatcher = self.db.dispatcher
        context = dispatcher.call(
            "ODCIIndexStart", methods.index_start,
            ia, pred_info, query_info, env,
            index_name=node.index.name, phase="scan")
        closer = self._make_closer(methods, context, env,
                                   index_name=node.index.name)
        batch_size = self.batch_size
        make = self._ctx_factory(node.table, node.binding_name)
        passes = self._truth_fn(node, "filter", node.filter)
        # index-returned rowids are hints: the snapshot-aware base-table
        # fetch re-validates each one, dropping rows whose versions are
        # not visible to this statement
        fetch = self._fetch_fn(node.table.storage)
        label = call.label

        def materialize(result) -> List[RowContext]:
            aux = result.aux or []
            batch = []
            for i, rowid in enumerate(result.rowids):
                row = fetch(rowid)
                if row is None:
                    continue
                ctx = make(rowid, row)
                if label is not None and i < len(aux):
                    ctx.aux[label] = aux[i]
                if passes is None or passes(ctx):
                    batch.append(ctx)
            return batch

        budget = self._scan_budget
        emitted = 0
        depth = self._prefetch_depth(node)
        try:
            if depth > 0:
                yield from self._domain_fetch_prefetched(
                    node, dispatcher, methods, context, env, batch_size,
                    materialize, depth, budget)
                return
            while True:
                if env.trace_enabled:
                    env.trace(f"exec:ODCIIndexFetch(n={batch_size})")
                result = dispatcher.call(
                    "ODCIIndexFetch", methods.index_fetch,
                    context, batch_size, env,
                    index_name=node.index.name, phase="scan")
                # materialize the whole fetch batch into a row batch
                batch = materialize(result)
                if batch:
                    yield batch
                if result.done or not result.rowids:
                    break
                emitted += len(batch)
                if budget is not None and emitted >= budget:
                    # the LIMIT above is satisfied: stop re-entering the
                    # cartridge instead of fetching rows nobody will see
                    break
        finally:
            if env.trace_enabled:
                env.trace("exec:ODCIIndexClose()")
            closer()

    def _prefetch_depth(self, node: pl.DomainScan) -> int:
        """Async-prefetch queue depth for this execution (0 = serial).

        Same session/nesting gates as :meth:`_effective_dop`; the
        plan-time marker carries the depth.  No snapshot requirement:
        the producer re-dispatches through the owning session
        (``call_from_worker``), so even current-mode scans keep their
        exact serial semantics — but nested scans on a pool worker stay
        serial to keep the pool deadlock-free.
        """
        depth = getattr(node, "prefetch_depth", 0)
        if depth <= 0:
            return 0
        db = self.db
        if not getattr(db, "parallel_execution", False):
            return 0
        engine = getattr(db, "engine", None)
        if engine is None:
            return 0
        if engine.worker_pool().on_worker():
            return 0
        return depth

    def _domain_fetch_prefetched(self, node: pl.DomainScan, dispatcher,
                                 methods, context, env, batch_size: int,
                                 materialize, depth: int,
                                 budget: Optional[int]
                                 ) -> Iterator[List[RowContext]]:
        """The async fetch loop: a single producer task on the engine
        pool issues ``ODCIIndexFetch`` calls (strictly sequentially —
        the scan context is stateful) up to ``depth`` batches ahead of
        materialization.  The caller's ``finally`` still runs the
        idempotent closer; closing the pipeline first guarantees no
        fetch is in flight when ``ODCIIndexClose`` fires.
        """
        from repro.sql.parallel import PrefetchPipeline
        engine = self.db.engine
        session = self.db
        index_name = node.index.name

        def fetch_next():
            if env.trace_enabled:
                env.trace(f"exec:ODCIIndexFetch(n={batch_size})")
            return dispatcher.call_from_worker(
                session, "ODCIIndexFetch", methods.index_fetch,
                context, batch_size, env,
                index_name=index_name, phase="scan")

        pipeline = PrefetchPipeline(engine.worker_pool(), depth,
                                    fetch_next, engine.parallel_stats)
        emitted = 0
        try:
            for result in pipeline:
                batch = materialize(result)
                if batch:
                    yield batch
                emitted += len(batch)
                if budget is not None and emitted >= budget:
                    # row budget met: abandon queued batches and stop
                    # the producer before it issues another fetch
                    break
        finally:
            pipeline.close()

    def _make_closer(self, methods, context, env, index_name: str = ""):
        """An idempotent ODCIIndexClose callable, registered with the
        statement's scan tracker (if any) so cursor close can run it."""
        closed = [False]

        def closer() -> None:
            if closed[0]:
                return
            closed[0] = True
            if self.tracker is not None:
                self.tracker.unregister(closer)
            self.db.dispatcher.call(
                "ODCIIndexClose", methods.index_close, context, env,
                index_name=index_name, phase="scan")

        if self.tracker is not None:
            self.tracker.register(closer)
        return closer

    # -- composite nodes ------------------------------------------------------

    def _batches_filter(self, node: pl.FilterNode
                        ) -> Iterator[List[RowContext]]:
        passes = self._truth_fn(node, "predicate", node.predicate)
        if passes is None:
            yield from self.iter_batches(node.child)
            return
        for batch in self.iter_batches(node.child):
            out = [ctx for ctx in batch if passes(ctx)]
            if out:
                yield out

    def _iter_nl_join(self, node: pl.NestedLoopJoin) -> Iterator[RowContext]:
        inner_rows = list(self.iter_node(node.inner))
        accepts = self._truth_fn(node, "condition", node.condition)
        for outer_ctx in self.iter_node(node.outer):
            for inner_ctx in inner_rows:
                merged = outer_ctx.merged_with(inner_ctx)
                if accepts is None or accepts(merged):
                    yield merged

    def _iter_indexed_nl_join(self, node: pl.IndexedNLJoin
                              ) -> Iterator[RowContext]:
        structure = node.index.structure
        outer_key = self._value_fn(node, "outer_key", node.outer_key)
        inner_passes = self._truth_fn(node, "inner_filter", node.inner_filter)
        accepts = self._truth_fn(node, "condition", node.condition)
        make = self._ctx_factory(node.inner_table, node.inner_binding)
        fetch = self._fetch_fn(node.inner_table.storage)
        for outer_ctx in self.iter_node(node.outer):
            key = outer_key(outer_ctx)
            if is_null(key):
                continue
            for rowid in self._probe(structure,
                                     lambda: structure.search(key)):
                row = fetch(rowid)
                if row is None:
                    continue
                inner_ctx = make(rowid, row)
                if inner_passes is not None and not inner_passes(inner_ctx):
                    continue
                merged = outer_ctx.merged_with(inner_ctx)
                if accepts is None or accepts(merged):
                    yield merged

    def _iter_domain_nl_join(self, node: pl.DomainNLJoin
                             ) -> Iterator[RowContext]:
        """Per outer row, re-run the domain index scan with bound args.

        "Multiple sets of invocations of operators can be interleaved.
        At any given time, a number of operators can be evaluated using
        the same indextype routines." (§2.2.3)
        """
        domain = node.index.domain
        if domain is None or domain.methods is None:
            raise ODCIError("DomainNLJoin",
                            f"index {node.index.name} has no methods instance")
        call = node.operator_call
        value_args = call.args[1:]
        if call.label is not None:
            value_args = value_args[:-1]
        arg_fns = self._value_fns(node, "value_args", value_args)
        inner_passes = self._truth_fn(node, "inner_filter", node.inner_filter)
        accepts = self._truth_fn(node, "condition", node.condition)
        make = self._ctx_factory(node.inner_table, node.inner_binding)
        fetch = self._fetch_fn(node.inner_table.storage)
        env = self.db.make_env(CallbackPhase.SCAN, domain,
                               snapshot=self.snapshot)
        ia = domain.index_info()
        methods = domain.methods
        batch_size = self.batch_size
        for outer_ctx in self.iter_node(node.outer):
            evaluated = tuple(fn(outer_ctx) for fn in arg_fns)
            pred_info = ODCIPredInfo(
                operator_name=call.operator.name,
                operator_args=evaluated,
                lower_bound=node.lower, upper_bound=node.upper,
                include_lower=node.include_lower,
                include_upper=node.include_upper)
            query_info = ODCIQueryInfo(ancillary_label=call.label)
            if env.trace_enabled:
                env.trace(f"exec:ODCIIndexStart({domain.indextype_name}:"
                          f"{node.index.name}) [join probe]")
            dispatcher = self.db.dispatcher
            context = dispatcher.call(
                "ODCIIndexStart", methods.index_start,
                ia, pred_info, query_info, env,
                index_name=node.index.name, phase="scan")
            closer = self._make_closer(methods, context, env,
                                       index_name=node.index.name)
            try:
                while True:
                    result = dispatcher.call(
                        "ODCIIndexFetch", methods.index_fetch,
                        context, batch_size, env,
                        index_name=node.index.name, phase="scan")
                    aux = result.aux or []
                    for i, rowid in enumerate(result.rowids):
                        row = fetch(rowid)
                        if row is None:
                            continue
                        inner_ctx = make(rowid, row)
                        if call.label is not None and i < len(aux):
                            inner_ctx.aux[call.label] = aux[i]
                        if inner_passes is not None \
                                and not inner_passes(inner_ctx):
                            continue
                        merged = outer_ctx.merged_with(inner_ctx)
                        if accepts is None or accepts(merged):
                            yield merged
                    if result.done or not result.rowids:
                        break
            finally:
                closer()

    def _iter_hash_join(self, node: pl.HashJoin) -> Iterator[RowContext]:
        left_keys = self._value_fns(node, "left_keys", node.left_keys)
        right_keys = self._value_fns(node, "right_keys", node.right_keys)
        accepts = self._truth_fn(node, "condition", node.condition)
        build: Dict[Tuple[Any, ...], List[RowContext]] = {}
        for right_ctx in self.iter_node(node.right):
            key = tuple(fn(right_ctx) for fn in right_keys)
            if any(is_null(v) for v in key):
                continue
            build.setdefault(key, []).append(right_ctx)
        for left_ctx in self.iter_node(node.left):
            key = tuple(fn(left_ctx) for fn in left_keys)
            if any(is_null(v) for v in key):
                continue
            for right_ctx in build.get(key, ()):
                merged = left_ctx.merged_with(right_ctx)
                if accepts is None or accepts(merged):
                    yield merged

    @staticmethod
    def _order_compare(descending: List[bool]) -> Callable[..., int]:
        """The ORDER BY comparator over (key-tuple, ctx) pairs
        (NULLS LAST, per-key direction)."""
        def compare(a: Tuple[Tuple[Any, ...], RowContext],
                    b: Tuple[Tuple[Any, ...], RowContext]) -> int:
            for va, vb, desc in zip(a[0], b[0], descending):
                if is_null(va) and is_null(vb):
                    continue
                if is_null(va):
                    return 1  # NULLS LAST
                if is_null(vb):
                    return -1
                cmp = sql_compare(va, vb)
                if is_null(cmp) or cmp == 0:
                    continue
                return -cmp if desc else cmp
            return 0
        return compare

    def _iter_sort(self, node: pl.SortNode) -> Iterator[RowContext]:
        """Decorate–sort–undecorate: ORDER BY expressions are evaluated
        once per row, not once per comparison."""
        descending = [item.descending for item in node.order_items]
        sort_key = functools.cmp_to_key(self._order_compare(descending))
        merged = self._sort_merge_exchange(node, sort_key)
        if merged is not None:
            return merged
        vectored = self._vector_sort(node, sort_key)
        if vectored is not None:
            return vectored
        key_fns = self._value_fns(node, "keys",
                                  [item.expr for item in node.order_items])
        decorated = [(tuple(fn(ctx) for fn in key_fns), ctx)
                     for ctx in self.iter_node(node.child)]
        decorated.sort(key=sort_key)
        return iter([ctx for __, ctx in decorated])

    def _vector_sort(self, node: pl.SortNode,
                     sort_key) -> Optional[Iterator[RowContext]]:
        """ORDER BY over a vector-eligible scan: the filter and the sort
        keys both evaluate on column vectors (decorate on columns); each
        surviving row materializes exactly once, into the decorated
        pair.  Tie order matches the row path — both decorate in scan
        order and the sort is stable.  Returns None for the row path.
        """
        if not self.use_vectorized or node.vector_mode != "VECTORIZED":
            return None
        child = node.child
        if not isinstance(child, pl.FullScan):
            return None
        factory = node.compiled.get("vector_keys")
        if factory is None:
            return None
        keys_of = factory(self.binds)
        if keys_of is None:
            self.xstats.record_factory_decline()
            return None
        cbatches = self._vector_scan(child)
        if cbatches is None:
            return None
        make = self._ctx_factory(child.table, child.binding_name)
        xstats = self.xstats
        key_fns = None
        decorated = []
        for cbatch in cbatches:
            try:
                keys = keys_of(cbatch.columns, cbatch.rowids,
                               cbatch.selected())
            except Exception:  # noqa: BLE001 — degrade to exact semantics
                if key_fns is None:
                    key_fns = self._value_fns(
                        node, "keys",
                        [item.expr for item in node.order_items])
                xstats.record_fallback_batch()
                keys = None
            xstats.record_materialize_boundary()
            if keys is None:
                for rowid, row in cbatch.iter_rows():
                    ctx = make(rowid, row)
                    decorated.append(
                        (tuple(fn(ctx) for fn in key_fns), ctx))
            else:
                for key, (rowid, row) in zip(keys, cbatch.iter_rows()):
                    decorated.append((key, make(rowid, row)))
        decorated.sort(key=sort_key)
        return iter([ctx for __, ctx in decorated])

    def _sort_merge_exchange(self, node: pl.SortNode, sort_key
                             ) -> Optional[Iterator[RowContext]]:
        """ORDER BY over a parallel-eligible scan: each morsel returns a
        *sorted* run (decorate + sort inside the worker), and the
        consumer k-way merges the runs instead of re-sorting everything.
        Returns None when the sort must run serially (ineligible child,
        uncompiled sort keys)."""
        child = node.child
        if not isinstance(child, pl.FullScan):
            return None
        dop = self._effective_dop(child)
        if dop < 2:
            return None
        compiled_keys = node.compiled.get("keys") if self.use_compiled \
            else None
        if not compiled_keys or any(fn is None for fn in compiled_keys):
            return None  # interpreter keys are session-bound
        from repro.sql.parallel import (
            merge_sorted_runs, plan_morsels, run_morsels)
        engine = self.db.engine
        morsels = plan_morsels(child.table.storage.page_count, dop)
        if not morsels:
            return iter(())
        stats = engine.parallel_stats
        stats.record_query(dop)
        scan_kernel = self._morsel_kernel(child)
        binds = self.binds

        def sort_kernel(start: int, stop: int):
            ctxs = scan_kernel(start, stop)
            run = [(tuple(fn(ctx, binds) for fn in compiled_keys), ctx)
                   for ctx in ctxs]
            run.sort(key=sort_key)
            return run

        runs = [run for run in run_morsels(engine.worker_pool(),
                                           sort_kernel, morsels, dop, stats)]
        return (ctx for __, ctx in merge_sorted_runs(runs, key=sort_key))

    def _iter_group_by(self, node: pl.GroupByNode) -> Iterator[RowContext]:
        vectored = self._vector_group_by(node)
        if vectored is not None:
            return vectored
        return self._iter_group_by_rows(node)

    def _vector_group_by(self, node: pl.GroupByNode
                         ) -> Optional[Iterator[RowContext]]:
        """Grouped column folds over columnar batches, or None.

        Plan time restricted the group keys and aggregate arguments to
        bare columns, so accumulation reads column vectors directly; the
        accumulator semantics (NULL skip, DISTINCT markers, result
        typing) live in :class:`_Accumulator` for both pipelines.
        """
        if not self.use_vectorized or node.vector_mode != "VECTORIZED":
            return None
        child = node.child
        if not isinstance(child, pl.FullScan):
            return None
        slots = node.compiled.get("vector_group")
        if slots is None:
            return None
        cbatches = self._vector_scan(child)
        if cbatches is None:
            return None
        return self._group_cbatches(node, child, slots, cbatches)

    def _group_cbatches(self, node: pl.GroupByNode, scan: pl.FullScan,
                        slots: Tuple, cbatches: Iterator[ColumnBatch]
                        ) -> Iterator[RowContext]:
        group_indices, agg_indices = slots
        aggregates = node.aggregates
        having = self._truth_fn(node, "having", node.having)
        make = self._ctx_factory(scan.table, scan.binding_name)
        self.xstats.record_materialize_boundary()
        groups: Dict[Tuple[Any, ...], Tuple[RowContext, List]] = {}
        order: List[Tuple[Any, ...]] = []
        for cbatch in cbatches:
            columns = cbatch.columns
            group_cols = [columns[i] for i in group_indices]
            agg_cols = [None if i is None else columns[i]
                        for i in agg_indices]
            for i in cbatch.selected():
                key = tuple(
                    ("\x00NULL" if is_null(col[i]) else col[i])
                    for col in group_cols)
                try:
                    hash(key)
                except TypeError:
                    key = tuple(repr(k) for k in key)
                state = groups.get(key)
                if state is None:
                    # one materialized row per group (first seen), for
                    # HAVING and the projection above
                    state = (make(cbatch.rowids[i], cbatch.row(i)),
                             [_Accumulator(a) for a in aggregates])
                    groups[key] = state
                    order.append(key)
                for acc, col in zip(state[1], agg_cols):
                    if col is None:
                        acc.count += 1  # COUNT(*)
                    else:
                        acc.add_value(col[i])
        if not groups and not node.group_exprs:
            # global aggregate over an empty input still yields one row
            empty = RowContext()
            for agg in aggregates:
                empty.agg[aggregate_key(agg)] = _Accumulator(agg).result()
            if having is None or having(empty):
                yield empty
            return
        for key in order:
            out, accs = groups[key]
            for agg, acc in zip(aggregates, accs):
                out.agg[aggregate_key(agg)] = acc.result()
            if having is None or having(out):
                yield out

    def _iter_group_by_rows(self, node: pl.GroupByNode
                            ) -> Iterator[RowContext]:
        groups: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        order: List[Tuple[Any, ...]] = []
        aggregates = node.aggregates
        group_fns = self._value_fns(node, "group_exprs", node.group_exprs)
        having = self._truth_fn(node, "having", node.having)
        agg_compiled = node.compiled.get("agg_args") \
            if self.use_compiled else None
        evaluator = self.evaluator
        binds = self.binds
        arg_fns: List[Optional[Callable[[RowContext], Any]]] = []
        for agg in aggregates:
            if agg.arg is None:
                arg_fns.append(None)
                continue
            fn = (agg_compiled or {}).get(aggregate_key(agg))
            if fn is not None:
                arg_fns.append(lambda ctx, f=fn: f(ctx, binds))
            else:
                arg_fns.append(
                    lambda ctx, e=agg.arg: evaluator.evaluate(e, ctx))

        for ctx in self.iter_node(node.child):
            key = tuple(
                ("\x00NULL" if is_null(v) else v)
                for v in (fn(ctx) for fn in group_fns))
            try:
                hash(key)
            except TypeError:
                key = tuple(repr(k) for k in key)
            state = groups.get(key)
            if state is None:
                state = {"ctx": ctx,
                         "accs": [_Accumulator(a, fn)
                                  for a, fn in zip(aggregates, arg_fns)]}
                groups[key] = state
                order.append(key)
            for acc in state["accs"]:
                acc.add(ctx)

        if not groups and not node.group_exprs:
            # global aggregate over an empty input still yields one row
            empty = RowContext()
            for agg in aggregates:
                empty.agg[aggregate_key(agg)] = _Accumulator(agg).result()
            if having is None or having(empty):
                yield empty
            return

        for key in order:
            state = groups[key]
            out: RowContext = state["ctx"]
            for agg, acc in zip(aggregates, state["accs"]):
                out.agg[aggregate_key(agg)] = acc.result()
            if having is None or having(out):
                yield out


class _Accumulator:
    """Streaming state for one aggregate call.

    ``arg_fn`` is the (possibly compiled) per-row argument callable;
    None for COUNT(*)."""

    def __init__(self, call: AggregateCall,
                 arg_fn: Optional[Callable[[RowContext], Any]] = None):
        self.call = call
        self.arg_fn = arg_fn
        self.count = 0
        self.total: Any = 0
        self.min_value: Any = None
        self.max_value: Any = None
        self.distinct_seen = set() if call.distinct else None

    def add(self, ctx: RowContext) -> None:
        if self.call.arg is None:  # COUNT(*)
            self.count += 1
            return
        self.add_value(self.arg_fn(ctx))

    def add_value(self, value: Any) -> None:
        """Fold one argument value in — shared by the row pipeline
        (via :meth:`add`) and the vectorized column folds."""
        call = self.call
        if is_null(value):
            return
        if self.distinct_seen is not None:
            marker = value if isinstance(value, (int, float, str, bool)) \
                else repr(value)
            if marker in self.distinct_seen:
                return
            self.distinct_seen.add(marker)
        self.count += 1
        if call.func in ("sum", "avg"):
            self.total += value
        if call.func == "min":
            if self.min_value is None or value < self.min_value:
                self.min_value = value
        if call.func == "max":
            if self.max_value is None or value > self.max_value:
                self.max_value = value

    def result(self) -> Any:
        func = self.call.func
        if func == "count":
            return self.count
        if self.count == 0:
            return NULL
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count
        if func == "min":
            return self.min_value
        return self.max_value
