"""Abstract syntax tree for the SQL dialect.

Expressions and statements are small frozen-ish dataclasses; the planner
and executor pattern-match on their types.  Column references carry the
raw dotted path from the parser (``r.geometry`` → ["r", "geometry"]) and
are resolved to (alias, column, attribute-path) during binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    """A constant: number, string, boolean, or NULL."""

    value: Any

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


@dataclass
class ColumnRef(Expr):
    """A possibly-dotted name path; resolved during binding.

    After binding, ``alias``/``column``/``attr_path`` are filled in:
    ``r.geometry.gtype`` becomes alias="r", column="geometry",
    attr_path=["gtype"].
    """

    path: List[str]
    alias: Optional[str] = None
    column: Optional[str] = None
    attr_path: List[str] = field(default_factory=list)

    @property
    def bound(self) -> bool:
        return self.column is not None

    def display(self) -> str:
        """Source-like rendering of the reference."""
        return ".".join(self.path)

    def __repr__(self) -> str:
        if self.bound:
            suffix = "".join("." + a for a in self.attr_path)
            return f"Col({self.alias}.{self.column}{suffix})"
        return f"Col(?{'.'.join(self.path)})"


@dataclass
class BindParam(Expr):
    """A bind placeholder ``:name`` / ``:1``, replaced before execution.

    Bind variables are how application and cartridge code passes
    non-literal values (rowids, object instances, LOB locators) into SQL
    — the analogue of PL/SQL bind variables in the paper's callbacks.
    """

    name: str

    def __repr__(self) -> str:
        return f"Bind(:{self.name})"


@dataclass
class Star(Expr):
    """``*`` or ``alias.*`` in a select list."""

    alias: Optional[str] = None


@dataclass
class BinaryOp(Expr):
    """Arithmetic, comparison, or string concatenation."""

    op: str  # one of + - * / = != < <= > >= ||
    left: Expr
    right: Expr


@dataclass
class BoolOp(Expr):
    """AND/OR over two operands."""

    op: str  # AND | OR
    left: Expr
    right: Expr


@dataclass
class NotOp(Expr):
    """Logical negation."""

    operand: Expr


@dataclass
class UnaryMinus(Expr):
    """Numeric negation."""

    operand: Expr


@dataclass
class IsNullOp(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass
class LikeOp(Expr):
    """``expr [NOT] LIKE pattern``."""

    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class BetweenOp(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class InListOp(Expr):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expr
    items: List[Expr]
    negated: bool = False


@dataclass
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` — uncorrelated, materialized at
    planning time."""

    operand: Expr
    query: "Select" = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class ExistsSubquery(Expr):
    """``EXISTS (SELECT ...)`` — uncorrelated, materialized at planning."""

    query: "Select" = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class FuncCall(Expr):
    """A call ``name(args)``; ``name`` may be dotted (``sdo_geom.relate``).

    Whether this is a built-in function, a user function, a user-defined
    operator, or an aggregate is decided at binding time against the
    catalog.
    """

    name: str
    args: List[Expr]
    distinct: bool = False

    def __repr__(self) -> str:
        return f"Func({self.name}, {self.args!r})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement:
    """Base class for statement nodes."""


@dataclass
class ColumnDef:
    """One column in CREATE TABLE (or attribute in CREATE TYPE).

    For collection columns (``VARRAY(10) OF VARCHAR2(64)``,
    ``TABLE OF NUMBER``) the element type goes in ``elem_type_name``/
    ``elem_length`` and ``collection`` is "varray" or "table".
    """

    name: str
    type_name: str
    length: Optional[int] = None
    not_null: bool = False
    primary_key: bool = False
    collection: Optional[str] = None
    elem_type_name: Optional[str] = None
    elem_length: Optional[int] = None
    limit: Optional[int] = None


@dataclass
class CreateTable(Statement):
    name: str
    columns: List[ColumnDef]
    primary_key: List[str] = field(default_factory=list)
    organization_index: bool = False


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass
class TruncateTable(Statement):
    name: str


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    columns: List[str]
    unique: bool = False
    kind: str = "btree"  # btree | bitmap | hash | domain
    indextype: Optional[str] = None
    parameters: Optional[str] = None


@dataclass
class AlterIndex(Statement):
    name: str
    parameters: Optional[str] = None
    rebuild: bool = False
    #: ALTER INDEX ... UNUSABLE — administratively degrade the index
    unusable: bool = False


@dataclass
class DropIndex(Statement):
    name: str
    force: bool = False


@dataclass
class OperatorBinding:
    """One BINDING clause of CREATE OPERATOR."""

    arg_types: List[Tuple[str, Optional[int]]]
    return_type: str
    function_name: str


@dataclass
class CreateOperator(Statement):
    name: str
    bindings: List[OperatorBinding]
    ancillary_to: Optional[str] = None


@dataclass
class DropOperator(Statement):
    name: str
    force: bool = False


@dataclass
class IndextypeOperator:
    """One supported operator in CREATE INDEXTYPE ... FOR."""

    name: str
    arg_types: List[Tuple[str, Optional[int]]]


@dataclass
class CreateIndextype(Statement):
    name: str
    operators: List[IndextypeOperator]
    using: str


@dataclass
class DropIndextype(Statement):
    name: str
    force: bool = False


@dataclass
class AssociateStatistics(Statement):
    """ASSOCIATE STATISTICS WITH INDEXTYPES name USING stats_class."""

    kind: str  # "indextypes" | "functions"
    names: List[str]
    using: str


@dataclass
class AnalyzeTable(Statement):
    name: str


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[List[str]]
    rows: List[List[Expr]]
    select: Optional["Select"] = None


@dataclass
class Update(Statement):
    table: str
    alias: Optional[str]
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr]


@dataclass
class Delete(Statement):
    table: str
    alias: Optional[str]
    where: Optional[Expr]


@dataclass
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A FROM-list entry: table name plus optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Select(Statement):
    items: List[SelectItem]
    tables: List[TableRef]
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    distinct: bool = False
    limit: Optional[int] = None
    offset: Optional[int] = None


@dataclass
class Explain(Statement):
    query: Select


@dataclass
class Commit(Statement):
    pass


@dataclass
class Rollback(Statement):
    savepoint: Optional[str] = None


@dataclass
class BeginTransaction(Statement):
    pass


@dataclass
class Savepoint(Statement):
    name: str = ""


@dataclass
class SetTransaction(Statement):
    """SET TRANSACTION READ ONLY / READ WRITE / ISOLATION LEVEL ...

    ``read_only`` pins the transaction to a single snapshot and rejects
    DML; ``isolation`` is ``"SERIALIZABLE"`` or ``"READ COMMITTED"``.
    """

    read_only: bool = False
    isolation: Optional[str] = None


@dataclass
class GrantStatement(Statement):
    """GRANT/REVOKE privileges ON table TO/FROM user (§2.5 privileges)."""

    privileges: List[str]  # lower-cased: select/insert/update/delete
    table: str = ""
    grantee: str = ""
    revoke: bool = False


@dataclass
class CreateType(Statement):
    """CREATE TYPE name AS OBJECT (attr type, ...)."""

    name: str
    attributes: List[ColumnDef] = field(default_factory=list)
