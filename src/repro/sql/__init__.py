"""SQL engine: lexer, parser, catalog, planner, executor, session facade."""

from repro.sql.session import Database, Cursor

__all__ = ["Database", "Cursor"]
