"""The catalog (data dictionary).

Holds every schema object: tables (with their storage), indexes (native
and domain), user-defined operators, indextypes, registered functions and
implementation types, object types, and optimizer statistics.  All names
are case-insensitive (stored lower-cased).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union

from repro.core.domain_index import DomainIndex, IndexState
from repro.core.indextype import Indextype
from repro.core.odci import IndexMethods
from repro.core.operators import Operator
from repro.core.stats import StatsMethods
from repro.errors import CatalogError
from repro.index import BitmapIndex, BTree, HashIndex
from repro.storage.heap import HeapTable
from repro.storage.iot import IndexOrganizedTable
from repro.types.datatypes import DataType
from repro.types.objects import ObjectType


@dataclass
class ColumnInfo:
    """One column of a table: name, SQL type, NOT NULL flag."""

    name: str
    datatype: DataType
    not_null: bool = False


@dataclass
class ColumnStats:
    """ANALYZE-collected statistics for one column."""

    ndv: int = 0
    null_count: int = 0
    min_value: Any = None
    max_value: Any = None


@dataclass
class TableStats:
    """ANALYZE-collected statistics for one table."""

    row_count: int = 0
    page_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    analyzed: bool = False


Storage = Union[HeapTable, IndexOrganizedTable]


@dataclass
class TableDef:
    """Catalog record of a table."""

    name: str
    columns: List[ColumnInfo]
    storage: Storage
    primary_key: List[str] = field(default_factory=list)
    is_iot: bool = False
    index_names: List[str] = field(default_factory=list)
    stats: TableStats = field(default_factory=TableStats)
    #: the user who created the table ("main" is the superuser)
    owner: str = "main"

    @property
    def key(self) -> str:
        return self.name.lower()

    def column_position(self, column: str) -> int:
        """0-based position of ``column`` (case-insensitive)."""
        target = column.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == target:
                return i
        raise CatalogError(f"table {self.name} has no column {column!r}")

    def column_info(self, column: str) -> ColumnInfo:
        """The :class:`ColumnInfo` for ``column``."""
        return self.columns[self.column_position(column)]

    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    @property
    def live_row_count(self) -> int:
        """Current row count straight from storage (not ANALYZE)."""
        return self.storage.row_count


NativeStructure = Union[BTree, HashIndex, BitmapIndex]


@dataclass
class IndexDef:
    """Catalog record of an index — native (btree/hash/bitmap) or domain."""

    name: str
    table_name: str
    column_names: Tuple[str, ...]
    kind: str  # "btree" | "hash" | "bitmap" | "domain"
    unique: bool = False
    structure: Optional[NativeStructure] = None
    domain: Optional[DomainIndex] = None

    @property
    def key(self) -> str:
        return self.name.lower()

    @property
    def is_domain(self) -> bool:
        return self.kind == "domain"


@dataclass
class SQLFunction:
    """A registered SQL-visible function backed by a Python callable.

    ``cost`` is the optimizer's per-invocation CPU estimate, used when
    deciding functional vs index evaluation of operators (§2.4.2).
    """

    name: str
    fn: Callable[..., Any]
    cost: float = 1.0
    aggregate: bool = False

    @property
    def key(self) -> str:
        return self.name.lower()


class Catalog:
    """All schema objects of one database.

    ``version`` is a monotonic counter bumped on every schema change —
    DDL, ANALYZE, operator/indextype (re)registration — and is the
    invalidation signal for the shared plan cache: a compiled plan is
    only reusable while the catalog version it was built against is
    still current.
    """

    def __init__(self):
        #: latch serializing schema mutation and dict-iterating reads.
        #: Point lookups (``tables[key]``) stay latch-free — dict access
        #: is atomic under the GIL and DDL replaces entries wholesale.
        #: First in the engine latch order: catalog → plan cache →
        #: lock-manager internals → buffer cache.
        self.latch = threading.RLock()
        #: monotonic schema version (plan-cache invalidation signal)
        self.version = 0
        self.tables: Dict[str, TableDef] = {}
        self.indexes: Dict[str, IndexDef] = {}
        self.operators: Dict[str, Operator] = {}
        self.indextypes: Dict[str, Indextype] = {}
        self.functions: Dict[str, SQLFunction] = {}
        self.object_types: Dict[str, ObjectType] = {}
        #: registered IndexMethods implementation classes, by name
        self.method_types: Dict[str, Type[IndexMethods]] = {}
        #: registered StatsMethods classes, by name
        self.stats_types: Dict[str, Type[StatsMethods]] = {}
        #: domain-index statistics collected via ODCIStatsCollect
        self.domain_index_stats: Dict[str, dict] = {}
        #: function name -> stats type name (ASSOCIATE ... WITH FUNCTIONS)
        self.function_stats: Dict[str, str] = {}
        #: (user, table_key) -> set of granted privileges (§2.5)
        self.grants: Dict[Tuple[str, str], set] = {}
        #: optional name -> TableDef hook for synthesized dictionary views
        self.view_provider = None

    # -- schema versioning ----------------------------------------------

    def bump_version(self) -> int:
        """Advance the schema version (invalidates cached plans)."""
        with self.latch:
            self.version += 1
            return self.version

    # -- privileges ------------------------------------------------------

    def grant(self, user: str, table_key: str, privileges) -> None:
        """Add table privileges for ``user``."""
        key = (user.lower(), table_key.lower())
        with self.latch:
            self.grants.setdefault(key, set()).update(privileges)

    def revoke(self, user: str, table_key: str, privileges) -> None:
        """Remove table privileges for ``user``."""
        key = (user.lower(), table_key.lower())
        with self.latch:
            held = self.grants.get(key)
            if held is not None:
                held.difference_update(privileges)
                if not held:
                    del self.grants[key]

    def has_grant(self, user: str, table_key: str, privilege: str) -> bool:
        """True when ``user`` holds ``privilege`` on the table."""
        return privilege in self.grants.get(
            (user.lower(), table_key.lower()), ())

    # -- tables ---------------------------------------------------------

    def add_table(self, table: TableDef) -> None:
        with self.latch:
            if table.key in self.tables:
                raise CatalogError(f"table {table.name} already exists")
            self.tables[table.key] = table
            self.bump_version()

    def get_table(self, name: str) -> TableDef:
        try:
            return self.tables[name.lower()]
        except KeyError:
            if self.view_provider is not None:
                view = self.view_provider(name)
                if view is not None:
                    return view
            raise CatalogError(f"no such table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def drop_table(self, name: str) -> TableDef:
        with self.latch:
            table = self.get_table(name)
            del self.tables[table.key]
            self.bump_version()
            return table

    def indexes_on(self, table_name: str) -> List[IndexDef]:
        """Every index defined on ``table_name`` (snapshot list)."""
        key = table_name.lower()
        with self.latch:
            return [idx for idx in self.indexes.values()
                    if idx.table_name.lower() == key]

    # -- indexes ----------------------------------------------------------

    def add_index(self, index: IndexDef) -> None:
        with self.latch:
            if index.key in self.indexes:
                raise CatalogError(f"index {index.name} already exists")
            self.indexes[index.key] = index
            table = self.get_table(index.table_name)
            table.index_names.append(index.name)
            self.bump_version()

    def get_index(self, name: str) -> IndexDef:
        try:
            return self.indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"no such index {name!r}") from None

    def has_index(self, name: str) -> bool:
        return name.lower() in self.indexes

    def set_index_state(self, name: str, state: "IndexState") -> IndexDef:
        """Transition a domain index's health state.

        Every transition bumps the catalog version so cached plans that
        chose (or deliberately avoided) the index are invalidated — a
        plan compiled against a VALID index must not survive the index
        going UNUSABLE, and vice versa after REBUILD.
        """
        with self.latch:
            index = self.get_index(name)
            if index.domain is None:
                raise CatalogError(
                    f"index {index.name} is not a domain index")
            if index.domain.state is not state:
                index.domain.state = state
                self.bump_version()
            return index

    def drop_index(self, name: str) -> IndexDef:
        with self.latch:
            index = self.get_index(name)
            del self.indexes[index.key]
            table = self.tables.get(index.table_name.lower())
            if table and index.name in table.index_names:
                table.index_names.remove(index.name)
            self.domain_index_stats.pop(index.key, None)
            self.bump_version()
            return index

    # -- operators -----------------------------------------------------------

    def add_operator(self, operator: Operator) -> None:
        with self.latch:
            if operator.key in self.operators:
                raise CatalogError(
                    f"operator {operator.name} already exists")
            self.operators[operator.key] = operator
            self.bump_version()

    def get_operator(self, name: str) -> Operator:
        try:
            return self.operators[name.lower()]
        except KeyError:
            raise CatalogError(f"no such operator {name!r}") from None

    def has_operator(self, name: str) -> bool:
        return name.lower() in self.operators

    def drop_operator(self, name: str) -> Operator:
        with self.latch:
            operator = self.get_operator(name)
            del self.operators[operator.key]
            self.bump_version()
            return operator

    # -- indextypes -------------------------------------------------------------

    def add_indextype(self, indextype: Indextype) -> None:
        with self.latch:
            if indextype.key in self.indextypes:
                raise CatalogError(
                    f"indextype {indextype.name} already exists")
            self.indextypes[indextype.key] = indextype
            self.bump_version()

    def get_indextype(self, name: str) -> Indextype:
        try:
            return self.indextypes[name.lower()]
        except KeyError:
            raise CatalogError(f"no such indextype {name!r}") from None

    def has_indextype(self, name: str) -> bool:
        return name.lower() in self.indextypes

    def drop_indextype(self, name: str) -> Indextype:
        with self.latch:
            return self._drop_indextype(name)

    def _drop_indextype(self, name: str) -> Indextype:
        indextype = self.get_indextype(name)
        used_by = [idx.name for idx in self.indexes.values()
                   if idx.is_domain and idx.domain
                   and idx.domain.indextype_name.lower() == indextype.key]
        if used_by:
            raise CatalogError(
                f"indextype {indextype.name} is used by domain index(es) "
                f"{used_by}; drop them first (or use FORCE)")
        del self.indextypes[indextype.key]
        self.bump_version()
        return indextype

    def indextypes_supporting(self, operator_name: str) -> List[Indextype]:
        """Every indextype that lists ``operator_name`` as supported."""
        with self.latch:
            return [it for it in self.indextypes.values()
                    if it.supports(operator_name)]

    # -- functions -------------------------------------------------------------

    def add_function(self, function: SQLFunction) -> None:
        with self.latch:
            self.functions[function.key] = function
            self.bump_version()

    def get_function(self, name: str) -> SQLFunction:
        try:
            return self.functions[name.lower()]
        except KeyError:
            raise CatalogError(f"no such function {name!r}") from None

    def has_function(self, name: str) -> bool:
        return name.lower() in self.functions

    # -- object types ----------------------------------------------------------

    def add_object_type(self, object_type: ObjectType) -> None:
        key = object_type.type_name.lower()
        with self.latch:
            if key in self.object_types:
                raise CatalogError(
                    f"type {object_type.type_name} already exists")
            self.object_types[key] = object_type
            self.bump_version()

    def get_object_type(self, name: str) -> ObjectType:
        try:
            return self.object_types[name.lower()]
        except KeyError:
            raise CatalogError(f"no such object type {name!r}") from None

    def has_object_type(self, name: str) -> bool:
        return name.lower() in self.object_types

    # -- implementation registries -----------------------------------------------

    def register_method_type(self, name: str,
                             cls: Type[IndexMethods]) -> None:
        """Register an ODCIIndex implementation class under ``name``."""
        if not (isinstance(cls, type) and issubclass(cls, IndexMethods)):
            raise CatalogError(
                f"{name}: implementation must subclass IndexMethods")
        with self.latch:
            self.method_types[name.lower()] = cls
            self.bump_version()

    def get_method_type(self, name: str) -> Type[IndexMethods]:
        try:
            return self.method_types[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no registered implementation type {name!r}; call "
                f"db.register_methods({name!r}, cls) first") from None

    def register_stats_type(self, name: str, cls: Type[StatsMethods]) -> None:
        """Register an ODCIStats implementation class under ``name``."""
        if not (isinstance(cls, type) and issubclass(cls, StatsMethods)):
            raise CatalogError(
                f"{name}: statistics type must subclass StatsMethods")
        with self.latch:
            self.stats_types[name.lower()] = cls
            self.bump_version()

    def get_stats_type(self, name: str) -> Type[StatsMethods]:
        try:
            return self.stats_types[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no registered statistics type {name!r}") from None
