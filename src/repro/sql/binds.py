"""Bind-variable handling.

``db.execute("DELETE FROM t WHERE rid = :1", [rowid])`` parses the SQL
with :class:`~repro.sql.ast_nodes.BindParam` placeholders.  For DML the
placeholders are substituted with literals carrying the supplied Python
values (:func:`substitute_binds`) — this is how cartridge callbacks move
rowids, object values, and LOB locators through the SQL interface.  For
cacheable queries the placeholders stay in the tree and the executor
resolves them per execution, so one compiled plan serves every bind set
(:func:`collect_bind_names` extracts the plan's bind signature).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ExecutionError
from repro.sql import ast_nodes as ast

Params = Union[Sequence[Any], Dict[str, Any]]


def normalize_params(params: Optional[Params]) -> Dict[str, Any]:
    """Accept a sequence (positional :1..:n) or mapping (named binds)."""
    if params is None:
        return {}
    if isinstance(params, dict):
        return {str(k).lower(): v for k, v in params.items()}
    return {str(i + 1): v for i, v in enumerate(params)}


def substitute_binds(statement: ast.Statement,
                     params: Optional[Params]) -> ast.Statement:
    """Replace every BindParam in ``statement`` with its bound literal.

    Raises :class:`~repro.errors.ExecutionError` for a placeholder with
    no supplied value.
    """
    values = normalize_params(params)

    def sub(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
        if expr is None:
            return None
        return _sub_expr(expr, values)

    if isinstance(statement, ast.Select):
        _sub_select(statement, values)
    elif isinstance(statement, ast.Insert):
        statement.rows = [[sub(e) for e in row] for row in statement.rows]
        if statement.select is not None:
            _sub_select(statement.select, values)
    elif isinstance(statement, ast.Update):
        statement.assignments = [(col, sub(e))
                                 for col, e in statement.assignments]
        statement.where = sub(statement.where)
    elif isinstance(statement, ast.Delete):
        statement.where = sub(statement.where)
    elif isinstance(statement, ast.Explain):
        _sub_select(statement.query, values)
    return statement


def _sub_select(select: ast.Select, values: Dict[str, Any]) -> None:
    for item in select.items:
        item.expr = _sub_expr(item.expr, values)
    select.where = _sub_expr(select.where, values) \
        if select.where is not None else None
    select.group_by = [_sub_expr(e, values) for e in select.group_by]
    select.having = _sub_expr(select.having, values) \
        if select.having is not None else None
    for order in select.order_by:
        order.expr = _sub_expr(order.expr, values)


def _sub_expr(expr: ast.Expr, values: Dict[str, Any]) -> ast.Expr:
    if isinstance(expr, ast.BindParam):
        key = expr.name.lower()
        if key not in values:
            raise ExecutionError(f"no value supplied for bind :{expr.name}")
        return ast.Literal(values[key])
    if isinstance(expr, ast.BinaryOp):
        expr.left = _sub_expr(expr.left, values)
        expr.right = _sub_expr(expr.right, values)
    elif isinstance(expr, ast.BoolOp):
        expr.left = _sub_expr(expr.left, values)
        expr.right = _sub_expr(expr.right, values)
    elif isinstance(expr, (ast.NotOp, ast.UnaryMinus, ast.IsNullOp)):
        expr.operand = _sub_expr(expr.operand, values)
    elif isinstance(expr, ast.LikeOp):
        expr.operand = _sub_expr(expr.operand, values)
        expr.pattern = _sub_expr(expr.pattern, values)
    elif isinstance(expr, ast.BetweenOp):
        expr.operand = _sub_expr(expr.operand, values)
        expr.low = _sub_expr(expr.low, values)
        expr.high = _sub_expr(expr.high, values)
    elif isinstance(expr, ast.InListOp):
        expr.operand = _sub_expr(expr.operand, values)
        expr.items = [_sub_expr(i, values) for i in expr.items]
    elif isinstance(expr, ast.FuncCall):
        expr.args = [_sub_expr(a, values) for a in expr.args]
    elif isinstance(expr, ast.InSubquery):
        expr.operand = _sub_expr(expr.operand, values)
        _sub_select(expr.query, values)
    elif isinstance(expr, ast.ExistsSubquery):
        _sub_select(expr.query, values)
    return expr


# ---------------------------------------------------------------------------
# Statement inspection (plan-cache support)
# ---------------------------------------------------------------------------

def collect_bind_names(statement: ast.Statement) -> List[str]:
    """Sorted lower-cased names of every BindParam in ``statement``."""
    names: set = set()
    _walk_statement(statement, names)
    return sorted(names)


def statement_has_subquery(statement: ast.Statement) -> bool:
    """True when the statement contains an IN/EXISTS subquery.

    The planner materializes subquery results at *plan* time, so such
    plans freeze data and must never be cached.
    """
    flag = [False]
    _walk_statement(statement, None, flag)
    return flag[0]


def _walk_statement(statement: ast.Statement, names, flag=None) -> None:
    def walk(expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.BindParam):
            if names is not None:
                names.add(expr.name.lower())
        elif isinstance(expr, (ast.BinaryOp, ast.BoolOp)):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, (ast.NotOp, ast.UnaryMinus, ast.IsNullOp)):
            walk(expr.operand)
        elif isinstance(expr, ast.LikeOp):
            walk(expr.operand)
            walk(expr.pattern)
        elif isinstance(expr, ast.BetweenOp):
            walk(expr.operand)
            walk(expr.low)
            walk(expr.high)
        elif isinstance(expr, ast.InListOp):
            walk(expr.operand)
            for item in expr.items:
                walk(item)
        elif isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                walk(arg)
        elif isinstance(expr, ast.InSubquery):
            if flag is not None:
                flag[0] = True
            walk(expr.operand)
            walk_select(expr.query)
        elif isinstance(expr, ast.ExistsSubquery):
            if flag is not None:
                flag[0] = True
            walk_select(expr.query)

    def walk_select(select: ast.Select) -> None:
        for item in select.items:
            walk(item.expr)
        walk(select.where)
        for e in select.group_by:
            walk(e)
        walk(select.having)
        for order in select.order_by:
            walk(order.expr)

    if isinstance(statement, ast.Select):
        walk_select(statement)
    elif isinstance(statement, ast.Insert):
        for row in statement.rows:
            for e in row:
                walk(e)
        if statement.select is not None:
            walk_select(statement.select)
    elif isinstance(statement, ast.Update):
        for _, e in statement.assignments:
            walk(e)
        walk(statement.where)
    elif isinstance(statement, ast.Delete):
        walk(statement.where)
    elif isinstance(statement, ast.Explain):
        walk_select(statement.query)
