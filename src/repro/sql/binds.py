"""Bind-variable substitution.

``db.execute("DELETE FROM t WHERE rid = :1", [rowid])`` parses the SQL
with :class:`~repro.sql.ast_nodes.BindParam` placeholders and then
replaces each with a literal carrying the supplied Python value.  This
is how cartridge callbacks move rowids, object values, and LOB locators
— things with no SQL literal syntax — through the SQL interface.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ExecutionError
from repro.sql import ast_nodes as ast

Params = Union[Sequence[Any], Dict[str, Any]]


def normalize_params(params: Optional[Params]) -> Dict[str, Any]:
    """Accept a sequence (positional :1..:n) or mapping (named binds)."""
    if params is None:
        return {}
    if isinstance(params, dict):
        return {str(k).lower(): v for k, v in params.items()}
    return {str(i + 1): v for i, v in enumerate(params)}


def substitute_binds(statement: ast.Statement,
                     params: Optional[Params]) -> ast.Statement:
    """Replace every BindParam in ``statement`` with its bound literal.

    Raises :class:`~repro.errors.ExecutionError` for a placeholder with
    no supplied value.
    """
    values = normalize_params(params)

    def sub(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
        if expr is None:
            return None
        return _sub_expr(expr, values)

    if isinstance(statement, ast.Select):
        _sub_select(statement, values)
    elif isinstance(statement, ast.Insert):
        statement.rows = [[sub(e) for e in row] for row in statement.rows]
        if statement.select is not None:
            _sub_select(statement.select, values)
    elif isinstance(statement, ast.Update):
        statement.assignments = [(col, sub(e))
                                 for col, e in statement.assignments]
        statement.where = sub(statement.where)
    elif isinstance(statement, ast.Delete):
        statement.where = sub(statement.where)
    elif isinstance(statement, ast.Explain):
        _sub_select(statement.query, values)
    return statement


def _sub_select(select: ast.Select, values: Dict[str, Any]) -> None:
    for item in select.items:
        item.expr = _sub_expr(item.expr, values)
    select.where = _sub_expr(select.where, values) \
        if select.where is not None else None
    select.group_by = [_sub_expr(e, values) for e in select.group_by]
    select.having = _sub_expr(select.having, values) \
        if select.having is not None else None
    for order in select.order_by:
        order.expr = _sub_expr(order.expr, values)


def _sub_expr(expr: ast.Expr, values: Dict[str, Any]) -> ast.Expr:
    if isinstance(expr, ast.BindParam):
        key = expr.name.lower()
        if key not in values:
            raise ExecutionError(f"no value supplied for bind :{expr.name}")
        return ast.Literal(values[key])
    if isinstance(expr, ast.BinaryOp):
        expr.left = _sub_expr(expr.left, values)
        expr.right = _sub_expr(expr.right, values)
    elif isinstance(expr, ast.BoolOp):
        expr.left = _sub_expr(expr.left, values)
        expr.right = _sub_expr(expr.right, values)
    elif isinstance(expr, (ast.NotOp, ast.UnaryMinus, ast.IsNullOp)):
        expr.operand = _sub_expr(expr.operand, values)
    elif isinstance(expr, ast.LikeOp):
        expr.operand = _sub_expr(expr.operand, values)
        expr.pattern = _sub_expr(expr.pattern, values)
    elif isinstance(expr, ast.BetweenOp):
        expr.operand = _sub_expr(expr.operand, values)
        expr.low = _sub_expr(expr.low, values)
        expr.high = _sub_expr(expr.high, values)
    elif isinstance(expr, ast.InListOp):
        expr.operand = _sub_expr(expr.operand, values)
        expr.items = [_sub_expr(i, values) for i in expr.items]
    elif isinstance(expr, ast.FuncCall):
        expr.args = [_sub_expr(a, values) for a in expr.args]
    elif isinstance(expr, ast.InSubquery):
        expr.operand = _sub_expr(expr.operand, values)
        _sub_select(expr.query, values)
    elif isinstance(expr, ast.ExistsSubquery):
        _sub_select(expr.query, values)
    return expr
