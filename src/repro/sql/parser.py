"""Recursive-descent parser for the SQL dialect.

Covers the statements the paper's framework needs: ordinary DDL/DML/query
SQL plus the extensibility DDL — CREATE OPERATOR with bindings, CREATE
INDEXTYPE ... FOR ... USING, CREATE INDEX ... INDEXTYPE IS ... PARAMETERS,
ALTER INDEX ... PARAMETERS, and ASSOCIATE STATISTICS.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import Token, TokenKind, tokenize
from repro.types.values import NULL


#: Keywords that may double as identifiers (column/table names) because
#: their keyword role is position-specific and unambiguous.
SOFT_KEYWORDS = ("TYPE", "KEY", "STATISTICS", "WORK", "PLAN", "FORCE",
                 "LIMIT", "OFFSET", "OBJECT", "VARRAY", "PARAMETERS",
                 "BINDING", "ANCILLARY", "ORGANIZATION", "HEAP", "ALL")


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement (a trailing semicolon is allowed)."""
    return Parser(sql).parse_statement()


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and cartridges)."""
    parser = Parser(text)
    expr = parser._expr()
    parser._expect_eof()
    return expr


class Parser:
    """One-statement parser over the token stream."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _error(self, message: str, tok: Optional[Token] = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(message, tok.pos, self.sql)

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._next()
        return None

    def _expect_keyword(self, *words: str) -> Token:
        tok = self._accept_keyword(*words)
        if tok is None:
            raise self._error(f"expected {'/'.join(words)}, got {self._peek().text!r}")
        return tok

    def _accept_punct(self, ch: str) -> bool:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text == ch:
            self._next()
            return True
        return False

    def _expect_punct(self, ch: str) -> None:
        if not self._accept_punct(ch):
            raise self._error(f"expected {ch!r}, got {self._peek().text!r}")

    def _accept_op(self, *ops: str) -> Optional[str]:
        tok = self._peek()
        if tok.kind is TokenKind.OP and tok.text in ops:
            self._next()
            return tok.text
        return None

    def _ident(self, what: str = "identifier") -> str:
        tok = self._peek()
        if tok.kind is TokenKind.IDENT:
            self._next()
            return tok.text
        # allow non-reserved-feeling keywords as identifiers in name position
        if tok.kind is TokenKind.KEYWORD and tok.text in SOFT_KEYWORDS:
            self._next()
            return tok.text
        raise self._error(f"expected {what}, got {tok.text!r}")

    def _dotted_name(self) -> List[str]:
        parts = [self._ident()]
        while self._peek().kind is TokenKind.PUNCT and self._peek().text == ".":
            # don't consume the dot if followed by '*' (alias.* handled above)
            if self._peek(1).kind is TokenKind.OP and self._peek(1).text == "*":
                break
            self._next()
            parts.append(self._ident())
        return parts

    def _expect_eof(self) -> None:
        self._accept_punct(";")
        if self._peek().kind is not TokenKind.EOF:
            raise self._error(f"unexpected trailing input {self._peek().text!r}")

    # -- statements --------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Dispatch on the leading keyword and parse one statement."""
        tok = self._peek()
        if tok.is_keyword("SELECT"):
            stmt: ast.Statement = self._select()
        elif tok.is_keyword("INSERT"):
            stmt = self._insert()
        elif tok.is_keyword("UPDATE"):
            stmt = self._update()
        elif tok.is_keyword("DELETE"):
            stmt = self._delete()
        elif tok.is_keyword("CREATE"):
            stmt = self._create()
        elif tok.is_keyword("DROP"):
            stmt = self._drop()
        elif tok.is_keyword("ALTER"):
            stmt = self._alter()
        elif tok.is_keyword("TRUNCATE"):
            self._next()
            self._expect_keyword("TABLE")
            stmt = ast.TruncateTable(self._ident("table name"))
        elif tok.is_keyword("ASSOCIATE"):
            stmt = self._associate()
        elif tok.is_keyword("ANALYZE"):
            stmt = self._analyze()
        elif tok.is_keyword("EXPLAIN"):
            self._next()
            if self._accept_keyword("PLAN"):
                self._expect_keyword("FOR")
            stmt = ast.Explain(self._select())
        elif tok.is_keyword("COMMIT"):
            self._next()
            self._accept_keyword("WORK")
            stmt = ast.Commit()
        elif tok.is_keyword("ROLLBACK"):
            self._next()
            self._accept_keyword("WORK")
            name = None
            if self._accept_keyword("TO"):
                self._accept_keyword("SAVEPOINT")
                name = self._ident("savepoint name")
            stmt = ast.Rollback(savepoint=name)
        elif tok.is_keyword("BEGIN"):
            self._next()
            self._accept_keyword("TRANSACTION", "WORK")
            stmt = ast.BeginTransaction()
        elif tok.is_keyword("SAVEPOINT"):
            self._next()
            stmt = ast.Savepoint(self._ident("savepoint name"))
        elif tok.is_keyword("SET"):
            stmt = self._set_transaction()
        elif tok.is_keyword("GRANT", "REVOKE"):
            stmt = self._grant()
        else:
            raise self._error(f"unexpected statement start {tok.text!r}")
        self._expect_eof()
        return stmt

    def _set_transaction(self) -> ast.SetTransaction:
        """SET TRANSACTION READ ONLY | READ WRITE
                           | ISOLATION LEVEL SERIALIZABLE
                           | ISOLATION LEVEL READ COMMITTED

        The mode words are not reserved — they arrive as plain
        identifiers and are matched by text.
        """
        self._expect_keyword("SET")
        self._expect_keyword("TRANSACTION")
        read_only = False
        isolation: Optional[str] = None
        saw_clause = False
        while self._peek().kind is TokenKind.IDENT:
            word = self._ident().upper()
            if word == "READ":
                mode = self._ident("ONLY or WRITE").upper()
                if mode == "ONLY":
                    read_only = True
                elif mode == "WRITE":
                    read_only = False
                else:
                    raise self._error(f"expected ONLY or WRITE, got {mode!r}")
            elif word == "ISOLATION":
                if self._ident("LEVEL").upper() != "LEVEL":
                    raise self._error("expected LEVEL after ISOLATION")
                level = self._ident("isolation level").upper()
                if level == "SERIALIZABLE":
                    isolation = "SERIALIZABLE"
                elif level == "READ" \
                        and self._ident("COMMITTED").upper() == "COMMITTED":
                    isolation = "READ COMMITTED"
                else:
                    raise self._error(f"unknown isolation level {level!r}")
            else:
                raise self._error(
                    f"expected READ or ISOLATION, got {word!r}")
            saw_clause = True
            if not self._accept_punct(","):
                break
        if not saw_clause:
            raise self._error("expected READ or ISOLATION after "
                              "SET TRANSACTION")
        return ast.SetTransaction(read_only=read_only, isolation=isolation)

    # -- CREATE family -------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            return self._create_table()
        if self._accept_keyword("OPERATOR"):
            return self._create_operator()
        if self._accept_keyword("INDEXTYPE"):
            return self._create_indextype()
        if self._accept_keyword("TYPE"):
            return self._create_type()
        unique = bool(self._accept_keyword("UNIQUE"))
        kind = "btree"
        tok = self._peek()
        if tok.kind is TokenKind.IDENT and tok.text.upper() in ("BITMAP", "HASH"):
            kind = tok.text.lower()
            self._next()
        self._expect_keyword("INDEX")
        return self._create_index(unique=unique, kind=kind)

    def _create_table(self) -> ast.CreateTable:
        name = self._ident("table name")
        self._expect_punct("(")
        columns: List[ast.ColumnDef] = []
        primary_key: List[str] = []
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_punct("(")
                primary_key = [self._ident("column")]
                while self._accept_punct(","):
                    primary_key.append(self._ident("column"))
                self._expect_punct(")")
            else:
                columns.append(self._column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        organization_index = False
        if self._accept_keyword("ORGANIZATION"):
            if self._accept_keyword("INDEX"):
                organization_index = True
            else:
                self._expect_keyword("HEAP")
        for col in columns:
            if col.primary_key and col.name not in primary_key:
                primary_key.append(col.name)
        return ast.CreateTable(name=name, columns=columns,
                               primary_key=primary_key,
                               organization_index=organization_index)

    def _column_def(self) -> ast.ColumnDef:
        name = self._ident("column name")
        col = self._type_spec(name)
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                col.not_null = True
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                col.primary_key = True
                col.not_null = True
            else:
                break
        return col

    def _type_spec(self, name: str) -> ast.ColumnDef:
        if self._accept_keyword("VARRAY"):
            limit = None
            if self._accept_punct("("):
                limit = self._int_literal()
                self._expect_punct(")")
            self._expect_keyword("OF")
            elem, elem_len = self._scalar_type()
            return ast.ColumnDef(name=name, type_name="VARRAY",
                                 collection="varray", elem_type_name=elem,
                                 elem_length=elem_len, limit=limit)
        if self._peek().is_keyword("TABLE"):
            self._next()
            self._expect_keyword("OF")
            elem, elem_len = self._scalar_type()
            return ast.ColumnDef(name=name, type_name="TABLE",
                                 collection="table", elem_type_name=elem,
                                 elem_length=elem_len)
        type_name, length = self._scalar_type()
        return ast.ColumnDef(name=name, type_name=type_name, length=length)

    def _scalar_type(self) -> Tuple[str, Optional[int]]:
        type_name = self._ident("type name")
        length = None
        if self._accept_punct("("):
            length = self._int_literal()
            # NUMBER(p, s): ignore scale
            if self._accept_punct(","):
                self._int_literal()
            self._expect_punct(")")
        return type_name, length

    def _int_literal(self) -> int:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER and isinstance(tok.value, int):
            self._next()
            return tok.value
        raise self._error("expected integer literal")

    def _create_index(self, unique: bool, kind: str) -> ast.CreateIndex:
        name = self._ident("index name")
        self._expect_keyword("ON")
        table = self._ident("table name")
        self._expect_punct("(")
        columns = [self._ident("column")]
        while self._accept_punct(","):
            columns.append(self._ident("column"))
        self._expect_punct(")")
        indextype = None
        parameters = None
        if self._accept_keyword("INDEXTYPE"):
            self._expect_keyword("IS")
            indextype = ".".join(self._dotted_name())
            kind = "domain"
        if self._accept_keyword("PARAMETERS"):
            self._expect_punct("(")
            tok = self._next()
            if tok.kind is not TokenKind.STRING:
                raise self._error("PARAMETERS requires a string literal", tok)
            parameters = tok.value
            self._expect_punct(")")
        return ast.CreateIndex(name=name, table=table, columns=columns,
                               unique=unique, kind=kind, indextype=indextype,
                               parameters=parameters)

    def _create_operator(self) -> ast.CreateOperator:
        name = ".".join(self._dotted_name())
        ancillary_to = None
        if self._accept_keyword("ANCILLARY"):
            self._expect_keyword("TO")
            ancillary_to = ".".join(self._dotted_name())
            if self._accept_punct("("):
                # the parent signature is informative only; skip it
                while not self._accept_punct(")"):
                    self._next()
        bindings: List[ast.OperatorBinding] = []
        while self._accept_keyword("BINDING"):
            arg_types = self._type_list()
            self._expect_keyword("RETURN")
            ret, __ = self._scalar_type()
            self._expect_keyword("USING")
            func = ".".join(self._dotted_name())
            bindings.append(ast.OperatorBinding(
                arg_types=arg_types, return_type=ret, function_name=func))
            self._accept_punct(",")
        if not bindings and ancillary_to is None:
            raise self._error("CREATE OPERATOR requires at least one BINDING")
        return ast.CreateOperator(name=name, bindings=bindings,
                                  ancillary_to=ancillary_to)

    def _type_list(self) -> List[Tuple[str, Optional[int]]]:
        self._expect_punct("(")
        types = [self._scalar_type()]
        while self._accept_punct(","):
            types.append(self._scalar_type())
        self._expect_punct(")")
        return types

    def _create_indextype(self) -> ast.CreateIndextype:
        name = self._ident("indextype name")
        self._expect_keyword("FOR")
        operators: List[ast.IndextypeOperator] = []
        while True:
            op_name = ".".join(self._dotted_name())
            arg_types = self._type_list()
            operators.append(ast.IndextypeOperator(name=op_name,
                                                   arg_types=arg_types))
            if not self._accept_punct(","):
                break
        self._expect_keyword("USING")
        using = ".".join(self._dotted_name())
        return ast.CreateIndextype(name=name, operators=operators, using=using)

    def _create_type(self) -> ast.CreateType:
        name = self._ident("type name")
        self._expect_keyword("AS")
        self._expect_keyword("OBJECT")
        self._expect_punct("(")
        attributes = [self._column_def()]
        while self._accept_punct(","):
            attributes.append(self._column_def())
        self._expect_punct(")")
        return ast.CreateType(name=name, attributes=attributes)

    # -- DROP / ALTER ----------------------------------------------------------

    def _drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            return ast.DropTable(self._ident("table name"))
        if self._accept_keyword("INDEX"):
            name = self._ident("index name")
            force = bool(self._accept_keyword("FORCE"))
            return ast.DropIndex(name, force=force)
        if self._accept_keyword("OPERATOR"):
            name = ".".join(self._dotted_name())
            force = bool(self._accept_keyword("FORCE"))
            return ast.DropOperator(name, force=force)
        if self._accept_keyword("INDEXTYPE"):
            name = self._ident("indextype name")
            force = bool(self._accept_keyword("FORCE"))
            return ast.DropIndextype(name, force=force)
        raise self._error("expected TABLE/INDEX/OPERATOR/INDEXTYPE after DROP")

    def _alter(self) -> ast.Statement:
        self._expect_keyword("ALTER")
        self._expect_keyword("INDEX")
        name = self._ident("index name")
        parameters = None
        rebuild = False
        if self._accept_keyword("UNUSABLE"):
            return ast.AlterIndex(name=name, unusable=True)
        if self._accept_keyword("REBUILD"):
            rebuild = True
        if self._accept_keyword("PARAMETERS"):
            self._expect_punct("(")
            tok = self._next()
            if tok.kind is not TokenKind.STRING:
                raise self._error("PARAMETERS requires a string literal", tok)
            parameters = tok.value
            self._expect_punct(")")
        if parameters is None and not rebuild:
            raise self._error(
                "ALTER INDEX requires REBUILD, UNUSABLE, or PARAMETERS")
        return ast.AlterIndex(name=name, parameters=parameters, rebuild=rebuild)

    # -- statistics --------------------------------------------------------------

    def _associate(self) -> ast.AssociateStatistics:
        self._expect_keyword("ASSOCIATE")
        self._expect_keyword("STATISTICS")
        self._expect_keyword("WITH")
        if self._accept_keyword("INDEXTYPES"):
            kind = "indextypes"
        else:
            self._expect_keyword("FUNCTIONS")
            kind = "functions"
        names = [".".join(self._dotted_name())]
        while self._accept_punct(","):
            names.append(".".join(self._dotted_name()))
        self._expect_keyword("USING")
        using = ".".join(self._dotted_name())
        return ast.AssociateStatistics(kind=kind, names=names, using=using)

    def _grant(self) -> ast.GrantStatement:
        revoke = bool(self._accept_keyword("REVOKE"))
        if not revoke:
            self._expect_keyword("GRANT")
        if self._accept_keyword("ALL"):
            privileges = ["select", "insert", "update", "delete"]
        else:
            privileges = [self._privilege()]
            while self._accept_punct(","):
                privileges.append(self._privilege())
        self._expect_keyword("ON")
        table = self._ident("table name")
        self._expect_keyword("FROM" if revoke else "TO")
        grantee = self._ident("user name")
        return ast.GrantStatement(privileges=privileges, table=table,
                                  grantee=grantee, revoke=revoke)

    def _privilege(self) -> str:
        tok = self._next()
        if tok.is_keyword("SELECT", "INSERT", "UPDATE", "DELETE"):
            return tok.text.lower()
        raise self._error(
            f"expected a privilege (SELECT/INSERT/UPDATE/DELETE), "
            f"got {tok.text!r}", tok)

    def _analyze(self) -> ast.AnalyzeTable:
        self._expect_keyword("ANALYZE")
        self._expect_keyword("TABLE")
        name = self._ident("table name")
        if self._accept_keyword("COMPUTE", "ESTIMATE"):
            self._expect_keyword("STATISTICS")
        return ast.AnalyzeTable(name)

    # -- DML -------------------------------------------------------------------

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._ident("table name")
        columns = None
        if self._accept_punct("("):
            columns = [self._ident("column")]
            while self._accept_punct(","):
                columns.append(self._ident("column"))
            self._expect_punct(")")
        if self._peek().is_keyword("SELECT"):
            return ast.Insert(table=table, columns=columns, rows=[],
                              select=self._select())
        self._expect_keyword("VALUES")
        rows = [self._value_row()]
        while self._accept_punct(","):
            rows.append(self._value_row())
        return ast.Insert(table=table, columns=columns, rows=rows)

    def _value_row(self) -> List[ast.Expr]:
        self._expect_punct("(")
        row = [self._expr()]
        while self._accept_punct(","):
            row.append(self._expr())
        self._expect_punct(")")
        return row

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._ident("table name")
        alias = None
        if self._peek().kind is TokenKind.IDENT:
            alias = self._ident()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expr()
        return ast.Update(table=table, alias=alias,
                          assignments=assignments, where=where)

    def _assignment(self) -> Tuple[str, ast.Expr]:
        column = self._ident("column name")
        if self._accept_op("=") is None:
            raise self._error("expected = in assignment")
        return column, self._expr()

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._ident("table name")
        alias = None
        if self._peek().kind is TokenKind.IDENT:
            alias = self._ident()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expr()
        return ast.Delete(table=table, alias=alias, where=where)

    # -- SELECT ---------------------------------------------------------------

    def _select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        self._expect_keyword("FROM")
        tables = [self._table_ref()]
        while self._accept_punct(","):
            tables.append(self._table_ref())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expr()
        group_by: List[ast.Expr] = []
        having = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expr())
            while self._accept_punct(","):
                group_by.append(self._expr())
        if self._accept_keyword("HAVING"):
            # HAVING without GROUP BY filters the single global group
            having = self._expr()
        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._int_literal()
            if self._accept_keyword("OFFSET"):
                offset = self._int_literal()
        return ast.Select(items=items, tables=tables, where=where,
                          group_by=group_by, having=having, order_by=order_by,
                          distinct=distinct, limit=limit, offset=offset)

    def _select_item(self) -> ast.SelectItem:
        tok = self._peek()
        if tok.kind is TokenKind.OP and tok.text == "*":
            self._next()
            return ast.SelectItem(ast.Star())
        # alias.* form
        if (tok.kind is TokenKind.IDENT
                and self._peek(1).kind is TokenKind.PUNCT
                and self._peek(1).text == "."
                and self._peek(2).kind is TokenKind.OP
                and self._peek(2).text == "*"):
            alias = self._ident()
            self._next()  # .
            self._next()  # *
            return ast.SelectItem(ast.Star(alias=alias))
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._ident("column alias")
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._ident()
        return ast.SelectItem(expr, alias)

    def _table_ref(self) -> ast.TableRef:
        name = self._ident("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._ident("table alias")
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._ident()
        return ast.TableRef(name=name, alias=alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    # -- expressions ------------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = ast.BoolOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = ast.BoolOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.NotOp(self._not_expr())
        if self._peek().is_keyword("EXISTS"):
            self._next()
            self._expect_punct("(")
            query = self._select()
            self._expect_punct(")")
            return ast.ExistsSubquery(query)
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        tok = self._peek()
        op = self._accept_op("=", "!=", "<>", "<", "<=", ">", ">=")
        if op is not None:
            if op == "<>":
                op = "!="
            return ast.BinaryOp(op, left, self._additive())
        negated = False
        if tok.is_keyword("NOT"):
            nxt = self._peek(1)
            if nxt.is_keyword("LIKE", "BETWEEN", "IN"):
                self._next()
                negated = True
                tok = self._peek()
        if tok.is_keyword("IS"):
            self._next()
            is_not = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNullOp(left, negated=is_not)
        if tok.is_keyword("LIKE"):
            self._next()
            return ast.LikeOp(left, self._additive(), negated=negated)
        if tok.is_keyword("BETWEEN"):
            self._next()
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return ast.BetweenOp(left, low, high, negated=negated)
        if tok.is_keyword("IN"):
            self._next()
            self._expect_punct("(")
            if self._peek().is_keyword("SELECT"):
                query = self._select()
                self._expect_punct(")")
                return ast.InSubquery(left, query, negated=negated)
            items = [self._expr()]
            while self._accept_punct(","):
                items.append(self._expr())
            self._expect_punct(")")
            return ast.InListOp(left, items, negated=negated)
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            op = self._accept_op("+", "-", "||")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._multiplicative())

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            op = self._accept_op("*", "/")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._unary())

    def _unary(self) -> ast.Expr:
        if self._accept_op("-"):
            return ast.UnaryMinus(self._unary())
        self._accept_op("+")
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._next()
            return ast.Literal(tok.value)
        if tok.kind is TokenKind.STRING:
            self._next()
            return ast.Literal(tok.value)
        if tok.is_keyword("NULL"):
            self._next()
            return ast.Literal(NULL)
        if tok.is_keyword("TRUE"):
            self._next()
            return ast.Literal(True)
        if tok.is_keyword("FALSE"):
            self._next()
            return ast.Literal(False)
        if tok.kind is TokenKind.BIND:
            self._next()
            return ast.BindParam(tok.value)
        if tok.kind is TokenKind.PUNCT and tok.text == "(":
            self._next()
            expr = self._expr()
            self._expect_punct(")")
            return expr
        if tok.kind is TokenKind.IDENT or tok.is_keyword(*SOFT_KEYWORDS):
            path = self._dotted_name()
            if self._peek().kind is TokenKind.PUNCT and self._peek().text == "(":
                return self._call(".".join(path))
            return ast.ColumnRef(path=path)
        raise self._error(f"unexpected token {tok.text!r} in expression")

    def _call(self, name: str) -> ast.Expr:
        self._expect_punct("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        args: List[ast.Expr] = []
        if self._peek().kind is TokenKind.OP and self._peek().text == "*":
            # COUNT(*)
            self._next()
            args.append(ast.Star())
        elif not (self._peek().kind is TokenKind.PUNCT
                  and self._peek().text == ")"):
            args.append(self._expr())
            while self._accept_punct(","):
                args.append(self._expr())
        self._expect_punct(")")
        return ast.FuncCall(name=name, args=args, distinct=distinct)
