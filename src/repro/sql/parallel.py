"""Morsel-driven parallel execution and async ODCI prefetch.

The extensible-indexing contract hides scan internals behind
``ODCIIndexStart/Fetch/Close`` (§2.2.3), which means the kernel — not
the cartridge — owns intra-query parallelism.  This module is that
kernel layer:

* :class:`WorkerPool` — one lazily-started pool of daemon threads per
  :class:`~repro.sql.engine.Engine`, shared by every session.
* :func:`run_morsels` — an order-preserving **exchange**: page-range
  morsels of a heap full scan run concurrently on the pool, and the
  consumer re-emits their results in morsel order with a bounded
  in-flight window (closing the consumer cancels unissued morsels).
* :func:`merge_sorted_runs` — the merge exchange feeding ORDER BY:
  per-morsel sorted runs are merged with a k-way heap instead of
  re-sorting the concatenation.
* :class:`PrefetchPipeline` — bounded-depth async ODCI prefetch: a
  single producer task issues the *next* ``ODCIIndexFetch`` through the
  ``CallbackDispatcher`` while the executor filters/projects the
  previous batch.  Fetches on one scan context stay strictly
  sequential (the protocol is stateful); only the overlap with
  downstream work is concurrent.
* :func:`compile_row_predicate` — re-lowers a scan filter to a closure
  over the *raw storage row* (``fn(row, binds)``), skipping
  ``RowContext`` construction for rows the filter rejects.  On
  GIL-constrained builds this fused kernel — not thread scaling — is
  where the parallel scan's speedup comes from; on free-threaded
  builds the morsels additionally scale across cores.

Error and cancellation contract (shared by both exchanges): a worker
exception is re-raised in the consumer *in stream order* — after every
batch that precedes it — so the dispatcher's fault taxonomy and the
pipeline's degrade-and-retry observe exactly the serial semantics.
Closing a consumer generator cancels outstanding work and never leaks
a worker.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sql import ast_nodes as ast
from repro.sql.compile import CannotCompile, ExprCompiler
from repro.types.values import NULL, _like_regex, is_null

__all__ = ["WorkerPool", "ParallelStats", "plan_morsels", "run_morsels",
           "merge_sorted_runs", "PrefetchPipeline", "compile_row_predicate",
           "compile_row_kernel"]


class WorkerPool:
    """A shared pool of daemon worker threads with a FIFO task queue.

    Threads start lazily (first submit) and are marked with a
    thread-local flag so executors can detect they are *already* on a
    pool worker and refuse to parallelize — a producer waiting on a
    nested producer from the same bounded pool is a deadlock, so
    callback SQL run by a cartridge during a parallel scan always
    executes serially.
    """

    def __init__(self, size: int = 8, name: str = "repro-parallel"):
        self.size = max(1, size)
        self._name = name
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._threads: List[threading.Thread] = []
        self._idle = 0
        self._shutdown = False
        self._tls = threading.local()

    def submit(self, task: Callable[[], None]) -> None:
        """Queue ``task`` for execution; spawns a thread if all are busy."""
        with self._cond:
            if self._shutdown:
                raise RuntimeError("worker pool is shut down")
            self._queue.append(task)
            if self._idle == 0 and len(self._threads) < self.size:
                thread = threading.Thread(
                    target=self._run,
                    name=f"{self._name}-{len(self._threads)}",
                    daemon=True)
                self._threads.append(thread)
                thread.start()
            else:
                self._cond.notify()

    def on_worker(self) -> bool:
        """True when the calling thread is one of this pool's workers."""
        return getattr(self._tls, "on_worker", False)

    def shutdown(self) -> None:
        """Stop accepting tasks, drain nothing, join the workers."""
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            self._queue.clear()
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)

    @property
    def started_threads(self) -> int:
        with self._cond:
            return len(self._threads)

    def _run(self) -> None:
        self._tls.on_worker = True
        while True:
            with self._cond:
                while not self._queue and not self._shutdown:
                    self._idle += 1
                    self._cond.wait()
                    self._idle -= 1
                if self._shutdown:
                    return
                task = self._queue.popleft()
            try:
                task()
            except BaseException:  # noqa: BLE001 — tasks report their own
                pass               # errors; a worker must never die


class ParallelStats:
    """Engine-wide counters behind the ``user_parallel_stats`` view."""

    def __init__(self) -> None:
        self._latch = threading.Lock()
        self.parallel_queries = 0
        self.morsels_dispatched = 0
        self.morsel_rows = 0
        self.worker_busy_seconds = 0.0
        self.exchange_wait_seconds = 0.0
        self.prefetch_scans = 0
        self.prefetch_batches = 0
        self.prefetch_abandoned = 0
        #: queue occupancy observed as each prefetched batch arrives
        self.prefetch_depth_histogram: Dict[int, int] = {}
        self.pool_size = 0
        self._first_activity: Optional[float] = None

    def record_query(self, dop: int) -> None:
        with self._latch:
            self.parallel_queries += 1
            if self._first_activity is None:
                self._first_activity = time.monotonic()

    def record_morsel(self, rows: int, busy_seconds: float) -> None:
        with self._latch:
            self.morsels_dispatched += 1
            self.morsel_rows += rows
            self.worker_busy_seconds += busy_seconds

    def record_exchange_wait(self, seconds: float) -> None:
        with self._latch:
            self.exchange_wait_seconds += seconds

    def record_prefetch_scan(self) -> None:
        with self._latch:
            self.prefetch_scans += 1
            if self._first_activity is None:
                self._first_activity = time.monotonic()

    def record_prefetch_batch(self, occupancy: int,
                              busy_seconds: float) -> None:
        with self._latch:
            self.prefetch_batches += 1
            self.worker_busy_seconds += busy_seconds
            bucket = self.prefetch_depth_histogram
            bucket[occupancy] = bucket.get(occupancy, 0) + 1

    def record_prefetch_abandoned(self, batches: int) -> None:
        with self._latch:
            self.prefetch_abandoned += batches

    def utilization(self) -> float:
        """Worker busy time over pool wall-clock capacity since the
        first parallel activity (0.0 when nothing ran yet)."""
        with self._latch:
            if self._first_activity is None or self.pool_size <= 0:
                return 0.0
            wall = time.monotonic() - self._first_activity
            if wall <= 0.0:
                return 0.0
            return min(1.0, self.worker_busy_seconds
                       / (wall * self.pool_size))

    def snapshot(self) -> Dict[str, Any]:
        with self._latch:
            return {
                "parallel_queries": self.parallel_queries,
                "morsels_dispatched": self.morsels_dispatched,
                "morsel_rows": self.morsel_rows,
                "worker_busy_seconds": self.worker_busy_seconds,
                "exchange_wait_seconds": self.exchange_wait_seconds,
                "prefetch_scans": self.prefetch_scans,
                "prefetch_batches": self.prefetch_batches,
                "prefetch_abandoned": self.prefetch_abandoned,
                "depth_histogram": dict(sorted(
                    self.prefetch_depth_histogram.items())),
                "pool_size": self.pool_size,
            }


# ---------------------------------------------------------------------------
# Morsel exchange (heap full scans)
# ---------------------------------------------------------------------------

def plan_morsels(page_count: int, dop: int,
                 per_worker: int = 2) -> List[Tuple[int, int]]:
    """Split ``page_count`` pages into ~``dop * per_worker`` contiguous
    page ranges.  More morsels than workers keeps the pool busy when
    morsels finish unevenly (work stealing by queue order)."""
    if page_count <= 0 or dop <= 0:
        return []
    target = min(page_count, max(1, dop * per_worker))
    per = -(-page_count // target)  # ceil
    return [(start, min(start + per, page_count))
            for start in range(0, page_count, per)]


def run_morsels(pool: WorkerPool,
                kernel: Callable[[int, int], List[Any]],
                morsels: List[Tuple[int, int]],
                dop: int,
                stats: Optional[ParallelStats] = None
                ) -> Iterator[List[Any]]:
    """Order-preserving exchange: run ``kernel(start, stop)`` for each
    morsel on the pool, yield the non-empty results in morsel order.

    At most ``dop + 1`` morsels are in flight; the next is submitted
    only as results are consumed, so an abandoned consumer (LIMIT,
    closed cursor) strands no more than the window.  A kernel exception
    is re-raised here after every earlier morsel's batch was yielded.
    """
    if not morsels:
        return
    cond = threading.Condition()
    results: Dict[int, Optional[List[Any]]] = {}
    state = {"error": None, "cancelled": False}
    issued = 0

    def submit_next() -> None:
        nonlocal issued
        seq = issued
        start, stop = morsels[seq]
        issued += 1

        def task() -> None:
            if state["cancelled"]:
                with cond:
                    results[seq] = None
                    cond.notify_all()
                return
            began = time.perf_counter()
            try:
                out = kernel(start, stop)
            except BaseException as exc:  # noqa: BLE001 — re-raised in consumer
                with cond:
                    if state["error"] is None:
                        state["error"] = exc
                    results[seq] = None
                    cond.notify_all()
                return
            if stats is not None:
                stats.record_morsel(len(out), time.perf_counter() - began)
            with cond:
                results[seq] = out
                cond.notify_all()

        pool.submit(task)

    window = max(2, dop + 1)
    try:
        while issued < len(morsels) and issued < window:
            submit_next()
        for seq in range(len(morsels)):
            waited = time.perf_counter()
            with cond:
                while seq not in results and state["error"] is None:
                    cond.wait()
                if state["error"] is not None:
                    raise state["error"]
                out = results.pop(seq)
            if stats is not None:
                stats.record_exchange_wait(time.perf_counter() - waited)
            if issued < len(morsels):
                submit_next()
            if out:
                yield out
    finally:
        with cond:
            state["cancelled"] = True
            cond.notify_all()


def merge_sorted_runs(runs: List[List[Any]],
                      key: Callable[[Any], Any]) -> Iterator[Any]:
    """K-way merge of per-morsel sorted runs (the merge exchange)."""
    return heapq.merge(*runs, key=key)


# ---------------------------------------------------------------------------
# Async ODCI prefetch
# ---------------------------------------------------------------------------

class PrefetchPipeline:
    """Bounded-depth async pipeline over a stateful ODCI fetch loop.

    One producer task runs on the worker pool and issues
    ``fetch() -> FetchResult`` calls *sequentially* (ODCIIndexFetch on
    one scan context is stateful — concurrency here would be a protocol
    violation), parking whenever ``depth`` results are already
    buffered.  The consumer iterates results in fetch order; a fetch
    exception is delivered after every result buffered before it, so
    fault ordering matches the serial loop exactly.

    :meth:`close` is mandatory (the executor calls it in a ``finally``):
    it cancels the producer, waits out any in-flight fetch, and only
    then returns — which is what lets the caller run ``ODCIIndexClose``
    exactly once with no fetch still racing it.
    """

    def __init__(self, pool: WorkerPool, depth: int,
                 fetch: Callable[[], Any],
                 stats: Optional[ParallelStats] = None):
        self.depth = max(1, depth)
        self._cond = threading.Condition()
        self._buffer: deque = deque()
        self._error: Optional[BaseException] = None
        self._producer_done = False
        self._closed = False
        self._finished = threading.Event()
        self._stats = stats
        if stats is not None:
            stats.record_prefetch_scan()
        pool.submit(lambda: self._produce(fetch))

    def _produce(self, fetch: Callable[[], Any]) -> None:
        try:
            while True:
                with self._cond:
                    while len(self._buffer) >= self.depth \
                            and not self._closed:
                        self._cond.wait()
                    if self._closed:
                        return
                began = time.perf_counter()
                try:
                    result = fetch()
                except BaseException as exc:  # noqa: BLE001 — delivered in order
                    with self._cond:
                        self._error = exc
                        self._cond.notify_all()
                    return
                busy = time.perf_counter() - began
                with self._cond:
                    self._buffer.append(result)
                    if self._stats is not None:
                        self._stats.record_prefetch_batch(
                            len(self._buffer), busy)
                    self._cond.notify_all()
                if result.done or not result.rowids:
                    return
        finally:
            with self._cond:
                self._producer_done = True
                self._cond.notify_all()
            self._finished.set()

    def __iter__(self) -> Iterator[Any]:
        while True:
            waited = time.perf_counter()
            with self._cond:
                while not self._buffer and self._error is None \
                        and not self._producer_done:
                    self._cond.wait()
                if self._buffer:
                    result = self._buffer.popleft()
                    self._cond.notify_all()
                elif self._error is not None:
                    error, self._error = self._error, None
                    raise error
                else:
                    return
            if self._stats is not None:
                self._stats.record_exchange_wait(
                    time.perf_counter() - waited)
            yield result

    def close(self) -> None:
        """Cancel the producer and wait until no fetch is in flight.

        Buffered-but-unconsumed batches are abandoned (counted in
        stats); after close() returns the scan context is quiescent and
        safe to ODCIIndexClose."""
        with self._cond:
            self._closed = True
            abandoned = len(self._buffer)
            self._buffer.clear()
            self._cond.notify_all()
        self._finished.wait(timeout=60.0)
        if self._stats is not None and abandoned:
            self._stats.record_prefetch_abandoned(abandoned)


# ---------------------------------------------------------------------------
# Fused row kernels
# ---------------------------------------------------------------------------

class _RowPredicateCompiler(ExprCompiler):
    """Re-lowers a single-table scan filter to ``fn(row, binds)``.

    Identical to :class:`ExprCompiler` except the column leaf indexes
    the raw storage row directly instead of going through a
    ``RowContext`` — so the morsel kernel can reject rows *before*
    paying context construction.  Anything a raw row cannot answer
    (the ``rowid`` pseudo-column, object attribute paths, foreign
    bindings) declines, and the scan falls back to the context-based
    closure.
    """

    def __init__(self, catalog: Any, binding: str, table: Any):
        super().__init__(catalog)
        self._binding = binding
        self._positions = {col.name.lower(): i
                           for i, col in enumerate(table.columns)}

    def _column(self, ref: ast.ColumnRef):
        if not ref.bound or ref.attr_path:
            raise CannotCompile("row kernel: context-only column form")
        if ref.alias != self._binding:
            raise CannotCompile("row kernel: foreign binding")
        index = self._positions.get(ref.column)
        if index is None:  # rowid pseudo-column (not in the raw row)
            raise CannotCompile("row kernel: pseudo-column")
        return lambda row, binds: row[index]


def compile_row_predicate(predicate: Optional[ast.Expr], catalog: Any,
                          binding: str, table: Any
                          ) -> Optional[Callable[[List[Any], Dict], Any]]:
    """Compile a scan filter into a raw-row closure, or None."""
    if predicate is None:
        return None
    compiler = _RowPredicateCompiler(catalog, binding, table)
    return compiler.compile_predicate(predicate)


# ---------------------------------------------------------------------------
# Generated row kernels (single-expression predicates)
# ---------------------------------------------------------------------------
#
# The closure tree a scan filter compiles to costs ~15 Python calls per
# row; at morsel row rates that call overhead *is* the scan.  For the
# common predicate subset (comparisons, AND/OR/NOT, BETWEEN, LIKE,
# IN-lists, arithmetic over columns/binds/literals) we instead generate
# the whole predicate as ONE Python expression over the raw storage row
# and eval-compile it, so the per-row cost is inline bytecode.
#
# Correctness contract: the kernel answers boolean *truth position*
# only ("does this row pass?"), so SQL's three-valued logic lowers to
# two dual emitters — T(e) is True iff e is TRUE, F(e) is True iff e is
# FALSE — with NULL falling out of both (NOT flips T and F, so Kleene
# NOT needs no third value).  Bind values are inspected once per
# execution by the generated *factory*: a NULL or bool bind (whose
# comparison semantics diverge from Python's) declines, falling back to
# the closure tree.  Any exception the generated kernel raises makes
# the executor re-run that morsel on the closure tree, which reproduces
# the exact serial error (TypeMismatchError, division by zero, ...) —
# so the fast path never has to replicate error taxonomy, only the
# accept/reject decision on well-typed rows.

_PY_RELOP = {"=": "==", "!=": "!=", "<": "<", "<=": "<=",
             ">": ">", ">=": ">="}
_INV_RELOP = {"=": "!=", "!=": "==", "<": ">=", "<=": ">",
              ">": "<=", ">=": "<"}


class _Val:
    """An emitted value expression: code + what we statically know."""

    __slots__ = ("code", "notnull", "maybe_nullv")

    def __init__(self, code: str, notnull: bool, maybe_nullv: bool):
        self.code = code
        self.notnull = notnull        # guaranteed non-NULL at runtime
        self.maybe_nullv = maybe_nullv  # may be the NULL singleton (vs None)


class _RowKernelCodegen:
    """Emits the kernel factory source for one scan predicate."""

    def __init__(self, binding: str, table: Any):
        self._binding = binding
        self._positions = {col.name.lower(): i
                           for i, col in enumerate(table.columns)}
        self._temps = 0
        self.env: Dict[str, Any] = {}
        #: bind locals: key -> (local name, needs_pattern_regex)
        self._binds: Dict[str, List[Any]] = {}

    # -- helpers ---------------------------------------------------------

    def _temp(self) -> str:
        self._temps += 1
        return f"t{self._temps}"

    def _const(self, value: Any) -> str:
        if isinstance(value, (int, float, str)) \
                and not isinstance(value, bool):
            return repr(value)
        name = f"c{len(self.env)}"
        self.env[name] = value
        return name

    def _guarded(self, val: _Val) -> Tuple[str, List[str]]:
        """Usable expression + null-guard conditions (walrus-bound)."""
        if val.notnull:
            return val.code, []
        t = self._temp()
        conds = [f"({t} := {val.code}) is not None"]
        if val.maybe_nullv:
            conds.append(f"{t} is not _NULLV")
        return t, conds

    # -- value position --------------------------------------------------

    def value(self, expr: ast.Expr) -> _Val:
        if isinstance(expr, ast.Literal):
            if expr.value is None or expr.value.__class__.__name__ == "Null":
                return _Val("None", notnull=False, maybe_nullv=False)
            return _Val(self._const(expr.value), notnull=True,
                        maybe_nullv=False)
        if isinstance(expr, ast.BindParam):
            return _Val(self._bind_local(expr, pattern=False),
                        notnull=True, maybe_nullv=False)
        if isinstance(expr, ast.ColumnRef):
            if not expr.bound or expr.attr_path:
                raise CannotCompile("row kernel: context-only column form")
            if expr.alias != self._binding:
                raise CannotCompile("row kernel: foreign binding")
            index = self._positions.get(expr.column)
            if index is None:
                return self._pseudo_column(expr)
            return self._column_expr(index)
        if isinstance(expr, ast.UnaryMinus):
            operand = self.value(expr.operand)
            if operand.notnull:
                return _Val(f"(-{operand.code})", True, False)
            oe, conds = self._guarded(operand)
            return _Val(f"((-{oe}) if {' and '.join(conds)} else None)",
                        False, False)
        if isinstance(expr, ast.BinaryOp) and expr.op in "+-*/":
            left = self.value(expr.left)
            right = self.value(expr.right)
            if left.notnull and right.notnull:
                return _Val(f"({left.code} {expr.op} {right.code})",
                            True, False)
            le, lconds = self._guarded(left)
            re_, rconds = self._guarded(right)
            conds = " and ".join(lconds + rconds)
            return _Val(f"(({le} {expr.op} {re_}) if {conds} else None)",
                        False, False)
        raise CannotCompile(f"row kernel value: {type(expr).__name__}")

    # Column-leaf hooks: the vector-kernel codegen (sql/compile.py)
    # subclasses these to index column vectors instead of row tuples.

    def _column_expr(self, index: int) -> _Val:
        return _Val(f"r[{index}]", notnull=False, maybe_nullv=True)

    def _pseudo_column(self, expr: ast.ColumnRef) -> _Val:
        raise CannotCompile("row kernel: pseudo-column")

    def _bind_local(self, expr: ast.BindParam, pattern: bool) -> str:
        key = expr.name.lower()
        entry = self._binds.get(key)
        if entry is None:
            entry = [f"b{len(self._binds)}", False]
            self._binds[key] = entry
        if pattern:
            entry[1] = True
            return f"rx_{entry[0]}"
        return entry[0]

    # -- boolean position: T(e) / F(e) dual emitters ---------------------

    def truth(self, expr: ast.Expr) -> str:
        return self._bool_emit(expr, want_true=True)

    def falsity(self, expr: ast.Expr) -> str:
        return self._bool_emit(expr, want_true=False)

    def _bool_emit(self, expr: ast.Expr, want_true: bool) -> str:
        if isinstance(expr, ast.BoolOp):
            left = self._bool_emit(expr.left, want_true)
            right = self._bool_emit(expr.right, want_true)
            # T(AND)=T∧T, F(AND)=F∨F (false dominates); OR is the dual
            joiner = " and " if (expr.op == "AND") == want_true else " or "
            return f"({left}{joiner}{right})"
        if isinstance(expr, ast.NotOp):
            return self._bool_emit(expr.operand, not want_true)
        if isinstance(expr, ast.BinaryOp):
            op = _PY_RELOP.get(expr.op)
            if op is None:
                raise CannotCompile(f"row kernel bool: {expr.op!r}")
            if not want_true:
                op = _INV_RELOP[expr.op]
            le, lconds = self._guarded(self.value(expr.left))
            re_, rconds = self._guarded(self.value(expr.right))
            conds = lconds + rconds + [f"{le} {op} {re_}"]
            return f"({' and '.join(conds)})"
        if isinstance(expr, ast.IsNullOp):
            val = self.value(expr.operand)
            # IS [NOT] NULL is two-valued, so F(e) is just T(not e)
            is_null_wanted = (not expr.negated) == want_true
            if val.notnull:
                return "(True)" if not is_null_wanted else "(False)"
            t = self._temp()
            if is_null_wanted:
                return (f"(({t} := {val.code}) is None"
                        f" or {t} is _NULLV)")
            return (f"(({t} := {val.code}) is not None"
                    f" and {t} is not _NULLV)")
        if isinstance(expr, ast.LikeOp):
            return self._like(expr, want_true)
        if isinstance(expr, ast.BetweenOp):
            matched = (not expr.negated) == want_true
            return self._between(expr, matched)
        if isinstance(expr, ast.InListOp):
            matched = (not expr.negated) == want_true
            return self._in_list(expr, matched)
        if isinstance(expr, ast.Literal):
            value = expr.value
            if value is None or is_null(value):
                return "(False)"  # NULL is neither TRUE nor FALSE
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                truth = value != 0
            else:
                truth = bool(value)
            return f"({truth == want_true})"
        raise CannotCompile(f"row kernel bool: {type(expr).__name__}")

    def _like(self, expr: ast.LikeOp, want_true: bool) -> str:
        if isinstance(expr.pattern, ast.Literal) \
                and isinstance(expr.pattern.value, str):
            rx = f"rx{len(self.env)}"
            self.env[rx] = _like_regex(expr.pattern.value)
        elif isinstance(expr.pattern, ast.BindParam):
            rx = self._bind_local(expr.pattern, pattern=True)
        else:
            raise CannotCompile("row kernel: computed LIKE pattern")
        ve, conds = self._guarded(self.value(expr.operand))
        # matched iff fullmatch; NOT LIKE / falsity flip the test while
        # NULL operands still fail the guards (neither TRUE nor FALSE)
        test = "is not None" if (not expr.negated) == want_true else "is None"
        conds = conds + [f"{rx}.fullmatch({ve}) {test}"]
        return f"({' and '.join(conds)})"

    def _between(self, expr: ast.BetweenOp, matched: bool) -> str:
        if matched:  # v >= low AND v <= high, both TRUE
            ve, vconds = self._guarded(self.value(expr.operand))
            le, lconds = self._guarded(self.value(expr.low))
            he, hconds = self._guarded(self.value(expr.high))
            conds = (vconds + lconds + [f"{ve} >= {le}"]
                     + hconds + [f"{ve} <= {he}"])
            return f"({' and '.join(conds)})"
        # FALSE iff either comparison is definitely false (Kleene AND);
        # each disjunct re-guards its operands with fresh temps
        ve, vconds = self._guarded(self.value(expr.operand))
        le, lconds = self._guarded(self.value(expr.low))
        below = " and ".join(vconds + lconds + [f"{ve} < {le}"])
        ve2, vconds2 = self._guarded(self.value(expr.operand))
        he, hconds = self._guarded(self.value(expr.high))
        above = " and ".join(vconds2 + hconds + [f"{ve2} > {he}"])
        return f"(({below}) or ({above}))"

    def _in_list(self, expr: ast.InListOp, matched: bool) -> str:
        ve, vconds = self._guarded(self.value(expr.operand))
        if matched:  # TRUE iff some item compares equal
            arms = []
            for item in expr.items:
                ie, iconds = self._guarded(self.value(item))
                arms.append(" and ".join(iconds + [f"{ve} == {ie}"]))
            some = " or ".join(f"({arm})" for arm in arms)
            return f"({' and '.join(vconds + [f'({some})'])})"
        # FALSE iff every item compares not-equal (no NULL anywhere)
        conds = list(vconds)
        for item in expr.items:
            ie, iconds = self._guarded(self.value(item))
            conds.extend(iconds + [f"{ve} != {ie}"])
        return f"({' and '.join(conds)})"


def _emit_bind_guards(gen: _RowKernelCodegen) -> List[str]:
    """Factory-body lines that load binds and decline unsupported values.

    A NULL or missing bind, a bool (whose Python comparison semantics
    diverge from ``sql_compare``), or a non-string LIKE pattern makes
    the factory return None — the execution falls back to the closure
    tree.  Shared with the vector-kernel factories in sql/compile.py.
    """
    lines = []
    for key, (local, needs_rx) in gen._binds.items():
        lines.append(f"    {local} = binds.get({key!r}, _NULLV)")
        lines.append(f"    if {local} is None or {local} is _NULLV"
                     f" or {local}.__class__ is bool:")
        lines.append("        return None")
        if needs_rx:
            lines.append(f"    if not isinstance({local}, str):")
            lines.append("        return None")
            lines.append(f"    rx_{local} = _like_rx({local})")
    return lines


def _kernel_namespace(gen: _RowKernelCodegen) -> Dict[str, Any]:
    """Exec namespace for a generated kernel factory: hoisted constants,
    the NULL singleton, and the LIKE-regex compiler."""
    namespace = dict(gen.env)
    namespace["_NULLV"] = NULL
    namespace["_like_rx"] = _like_regex
    return namespace


def compile_row_kernel(predicate: Optional[ast.Expr], binding: str,
                       table: Any) -> Optional[Callable[[Dict], Any]]:
    """Generate an eval-compiled row-kernel factory for a scan filter.

    Returns ``factory(binds) -> (row -> bool) | None`` or None when the
    predicate uses forms outside the generated subset.  The factory
    inspects actual bind values once per execution and declines (returns
    None) when a bind is NULL, missing, or a bool — cases where Python
    operator semantics diverge from :func:`~repro.types.values
    .sql_compare` — leaving those executions to the closure tree.
    """
    if predicate is None:
        return None
    gen = _RowKernelCodegen(binding, table)
    try:
        body = gen.truth(predicate)
    except CannotCompile:
        return None
    lines = ["def _factory(binds):"]
    lines.extend(_emit_bind_guards(gen))
    lines.append("    def _kernel(r):")
    lines.append(f"        return {body}")
    lines.append("    return _kernel")
    namespace = _kernel_namespace(gen)
    exec(compile("\n".join(lines), "<row-kernel>", "exec"),  # noqa: S102
         namespace)
    return namespace["_factory"]
