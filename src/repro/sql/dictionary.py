"""Data-dictionary views: USER_TABLES, USER_INDEXES, USER_OPERATORS,
USER_INDEXTYPES.

§2.4.1: "When a domain index is created, the Oracle8i server creates the
data dictionary entries pertaining to the domain index".  These views
expose those entries (and the rest of the catalog) to ordinary SELECTs.
Each view is synthesized on access as a read-only snapshot.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.sql.catalog import Catalog, ColumnInfo, TableDef
from repro.storage.heap import RowId
from repro.types.datatypes import BOOLEAN, INTEGER, NUMBER, VARCHAR2

#: Names served by :func:`dictionary_view`.
VIEW_NAMES = ("user_tables", "user_indexes", "user_operators",
              "user_indextypes", "user_index_maintenance",
              "user_lock_stats", "user_snapshot_stats",
              "user_wal_stats", "user_recovery_stats",
              "user_server_stats", "user_parallel_stats",
              "user_executor_stats")


class _SnapshotStorage:
    """Read-only row storage backing one dictionary view snapshot."""

    _next_segment = 1_000_000  # far away from real segments

    def __init__(self, rows: List[List[Any]]):
        self._rows = rows
        self.segment_id = _SnapshotStorage._next_segment
        _SnapshotStorage._next_segment += 1

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def page_count(self) -> int:
        return max(1, len(self._rows) // 50)

    def scan(self) -> Iterator[Tuple[RowId, List[Any]]]:
        for slot, row in enumerate(self._rows):
            yield RowId(self.segment_id, 0, slot), row

    def fetch_or_none(self, rowid: RowId) -> Optional[List[Any]]:
        if rowid.segment_id != self.segment_id:
            return None
        if 0 <= rowid.slot < len(self._rows):
            return self._rows[rowid.slot]
        return None

    def _read_only(self, *args: Any, **kwargs: Any):
        raise StorageError("data dictionary views are read-only")

    insert = update = delete = truncate = undelete = _read_only


def dictionary_view(catalog: Catalog, name: str,
                    engine: Any = None) -> Optional[TableDef]:
    """Build the named dictionary view, or None for unknown names."""
    key = name.lower()
    if key == "user_tables":
        return _user_tables(catalog)
    if key == "user_indexes":
        return _user_indexes(catalog)
    if key == "user_operators":
        return _user_operators(catalog)
    if key == "user_indextypes":
        return _user_indextypes(catalog)
    if key == "user_index_maintenance" and engine is not None:
        return _user_index_maintenance(engine)
    if key == "user_lock_stats" and engine is not None:
        return _user_lock_stats(engine)
    if key == "user_snapshot_stats" and engine is not None:
        return _user_snapshot_stats(engine)
    if key == "user_wal_stats" and engine is not None:
        return _user_wal_stats(engine)
    if key == "user_recovery_stats" and engine is not None:
        return _user_recovery_stats(engine)
    if key == "user_server_stats" and engine is not None:
        return _user_server_stats(engine)
    if key == "user_parallel_stats" and engine is not None:
        return _user_parallel_stats(engine)
    if key == "user_executor_stats" and engine is not None:
        return _user_executor_stats(engine)
    return None


def _view(name: str, columns: List[Tuple[str, Any]],
          rows: List[List[Any]]) -> TableDef:
    return TableDef(
        name=name,
        columns=[ColumnInfo(cname, dtype) for cname, dtype in columns],
        storage=_SnapshotStorage(rows))


def _user_tables(catalog: Catalog) -> TableDef:
    rows = [[t.name, t.owner, t.storage.row_count, t.is_iot,
             len(t.columns)]
            for t in sorted(catalog.tables.values(), key=lambda t: t.key)]
    return _view("user_tables",
                 [("table_name", VARCHAR2), ("owner", VARCHAR2),
                  ("num_rows", INTEGER), ("iot", BOOLEAN),
                  ("column_count", INTEGER)],
                 rows)


def _user_indexes(catalog: Catalog) -> TableDef:
    rows = []
    for index in sorted(catalog.indexes.values(), key=lambda i: i.key):
        indextype = parameters = None
        if index.is_domain and index.domain is not None:
            indextype = index.domain.indextype_name
            parameters = index.domain.parameters
        rows.append([index.name, index.table_name,
                     ",".join(index.column_names), index.kind.upper(),
                     index.unique, indextype, parameters])
    return _view("user_indexes",
                 [("index_name", VARCHAR2), ("table_name", VARCHAR2),
                  ("columns", VARCHAR2), ("index_type", VARCHAR2),
                  ("uniqueness", BOOLEAN), ("domain_indextype", VARCHAR2),
                  ("parameters", VARCHAR2)],
                 rows)


def _user_operators(catalog: Catalog) -> TableDef:
    rows = []
    for operator in sorted(catalog.operators.values(),
                           key=lambda o: o.key):
        bindings = "; ".join(b.signature() for b in operator.bindings)
        rows.append([operator.name, len(operator.bindings), bindings,
                     operator.ancillary_to])
    return _view("user_operators",
                 [("operator_name", VARCHAR2), ("binding_count", INTEGER),
                  ("bindings", VARCHAR2), ("ancillary_to", VARCHAR2)],
                 rows)


def _user_index_maintenance(engine: Any) -> TableDef:
    """Per-index array-maintenance counters from the shared dispatcher.

    One row per index that has received maintenance through the batch
    queue since engine start; ``histogram`` renders the batch-size
    distribution as ``bucket:count`` pairs.
    """
    rows = []
    for name, stats in sorted(engine.dispatcher.maintenance.items()):
        snap = stats.snapshot()
        histogram = " ".join(
            f"{bucket}:{count}"
            for bucket, count in sorted(
                snap["histogram"].items(),
                key=lambda kv: int(kv[0].split("-")[0].rstrip("+"))))
        rows.append([name, snap["entries_queued"], snap["entries_flushed"],
                     snap["batches_flushed"], snap["native_batches"],
                     snap["shim_batches"], snap["max_batch"], histogram])
    return _view("user_index_maintenance",
                 [("index_name", VARCHAR2), ("entries_queued", INTEGER),
                  ("entries_flushed", INTEGER), ("batches_flushed", INTEGER),
                  ("native_batches", INTEGER), ("shim_batches", INTEGER),
                  ("max_batch", INTEGER), ("histogram", VARCHAR2)],
                 rows)


def _histogram_text(histogram: Any) -> str:
    """Render a bucket→count mapping as space-separated ``bucket:count``
    pairs in the histogram's own (insertion) order."""
    return " ".join(f"{bucket}:{count}"
                    for bucket, count in histogram.items())


def _user_lock_stats(engine: Any) -> TableDef:
    """One-row view over the engine's :class:`~repro.txn.locks.LockStats`.

    ``wait_histogram`` renders the wait-time distribution as
    ``bucket:count`` pairs.  MVCC acceptance check: a pure-reader
    workload leaves ``waits`` (and ``deadlocks``) untouched.
    """
    snap = engine.locks.stats.snapshot()
    rows = [[snap["acquisitions"], snap["waits"], snap["wait_seconds"],
             snap["timeouts"], snap["deadlocks"],
             _histogram_text(snap["histogram"])]]
    return _view("user_lock_stats",
                 [("acquisitions", INTEGER), ("waits", INTEGER),
                  ("wait_seconds", NUMBER), ("timeouts", INTEGER),
                  ("deadlocks", INTEGER), ("wait_histogram", VARCHAR2)],
                 rows)


def _user_snapshot_stats(engine: Any) -> TableDef:
    """One-row view over the MVCC manager's counters.

    ``chain_histogram`` is the version-chain-length distribution
    recorded at each prune pass; ``oldest_active_scn`` is NULL when no
    snapshot is live.
    """
    snap = engine.mvcc.stats.snapshot()
    rows = [[snap["snapshots_taken"], snap["statement_snapshots"],
             snap["transaction_snapshots"], snap["commits"],
             snap["versions_created"], snap["versions_stamped"],
             snap["versions_pruned"], snap["prune_passes"],
             _histogram_text(snap["chain_histogram"]),
             engine.mvcc.oldest_active_scn(),
             engine.mvcc.current_scn]]
    return _view("user_snapshot_stats",
                 [("snapshots_taken", INTEGER),
                  ("statement_snapshots", INTEGER),
                  ("transaction_snapshots", INTEGER),
                  ("commits", INTEGER), ("versions_created", INTEGER),
                  ("versions_stamped", INTEGER),
                  ("versions_pruned", INTEGER), ("prune_passes", INTEGER),
                  ("chain_histogram", VARCHAR2),
                  ("oldest_active_scn", INTEGER),
                  ("current_scn", INTEGER)],
                 rows)


def _user_wal_stats(engine: Any) -> TableDef:
    """One-row view over the durability manager's WAL counters.

    ``enabled`` is FALSE (with zeroed counters) when the engine runs
    without a ``data_dir``.  ``batch_histogram`` renders the
    group-commit batch-size distribution as ``bucket:count`` pairs;
    group commit's whole point is that ``fsyncs`` grows slower than
    ``commit_records`` under concurrency.
    """
    columns = [("enabled", BOOLEAN), ("records", INTEGER),
               ("bytes_written", INTEGER), ("fsyncs", INTEGER),
               ("commit_records", INTEGER), ("commit_waits", INTEGER),
               ("group_batches", INTEGER), ("group_commits", INTEGER),
               ("max_batch", INTEGER), ("batch_histogram", VARCHAR2),
               ("checkpoints", INTEGER), ("truncations", INTEGER),
               ("epoch", INTEGER), ("active_transactions", INTEGER),
               ("dirty_entries", INTEGER), ("failed", BOOLEAN)]
    if engine.durability is None:
        rows = [[False, 0, 0, 0, 0, 0, 0, 0, 0, "", 0, 0, 0, 0, 0, False]]
        return _view("user_wal_stats", columns, rows)
    snap = engine.durability.wal_stats()
    rows = [[True, snap["records"], snap["bytes_written"], snap["fsyncs"],
             snap["commit_records"], snap["commit_waits"],
             snap["group_batches"], snap["group_commits"],
             snap["max_batch"], _histogram_text(snap["batch_histogram"]),
             snap["checkpoints"], snap["truncations"], snap["epoch"],
             snap["active_transactions"], snap["dirty_entries"],
             snap["failed"]]]
    return _view("user_wal_stats", columns, rows)


def _user_recovery_stats(engine: Any) -> TableDef:
    """One-row view over the last restart-recovery pass.

    ``ran`` is FALSE when the engine started without durability (or a
    fresh data_dir with nothing to recover); ``clean`` is TRUE when the
    pass found a clean shutdown (zero redo, zero undo).
    """
    columns = [("ran", BOOLEAN), ("clean", BOOLEAN),
               ("log_records_scanned", INTEGER),
               ("redo_records", INTEGER), ("redo_skipped", INTEGER),
               ("undo_records", INTEGER), ("loser_transactions", INTEGER),
               ("committed_transactions", INTEGER),
               ("indexes_degraded", INTEGER), ("tables_restored", INTEGER),
               ("pages_restored", INTEGER), ("restored_scn", INTEGER),
               ("duration_seconds", NUMBER)]
    stats = engine.recovery_stats
    if stats is None:
        rows = [[False, True, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0.0]]
        return _view("user_recovery_stats", columns, rows)
    snap = stats.snapshot()
    rows = [[snap["ran"], snap["clean"], snap["log_records_scanned"],
             snap["redo_records"], snap["redo_skipped"],
             snap["undo_records"], snap["loser_transactions"],
             snap["committed_transactions"], snap["indexes_degraded"],
             snap["tables_restored"], snap["pages_restored"],
             snap["restored_scn"], snap["duration_seconds"]]]
    return _view("user_recovery_stats", columns, rows)


def _user_server_stats(engine: Any) -> TableDef:
    """One row per wire operation served by the network server.

    ``enabled`` is FALSE (single disabled row) when the engine is not
    being served.  Connection-level counters repeat on every row;
    ``latency_histogram`` renders the per-op distribution as
    ``bucket:count`` pairs (buckets are millisecond upper bounds).
    """
    columns = [("enabled", BOOLEAN), ("op", VARCHAR2),
               ("requests", INTEGER), ("latency_histogram", VARCHAR2),
               ("connections", INTEGER), ("rejected", INTEGER),
               ("active_sessions", INTEGER), ("sessions_peak", INTEGER),
               ("bytes_in", INTEGER), ("bytes_out", INTEGER),
               ("total_requests", INTEGER), ("errors", INTEGER),
               ("idle_timeouts", INTEGER)]
    stats = getattr(engine, "server_stats", None)
    if stats is None:
        return _view("user_server_stats", columns,
                     [[False, None, 0, "", 0, 0, 0, 0, 0, 0, 0, 0, 0]])
    snap = stats.snapshot()
    shared = [snap["connections_accepted"], snap["connections_rejected"],
              snap["active_sessions"], snap["sessions_peak"],
              snap["bytes_in"], snap["bytes_out"], snap["requests"],
              snap["errors"], snap["idle_timeouts"]]
    rows = [[True, op, count,
             _histogram_text(snap["op_latency"].get(op, {}))] + shared
            for op, count in sorted(snap["op_counts"].items())]
    if not rows:  # serving, but no request handled yet
        rows = [[True, None, 0, ""] + shared]
    return _view("user_server_stats", columns, rows)


def _user_parallel_stats(engine: Any) -> TableDef:
    """One-row view over the engine's parallel-execution counters.

    ``morsels_dispatched`` / ``exchange_wait_seconds`` cover the morsel
    scan exchange; the ``prefetch_*`` columns cover async ODCI
    prefetch, with ``prefetch_depth_histogram`` the queue-occupancy
    distribution (``occupancy:count`` pairs) observed as each
    prefetched batch arrived — a right-leaning histogram means the
    producer genuinely ran ahead.  ``worker_utilization`` is busy time
    over pool wall-clock capacity since the first parallel activity.
    """
    snap = engine.parallel_stats.snapshot()
    rows = [[snap["parallel_queries"], snap["morsels_dispatched"],
             snap["morsel_rows"], snap["worker_busy_seconds"],
             engine.parallel_stats.utilization(),
             snap["exchange_wait_seconds"], snap["prefetch_scans"],
             snap["prefetch_batches"], snap["prefetch_abandoned"],
             _histogram_text(snap["depth_histogram"]),
             snap["pool_size"]]]
    return _view("user_parallel_stats",
                 [("parallel_queries", INTEGER),
                  ("morsels_dispatched", INTEGER),
                  ("morsel_rows", INTEGER),
                  ("worker_busy_seconds", NUMBER),
                  ("worker_utilization", NUMBER),
                  ("exchange_wait_seconds", NUMBER),
                  ("prefetch_scans", INTEGER),
                  ("prefetch_batches", INTEGER),
                  ("prefetch_abandoned", INTEGER),
                  ("prefetch_depth_histogram", VARCHAR2),
                  ("pool_size", INTEGER)],
                 rows)


def _user_executor_stats(engine: Any) -> TableDef:
    """One-row view over the engine's vectorized-executor counters.

    ``vector_batches`` / ``vector_rows`` count batches and selected
    rows produced by generated vector kernels; ``fallback_batches`` are
    batches re-run on the compiled-closure path after a kernel raised
    mid-batch, and ``factory_declines`` are whole statements that fell
    back because the kernel factory declined the bind values.
    ``materialize_boundaries`` counts points where columnar batches
    were turned back into row tuples for a row-at-a-time consumer.
    ``batch_size_histogram`` is ``bucket:count`` pairs over the
    selected-row counts of vectorized batches.
    """
    snap = engine.executor_stats.snapshot()
    rows = [[snap["vector_batches"], snap["vector_rows"],
             snap["fallback_batches"], snap["factory_declines"],
             snap["materialize_boundaries"],
             _histogram_text(snap["batch_size_histogram"])]]
    return _view("user_executor_stats",
                 [("vector_batches", INTEGER),
                  ("vector_rows", INTEGER),
                  ("fallback_batches", INTEGER),
                  ("factory_declines", INTEGER),
                  ("materialize_boundaries", INTEGER),
                  ("batch_size_histogram", VARCHAR2)],
                 rows)


def _user_indextypes(catalog: Catalog) -> TableDef:
    rows = []
    for indextype in sorted(catalog.indextypes.values(),
                            key=lambda i: i.key):
        rows.append([indextype.name,
                     ",".join(indextype.supported_operator_names()),
                     indextype.implementation_name,
                     indextype.stats_name])
    return _view("user_indextypes",
                 [("indextype_name", VARCHAR2), ("operators", VARCHAR2),
                  ("implementation", VARCHAR2), ("statistics", VARCHAR2)],
                 rows)
