"""Expression compilation: lowering bound ASTs into Python closures.

The interpreter (:meth:`~repro.sql.expressions.Evaluator.evaluate`)
re-dispatches on node types for every row; on a filter-heavy full scan
that dispatch dominates the warm path now that the plan cache has
removed parse/plan cost.  This module lowers a bound expression tree
*once, at plan time* into a plain closure ``fn(ctx, binds) -> value``
that the executor applies across row batches in a tight loop.

Design rules:

* **Bind-slot hoisting** — compiled closures take the execution's bind
  values as an argument instead of freezing them in, so one compiled
  form attached to a shared cached plan serves every execution and
  session regardless of bind values.
* **Three-valued logic preserved** — NULL handling routes through the
  same :func:`sql_and`/:func:`sql_or`/:func:`sql_not`/:func:`sql_truth`
  helpers the interpreter uses, including AND/OR short-circuits.
* **Constant folding** — a subtree whose leaves are all literals is
  evaluated once at compile time and replaced by a constant closure.
  A fold that raises is abandoned (the per-row closure is kept) so
  errors like division by zero still surface at execution time, and
  never against an empty input.
* **Interpreter fallback** — node types the compiler does not handle
  raise :class:`CannotCompile` internally and the public entry points
  return ``None``; the executor then evaluates that whole expression
  through the interpreter.  :class:`~repro.sql.expressions.OperatorCall`
  is deliberately unsupported: functional evaluation of a user-defined
  operator resolves bindings against the live catalog, feeds ancillary
  aux values, and must keep routing through the interpreter (and, for
  index scans, the :class:`~repro.core.dispatch.CallbackDispatcher`).

Thread safety: compiled closures are pure functions of ``(ctx, binds)``.
They capture only immutable compile-time state — folded constants,
pre-resolved SQL functions, pre-built LIKE regexes — and never mutate
the row context, so the artifacts attached to one cached plan may be
used by any number of sessions concurrently.  Plan-cache invalidation
(any catalog version bump, including function re-registration) retires
plans whose pre-resolved functions could have gone stale.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ExecutionError, TypeMismatchError
from repro.sql import ast_nodes as ast
from repro.sql.expressions import (
    AggregateCall, Binder, RowContext, Scope, aggregate_key)
from repro.types.objects import ObjectValue
from repro.types.values import (
    NULL, _like_regex, is_null, sql_and, sql_compare, sql_eq, sql_like,
    sql_not, sql_or, sql_truth)

__all__ = ["CannotCompile", "ExprCompiler", "compile_plan",
           "compile_vector_kernel", "compile_vector_projection"]

#: a compiled expression: (row context, bind values) -> SQL value
CompiledFn = Callable[[RowContext, Dict[str, Any]], Any]


class CannotCompile(Exception):
    """Internal signal: the expression contains an unsupported node."""


_EMPTY_CTX = RowContext()

_RELOPS = {
    "=": lambda cmp: cmp == 0,
    "!=": lambda cmp: cmp != 0,
    "<": lambda cmp: cmp < 0,
    "<=": lambda cmp: cmp <= 0,
    ">": lambda cmp: cmp > 0,
    ">=": lambda cmp: cmp >= 0,
}

#: nodes whose evaluated value is already TRUE/FALSE/NULL, so the
#: truth() wrapper would be an identity call
_BOOLEAN_NODES = (ast.BoolOp, ast.NotOp, ast.IsNullOp, ast.LikeOp,
                  ast.BetweenOp, ast.InListOp)


class ExprCompiler:
    """Compiles bound expressions against a catalog snapshot.

    The two public entry points return ``None`` (instead of raising)
    when the tree contains a node the compiler does not support, which
    is the executor's cue to fall back to the interpreter for that
    expression.
    """

    def __init__(self, catalog: Any):
        self.catalog = catalog
        self._finder = Binder(catalog, Scope([]))

    # -- public ----------------------------------------------------------

    def compile_value(self, expr: ast.Expr) -> Optional[CompiledFn]:
        """Compile ``expr`` for value position (select item, sort key)."""
        try:
            fn, __ = self._value(expr)
        except CannotCompile:
            return None
        return fn

    def compile_predicate(self, expr: ast.Expr) -> Optional[CompiledFn]:
        """Compile ``expr`` for boolean position (returns TRUE/FALSE/NULL)."""
        try:
            fn, __ = self._truth(expr)
        except CannotCompile:
            return None
        return fn

    # -- folding ---------------------------------------------------------

    def _fold(self, fn: CompiledFn, const: bool):
        """Evaluate a constant subtree once; keep the closure on error."""
        if not const:
            return fn, False
        try:
            value = fn(_EMPTY_CTX, {})
        except Exception:
            # e.g. SELECT 1/0: the interpreter raises per execution, at
            # execute time; keep that behaviour instead of failing the
            # plan (or raising for a query over an empty table)
            return fn, False
        return (lambda ctx, binds: value), True

    # -- truth position --------------------------------------------------

    def _truth(self, expr: ast.Expr):
        fn, const = self._value(expr)
        if isinstance(expr, _BOOLEAN_NODES):
            return fn, const
        if isinstance(expr, ast.BinaryOp) and expr.op in _RELOPS:
            return fn, const
        return self._fold(lambda ctx, binds: sql_truth(fn(ctx, binds)),
                          const)

    # -- value position --------------------------------------------------

    def _value(self, expr: ast.Expr):
        """Return ``(closure, is_constant)`` or raise CannotCompile."""
        if isinstance(expr, ast.Literal):
            value = expr.value
            return (lambda ctx, binds: value), True
        if isinstance(expr, ast.BindParam):
            return self._bind_param(expr), False
        if isinstance(expr, ast.ColumnRef):
            return self._column(expr), False
        if isinstance(expr, ast.FuncCall):
            return self._func_call(expr), False
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.BoolOp):
            return self._bool(expr)
        if isinstance(expr, ast.NotOp):
            tf, const = self._truth(expr.operand)
            return self._fold(
                lambda ctx, binds: sql_not(tf(ctx, binds)), const)
        if isinstance(expr, ast.UnaryMinus):
            vf, const = self._value(expr.operand)

            def neg(ctx, binds):
                value = vf(ctx, binds)
                if is_null(value):
                    return NULL
                return -value
            return self._fold(neg, const)
        if isinstance(expr, ast.IsNullOp):
            vf, const = self._value(expr.operand)
            if expr.negated:
                return self._fold(
                    lambda ctx, binds: not is_null(vf(ctx, binds)), const)
            return self._fold(
                lambda ctx, binds: is_null(vf(ctx, binds)), const)
        if isinstance(expr, ast.LikeOp):
            return self._like(expr)
        if isinstance(expr, ast.BetweenOp):
            return self._between(expr)
        if isinstance(expr, ast.InListOp):
            return self._in_list(expr)
        if isinstance(expr, AggregateCall):
            return self._aggregate(expr), False
        # OperatorCall (functional evaluation via the catalog + aux
        # side channel), Star, subqueries: interpreter territory
        raise CannotCompile(type(expr).__name__)

    # -- leaves ----------------------------------------------------------

    @staticmethod
    def _bind_param(expr: ast.BindParam) -> CompiledFn:
        key = expr.name.lower()
        name = expr.name

        def fn(ctx, binds):
            try:
                return binds[key]
            except KeyError:
                raise ExecutionError(
                    f"no value supplied for bind :{name}") from None
        return fn

    @staticmethod
    def _column(ref: ast.ColumnRef) -> CompiledFn:
        if not ref.bound:
            raise CannotCompile("unbound column reference")
        key = (ref.alias, ref.column)
        if not ref.attr_path:
            def fn(ctx, binds):
                try:
                    return ctx.values[key]
                except KeyError:
                    raise ExecutionError(
                        f"no value for {ref.alias}.{ref.column} "
                        "in row context") from None
            return fn
        attr_path = tuple(ref.attr_path)

        def fn_attrs(ctx, binds):
            try:
                value = ctx.values[key]
            except KeyError:
                raise ExecutionError(
                    f"no value for {ref.alias}.{ref.column} "
                    "in row context") from None
            for attr in attr_path:
                if is_null(value):
                    return NULL
                if isinstance(value, ObjectValue):
                    value = value.get(attr)
                else:
                    raise TypeMismatchError(
                        f"{ref.alias}.{ref.column}: cannot take attribute "
                        f"{attr!r} of non-object value {value!r}")
            return value
        return fn_attrs

    def _func_call(self, call: ast.FuncCall) -> CompiledFn:
        function = self._finder.find_function(call.name)
        if function is None:
            raise CannotCompile(call.name)  # interpreter raises CatalogError
        fn = function.fn
        arg_fns = [self._value(a)[0] for a in call.args]
        # registered functions may be non-deterministic: never folded
        if len(arg_fns) == 1:
            a0 = arg_fns[0]
            return lambda ctx, binds: fn(a0(ctx, binds))
        if len(arg_fns) == 2:
            a0, a1 = arg_fns
            return lambda ctx, binds: fn(a0(ctx, binds), a1(ctx, binds))
        return lambda ctx, binds: fn(*[a(ctx, binds) for a in arg_fns])

    # -- composites ------------------------------------------------------

    def _binary(self, expr: ast.BinaryOp):
        lf, lc = self._value(expr.left)
        rf, rc = self._value(expr.right)
        const = lc and rc
        op = expr.op
        rel = _RELOPS.get(op)
        if rel is not None:
            def relop(ctx, binds):
                cmp = sql_compare(lf(ctx, binds), rf(ctx, binds))
                if cmp is NULL:
                    return NULL
                return rel(cmp)
            return self._fold(relop, const)
        if op == "||":
            def concat(ctx, binds):
                left = lf(ctx, binds)
                right = rf(ctx, binds)
                if is_null(left) or is_null(right):
                    return NULL
                return f"{left}{right}"
            return self._fold(concat, const)
        if op == "/":
            def divide(ctx, binds):
                left = lf(ctx, binds)
                right = rf(ctx, binds)
                if is_null(left) or is_null(right):
                    return NULL
                if right == 0:
                    raise ExecutionError("division by zero")
                return left / right
            return self._fold(divide, const)
        arith = {"+": lambda a, b: a + b,
                 "-": lambda a, b: a - b,
                 "*": lambda a, b: a * b}.get(op)
        if arith is None:
            raise CannotCompile(f"binary operator {op!r}")

        def fn(ctx, binds):
            left = lf(ctx, binds)
            right = rf(ctx, binds)
            if is_null(left) or is_null(right):
                return NULL
            return arith(left, right)
        return self._fold(fn, const)

    def _bool(self, expr: ast.BoolOp):
        lt, lc = self._truth(expr.left)
        rt, rc = self._truth(expr.right)
        if expr.op == "AND":
            def conj(ctx, binds):
                left = lt(ctx, binds)
                if left is False:
                    return False
                return sql_and(left, rt(ctx, binds))
            return self._fold(conj, lc and rc)

        def disj(ctx, binds):
            left = lt(ctx, binds)
            if left is True:
                return True
            return sql_or(left, rt(ctx, binds))
        return self._fold(disj, lc and rc)

    def _like(self, expr: ast.LikeOp):
        vf, vc = self._value(expr.operand)
        negated = expr.negated
        if isinstance(expr.pattern, ast.Literal) \
                and isinstance(expr.pattern.value, str):
            # constant pattern: build the regex once at compile time
            regex = _like_regex(expr.pattern.value)

            def fast(ctx, binds):
                value = vf(ctx, binds)
                if is_null(value):
                    return NULL
                if not isinstance(value, str):
                    raise TypeMismatchError("LIKE requires string operands")
                result = regex.fullmatch(value) is not None
                return not result if negated else result
            return self._fold(fast, vc)
        pf, pc = self._value(expr.pattern)

        def fn(ctx, binds):
            result = sql_like(vf(ctx, binds), pf(ctx, binds))
            return sql_not(result) if negated else result
        return self._fold(fn, vc and pc)

    def _between(self, expr: ast.BetweenOp):
        vf, vc = self._value(expr.operand)
        lf, lc = self._value(expr.low)
        hf, hc = self._value(expr.high)
        negated = expr.negated

        def fn(ctx, binds):
            value = vf(ctx, binds)
            low = lf(ctx, binds)
            high = hf(ctx, binds)
            cmp_low = sql_compare(value, low)
            ge_low = NULL if cmp_low is NULL else cmp_low >= 0
            cmp_high = sql_compare(value, high)
            le_high = NULL if cmp_high is NULL else cmp_high <= 0
            result = sql_and(ge_low, le_high)
            return sql_not(result) if negated else result
        return self._fold(fn, vc and lc and hc)

    def _in_list(self, expr: ast.InListOp):
        vf, vc = self._value(expr.operand)
        compiled = [self._value(item) for item in expr.items]
        item_fns = [fn for fn, __ in compiled]
        const = vc and all(c for __, c in compiled)
        negated = expr.negated

        def fn(ctx, binds):
            value = vf(ctx, binds)
            result: Any = False
            for item in item_fns:
                result = sql_or(result, sql_eq(value, item(ctx, binds)))
            return sql_not(result) if negated else result
        return self._fold(fn, const)

    @staticmethod
    def _aggregate(call: AggregateCall) -> CompiledFn:
        key = aggregate_key(call)
        func = call.func

        def fn(ctx, binds):
            try:
                return ctx.agg[key]
            except KeyError:
                raise ExecutionError(
                    f"aggregate {func} not allowed in this context") from None
        return fn


# ---------------------------------------------------------------------------
# Vector kernels (columnar batches)
# ---------------------------------------------------------------------------
#
# PR 9's row kernels eval-compile a predicate into inline bytecode over
# one raw row; the vector kernels below push the *loop* into the
# generated code too, so a whole ColumnBatch is filtered with one Python
# call — a list comprehension over ``range(n)`` producing the selection
# vector.  The projection variant fuses filter output into gathering:
# one comprehension walks the selection vector and builds the output
# tuples directly, so selected rows are never materialized as
# intermediate row tuples.
#
# The codegen is the row-kernel codegen with the column leaf re-pointed
# at column vectors (``v3[i]`` instead of ``r[3]``); the 3VL dual
# emitters, bind-guard factory contract, and fallback rules are
# inherited unchanged.  The import of the codegen class is deferred to
# call time: sql.parallel imports this module at load, we import it only
# when a plan is annotated.

_VECTOR_CODEGEN_CLS: Optional[type] = None


def _vector_codegen_cls() -> type:
    global _VECTOR_CODEGEN_CLS
    if _VECTOR_CODEGEN_CLS is None:
        from repro.sql.parallel import _RowKernelCodegen, _Val

        class _VectorKernelCodegen(_RowKernelCodegen):
            """Row-kernel codegen over column vectors ``v<index>[i]``."""

            def __init__(self, binding: str, table: Any):
                super().__init__(binding, table)
                self.used_columns: set = set()

            def _column_expr(self, index: int):
                self.used_columns.add(index)
                return _Val(f"v{index}[i]", notnull=False, maybe_nullv=True)

        _VECTOR_CODEGEN_CLS = _VectorKernelCodegen
    return _VECTOR_CODEGEN_CLS


def _exec_factory(gen: Any, lines: List[str], filename: str) -> Callable:
    from repro.sql.parallel import _emit_bind_guards, _kernel_namespace
    src = [lines[0]]
    src.extend(_emit_bind_guards(gen))
    src.extend(lines[1:])
    namespace = _kernel_namespace(gen)
    exec(compile("\n".join(src), filename, "exec"),  # noqa: S102
         namespace)
    return namespace["_factory"]


def compile_vector_kernel(predicate: Optional[ast.Expr], binding: str,
                          table: Any) -> Optional[Callable]:
    """Generate a vector-kernel factory for a scan filter, or None.

    Returns ``factory(binds) -> kernel | None`` where
    ``kernel(cols, rowids, n) -> sel`` filters one columnar batch and
    returns its selection vector (ascending row indices that passed).
    Factory-level bind inspection and the per-expression decline rules
    are identical to :func:`~repro.sql.parallel.compile_row_kernel`.
    """
    if predicate is None:
        return None
    gen = _vector_codegen_cls()(binding, table)
    try:
        body = gen.truth(predicate)
    except CannotCompile:
        return None
    lines = ["def _factory(binds):"]
    lines.append("    def _kernel(cols, rowids, n):")
    for index in sorted(gen.used_columns):
        lines.append(f"        v{index} = cols[{index}]")
    lines.append(f"        return [i for i in range(n) if {body}]")
    lines.append("    return _kernel")
    return _exec_factory(gen, lines, "<vector-kernel>")


def compile_vector_projection(exprs: List[ast.Expr], binding: str,
                              table: Any) -> Optional[Callable]:
    """Generate a fused gather for projection items or sort keys.

    Returns ``factory(binds) -> project | None`` where
    ``project(cols, rowids, sel) -> List[tuple]`` materializes one
    output tuple per selected row, straight from the column vectors.
    Null parity with the closure path: bare column references pass
    stored values through untouched (a stored ``None`` stays ``None``,
    exactly as the row context returns it), while computed items map a
    null result to the ``NULL`` singleton just as the compiled closures
    do.  Any item outside the generated value subset declines.
    """
    if not exprs:
        return None
    gen = _vector_codegen_cls()(binding, table)
    parts: List[str] = []
    try:
        for expr in exprs:
            if isinstance(expr, ast.Literal):
                # hoist the literal itself (NULL included) so the
                # emitted value is the exact object the closure returns
                parts.append(gen._const(expr.value))
                continue
            val = gen.value(expr)
            if isinstance(expr, (ast.ColumnRef, ast.BindParam)):
                parts.append(val.code)  # raw passthrough
            elif val.notnull:
                parts.append(val.code)
            else:
                t = gen._temp()
                parts.append(
                    f"(_NULLV if ({t} := ({val.code})) is None else {t})")
    except CannotCompile:
        return None
    tuple_src = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
    lines = ["def _factory(binds):"]
    lines.append("    def _project(cols, rowids, sel):")
    for index in sorted(gen.used_columns):
        lines.append(f"        v{index} = cols[{index}]")
    lines.append(f"        return [{tuple_src} for i in sel]")
    lines.append("    return _project")
    return _exec_factory(gen, lines, "<vector-project>")


# ---------------------------------------------------------------------------
# Plan-tree compilation
# ---------------------------------------------------------------------------

def compile_plan(plan: Any, catalog: Any) -> int:
    """Attach compiled artifacts to every node of a query plan.

    Walks the plan tree and, for each row expression a node evaluates
    per row (filters, join conditions/keys, sort keys, group keys,
    HAVING, aggregate arguments, projections), stores the compiled
    closure in ``node.compiled`` — ``None`` where the compiler fell
    back.  ``node.exec_mode`` becomes ``"COMPILED"`` when every
    expression on the node compiled, ``"INTERPRETED"`` when any fell
    back, and stays ``None`` for nodes with no row expressions; EXPLAIN
    prints the mode per node.

    Runs once at plan time, so the artifacts ride the shared plan cache
    and every session soft-parsing the statement reuses them.  Returns
    the number of fully compiled nodes.
    """
    from repro.sql import planner as pl  # deferred: planner imports us
    compiler = ExprCompiler(catalog)
    fully_compiled = 0

    def predicate(counts: List[int],
                  expr: Optional[ast.Expr]) -> Optional[CompiledFn]:
        if expr is None:
            return None
        counts[0] += 1
        fn = compiler.compile_predicate(expr)
        if fn is not None:
            counts[1] += 1
        return fn

    def value(counts: List[int], expr: ast.Expr) -> Optional[CompiledFn]:
        counts[0] += 1
        fn = compiler.compile_value(expr)
        if fn is not None:
            counts[1] += 1
        return fn

    def visit(node: Any) -> None:
        nonlocal fully_compiled
        counts = [0, 0]
        slots = node.compiled
        if isinstance(node, (pl.FullScan, pl.BTreeScan, pl.HashScan,
                             pl.BitmapScan, pl.IOTPrefixScan, pl.DomainScan)):
            slots["filter"] = predicate(counts, node.filter)
        elif isinstance(node, pl.FilterNode):
            slots["predicate"] = predicate(counts, node.predicate)
        elif isinstance(node, pl.NestedLoopJoin):
            slots["condition"] = predicate(counts, node.condition)
        elif isinstance(node, pl.IndexedNLJoin):
            slots["condition"] = predicate(counts, node.condition)
            slots["inner_filter"] = predicate(counts, node.inner_filter)
            slots["outer_key"] = value(counts, node.outer_key)
        elif isinstance(node, pl.DomainNLJoin):
            slots["condition"] = predicate(counts, node.condition)
            slots["inner_filter"] = predicate(counts, node.inner_filter)
            args = node.operator_call.args[1:]
            if node.operator_call.label is not None:
                args = args[:-1]
            slots["value_args"] = [value(counts, a) for a in args]
        elif isinstance(node, pl.HashJoin):
            slots["left_keys"] = [value(counts, k) for k in node.left_keys]
            slots["right_keys"] = [value(counts, k) for k in node.right_keys]
            slots["condition"] = predicate(counts, node.condition)
        elif isinstance(node, pl.SortNode):
            slots["keys"] = [value(counts, item.expr)
                             for item in node.order_items]
        elif isinstance(node, pl.GroupByNode):
            slots["group_exprs"] = [value(counts, e)
                                    for e in node.group_exprs]
            slots["having"] = predicate(counts, node.having)
            slots["agg_args"] = {
                aggregate_key(agg): value(counts, agg.arg)
                for agg in node.aggregates if agg.arg is not None}
        elif isinstance(node, pl.ProjectNode):
            slots["items"] = [value(counts, e) for e, __ in node.items]
        if counts[0]:
            if counts[1] == counts[0]:
                node.exec_mode = "COMPILED"
                fully_compiled += 1
            else:
                node.exec_mode = "INTERPRETED"
        for child in node.children():
            visit(child)

    visit(plan.root)
    return fully_compiled
