"""Columnar batches and executor statistics for vectorized execution.

The batched pipeline (PR 4) moved row evaluation from one-row-at-a-time
to page-sized lists of tuples; PR 9 compiled the hot predicates into raw
``exec``-generated row kernels.  This module supplies the third step: a
:class:`ColumnBatch` holds one page worth of rows *transposed* into
per-column Python lists, so a single generated loop (see
``compile_vector_kernel`` in :mod:`repro.sql.compile`) evaluates the
whole batch with the interpreter entered once per batch instead of once
per row.  A *selection vector* — a list of surviving row indices —
replaces intermediate row materialization between filter and projection.

Honesty note (documented in DESIGN.md §15): under CPython the win comes
from amortizing interpreter dispatch and attribute lookups across the
batch, not from SIMD or parallel memory access — the GIL still
serializes everything.  ``array``-typed columns (``array('q')`` /
``array('d')``) are supported as an opt-in memory optimization, but
indexing an ``array`` re-boxes each element, so they are *not* used on
the hot path by default.
"""

from array import array
from threading import Lock
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["ColumnBatch", "ExecutorStats"]


class ColumnBatch:
    """One scan batch, stored column-wise.

    ``columns[c][i]`` is the value of column ``c`` in row ``i``;
    ``rowids[i]`` is that row's :class:`~repro.storage.heap.RowId`.
    ``sel`` is the selection vector: the indices (ascending) of rows
    that survived the filter, or ``None`` meaning *all rows selected*.
    Stored SQL NULLs appear exactly as they do in row tuples (the
    ``NULL`` singleton or Python ``None``) — transposition must not
    normalize them, or repr-based parity with the row path breaks.
    """

    __slots__ = ("rowids", "columns", "n", "sel")

    def __init__(self, rowids: List[Any], columns: List[List[Any]],
                 sel: Optional[List[int]] = None):
        self.rowids = rowids
        self.columns = columns
        self.n = len(rowids)
        self.sel = sel

    @classmethod
    def from_rows(cls, rowids: List[Any],
                  rows: Sequence[Sequence[Any]],
                  width: int) -> "ColumnBatch":
        """Transpose ``rows`` (aligned with ``rowids``) into columns."""
        if rows:
            columns = [list(col) for col in zip(*rows)]
        else:
            columns = [[] for __ in range(width)]
        return cls(rowids, columns)

    # -- row-side views ----------------------------------------------------

    def selected(self) -> List[int]:
        """The selection vector, materialized (all rows when ``sel`` is
        None)."""
        if self.sel is None:
            return list(range(self.n))
        return self.sel

    def selected_count(self) -> int:
        return self.n if self.sel is None else len(self.sel)

    def row(self, i: int) -> List[Any]:
        """Materialize row ``i`` as a list (one value per column)."""
        return [col[i] for col in self.columns]

    def iter_rows(self) -> Iterator[Tuple[Any, List[Any]]]:
        """Yield ``(rowid, row_list)`` for each *selected* row, in row
        order — the materialization boundary back to the tuple
        pipeline."""
        rowids = self.rowids
        columns = self.columns
        if self.sel is None:
            for i in range(self.n):
                yield rowids[i], [col[i] for col in columns]
        else:
            for i in self.sel:
                yield rowids[i], [col[i] for col in columns]

    # -- optional typed columns (opt-in; see module docstring) -------------

    def with_typed_columns(self) -> "ColumnBatch":
        """Return a copy with int-only columns packed into ``array('q')``.

        Only columns where every value is exactly ``int`` qualify —
        ``bool`` is an ``int`` subclass and ``array('q')`` would coerce
        ``True`` to ``1``, breaking value parity; any NULL disqualifies
        the column since arrays cannot hold sentinels.  This trades
        per-element boxing on read for a compact backing store; it is a
        memory optimization, not a speed one, under CPython.
        """
        packed: List[Any] = []
        for col in self.columns:
            if col and all(type(v) is int for v in col):
                packed.append(array("q", col))
            else:
                packed.append(col)
        return ColumnBatch(self.rowids, packed, self.sel)


class ExecutorStats:
    """Engine-wide counters for the vectorized pipeline.

    Exposed through the ``user_executor_stats`` dictionary view.  All
    mutation goes through a latch: executor instances on pool workers
    record into the same object.
    """

    #: batch-size histogram bucket upper bounds (rows per batch)
    BUCKETS = (16, 64, 256, 1024)

    def __init__(self) -> None:
        self._latch = Lock()
        self.vector_batches = 0        # batches filtered by a vector kernel
        self.vector_rows = 0           # rows those batches carried
        self.fallback_batches = 0      # batches re-run on the closure path
        self.factory_declines = 0      # kernel factories that returned None
        self.materialize_boundaries = 0  # columnar -> row-tuple crossings
        self.batch_size_histogram: Dict[str, int] = {}

    def _bucket(self, n: int) -> str:
        for bound in self.BUCKETS:
            if n <= bound:
                return f"<={bound}"
        return f">{self.BUCKETS[-1]}"

    def record_vector_batch(self, n_rows: int) -> None:
        bucket = self._bucket(n_rows)
        with self._latch:
            self.vector_batches += 1
            self.vector_rows += n_rows
            self.batch_size_histogram[bucket] = (
                self.batch_size_histogram.get(bucket, 0) + 1)

    def record_fallback_batch(self) -> None:
        with self._latch:
            self.fallback_batches += 1

    def record_factory_decline(self) -> None:
        with self._latch:
            self.factory_declines += 1

    def record_materialize_boundary(self) -> None:
        with self._latch:
            self.materialize_boundaries += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._latch:
            return {
                "vector_batches": self.vector_batches,
                "vector_rows": self.vector_rows,
                "fallback_batches": self.fallback_batches,
                "factory_declines": self.factory_declines,
                "materialize_boundaries": self.materialize_boundaries,
                "batch_size_histogram": dict(self.batch_size_histogram),
            }
