"""Object and collection types.

The paper motivates extensible indexing with non-scalar columns: object
type columns (spatial geometries, image objects), collection columns
(VARRAY / nested table), and LOBs.  Built-in indexing schemes cannot index
these; domain indexes can.  This module provides the object/collection
value model the cartridges index.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TypeMismatchError
from repro.types.datatypes import DataType
from repro.types.values import NULL, is_null


class ObjectType(DataType):
    """A user-defined object type: a named tuple of typed attributes.

    ``ObjectType("SDO_GEOMETRY", [("gtype", INTEGER), ("points", ANY)])``
    models ``CREATE TYPE SDO_GEOMETRY AS OBJECT (...)``.
    """

    def __init__(self, type_name: str, attributes: Sequence[Tuple[str, DataType]]):
        self.type_name = type_name.upper()
        self.attributes: List[Tuple[str, DataType]] = [
            (name.lower(), dtype) for name, dtype in attributes]
        self._attr_index: Dict[str, int] = {
            name: i for i, (name, _) in enumerate(self.attributes)}
        self.name = self.type_name

    def attribute_type(self, attr: str) -> DataType:
        """Return the declared type of attribute ``attr``."""
        try:
            return self.attributes[self._attr_index[attr.lower()]][1]
        except KeyError:
            raise TypeMismatchError(
                f"type {self.type_name} has no attribute {attr!r}") from None

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        if isinstance(value, ObjectValue):
            if value.object_type.type_name != self.type_name:
                raise TypeMismatchError(
                    f"expected {self.type_name}, got {value.object_type.type_name}")
            return value
        if isinstance(value, dict):
            return self.new(**value)
        raise TypeMismatchError(
            f"expected {self.type_name} object, got {type(value).__name__}")

    def new(self, *args: Any, **kwargs: Any) -> "ObjectValue":
        """Construct an :class:`ObjectValue` of this type (the type's constructor)."""
        values: List[Any] = [NULL] * len(self.attributes)
        if args:
            if len(args) > len(self.attributes):
                raise TypeMismatchError(
                    f"{self.type_name} constructor takes at most "
                    f"{len(self.attributes)} arguments")
            for i, arg in enumerate(args):
                values[i] = self.attributes[i][1].validate(arg)
        for key, arg in kwargs.items():
            idx = self._attr_index.get(key.lower())
            if idx is None:
                raise TypeMismatchError(
                    f"type {self.type_name} has no attribute {key!r}")
            values[idx] = self.attributes[idx][1].validate(arg)
        return ObjectValue(self, values)

    def __repr__(self) -> str:
        return self.type_name


class ObjectValue:
    """An instance of an :class:`ObjectType`; attributes readable as ``obj.attr``."""

    __slots__ = ("object_type", "_values")

    def __init__(self, object_type: ObjectType, values: Sequence[Any]):
        object.__setattr__(self, "object_type", object_type)
        object.__setattr__(self, "_values", list(values))

    def get(self, attr: str) -> Any:
        """Return the value of attribute ``attr`` (case-insensitive)."""
        idx = self.object_type._attr_index.get(attr.lower())
        if idx is None:
            raise TypeMismatchError(
                f"type {self.object_type.type_name} has no attribute {attr!r}")
        return self._values[idx]

    def __getattr__(self, attr: str) -> Any:
        # dunder probes (pickle/copy protocol lookups) and the slots
        # themselves must not fall into get(): on a half-constructed
        # instance that would recurse on self.object_type forever
        if attr.startswith("__") or attr in ObjectValue.__slots__:
            raise AttributeError(attr)
        try:
            return self.get(attr)
        except TypeMismatchError:
            raise AttributeError(attr) from None

    def __reduce__(self):
        # values cross process boundaries (the network protocol pickles
        # bind parameters and fetched rows); reconstruct through the
        # normal constructor so the slots are always populated
        return (ObjectValue, (self.object_type, list(self._values)))

    def as_dict(self) -> Dict[str, Any]:
        """Return the attribute name → value mapping."""
        return {name: v for (name, _), v in
                zip(self.object_type.attributes, self._values)}

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ObjectValue)
                and other.object_type.type_name == self.object_type.type_name
                and other._values == self._values)

    def __hash__(self) -> int:
        return hash((self.object_type.type_name,
                     tuple(repr(v) for v in self._values)))

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"{self.object_type.type_name}({attrs})"


class Varray(DataType):
    """Bounded ordered collection type (``VARRAY(n) OF elem``).

    Values are plain tuples; the paper's example operator
    ``Contains(hobbies, 'Skiing')`` tests element membership.
    """

    def __init__(self, element_type: DataType, limit: Optional[int] = None):
        self.element_type = element_type
        self.limit = limit
        self.name = repr(self)

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        if not isinstance(value, (list, tuple)):
            raise TypeMismatchError(
                f"expected VARRAY, got {type(value).__name__}")
        if self.limit is not None and len(value) > self.limit:
            raise TypeMismatchError(
                f"VARRAY limit {self.limit} exceeded ({len(value)} elements)")
        return tuple(self.element_type.validate(v) for v in value)

    def __repr__(self) -> str:
        limit = "" if self.limit is None else f"({self.limit})"
        return f"VARRAY{limit} OF {self.element_type!r}"


class NestedTable(DataType):
    """Unbounded multiset collection type (``TABLE OF elem``)."""

    def __init__(self, element_type: DataType):
        self.element_type = element_type
        self.name = repr(self)

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        if not isinstance(value, (list, tuple, set, frozenset)):
            raise TypeMismatchError(
                f"expected nested table, got {type(value).__name__}")
        return tuple(self.element_type.validate(v) for v in value)

    def __repr__(self) -> str:
        return f"TABLE OF {self.element_type!r}"


def collection_contains(collection: Iterable[Any], element: Any) -> bool:
    """Membership test shared by the VARRAY/nested-table Contains operator."""
    if is_null(collection):
        return False
    return any(not is_null(item) and item == element for item in collection)


def iter_collection(collection: Any) -> Iterator[Any]:
    """Iterate a collection value, yielding nothing for NULL."""
    if is_null(collection):
        return
    for item in collection:
        yield item
