"""SQL scalar data types.

Each type knows how to validate and coerce Python values, mirroring the
small set of predefined types the paper assumes the server supports
natively (numbers, strings, ...) plus the LOB types the cartridges store
index data in.  Types are singletons for the common unparameterized cases
(:data:`NUMBER`, :data:`INTEGER`, ...) and small value objects when
parameterized (``VARCHAR2(128)``).
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

from repro.errors import TypeMismatchError
from repro.types.values import NULL, is_null


class DataType:
    """Base class for SQL data types.

    Subclasses implement :meth:`validate`, which either returns a value
    coerced to the canonical Python representation for the type or raises
    :class:`TypeMismatchError`.
    """

    #: Upper-cased SQL name of the type family (``VARCHAR2``, ``NUMBER``, ...)
    name: str = "ANY"

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` to this type, or raise :class:`TypeMismatchError`."""
        raise NotImplementedError

    def accepts(self, value: Any) -> bool:
        """Return True when ``value`` can be coerced to this type."""
        if is_null(value):
            return True
        try:
            self.validate(value)
        except TypeMismatchError:
            return False
        return True

    def is_compatible_with(self, other: "DataType") -> bool:
        """Return True when a value of this type may bind to ``other``.

        Used by operator-binding resolution: an argument of this type may
        be passed where ``other`` is declared.
        """
        if isinstance(other, AnyType) or isinstance(self, AnyType):
            return True
        if self.name == other.name:
            return True
        numeric = {"NUMBER", "INTEGER"}
        if self.name in numeric and other.name in numeric:
            return True
        texty = {"VARCHAR2", "CLOB"}
        if self.name in texty and other.name in texty:
            return True
        return False

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataType) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash(repr(self))


class NumberType(DataType):
    """Arbitrary-precision numeric type (``NUMBER``); stored as int or float."""

    name = "NUMBER"

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        if isinstance(value, bool):
            raise TypeMismatchError(f"expected NUMBER, got boolean {value!r}")
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, str):
            try:
                if any(ch in value for ch in ".eE"):
                    return float(value)
                return int(value)
            except ValueError:
                raise TypeMismatchError(f"cannot convert {value!r} to NUMBER") from None
        raise TypeMismatchError(f"expected NUMBER, got {type(value).__name__}")


class IntegerType(NumberType):
    """Integral numeric type (``INTEGER``); floats must be whole numbers."""

    name = "INTEGER"

    def validate(self, value: Any) -> Any:
        value = super().validate(value)
        if is_null(value):
            return NULL
        if isinstance(value, float):
            if not value.is_integer():
                raise TypeMismatchError(f"{value!r} is not an INTEGER")
            return int(value)
        return int(value)


class VarcharType(DataType):
    """Bounded character string (``VARCHAR2(n)``)."""

    name = "VARCHAR2"

    def __init__(self, length: Optional[int] = None):
        self.length = length

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        if not isinstance(value, str):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                value = repr(value)
            else:
                raise TypeMismatchError(
                    f"expected VARCHAR2, got {type(value).__name__}")
        if self.length is not None and len(value) > self.length:
            raise TypeMismatchError(
                f"value of length {len(value)} exceeds VARCHAR2({self.length})")
        return value

    def __repr__(self) -> str:
        if self.length is None:
            return "VARCHAR2"
        return f"VARCHAR2({self.length})"


class BooleanType(DataType):
    """Boolean type; SQL TRUE/FALSE plus NULL."""

    name = "BOOLEAN"

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
        raise TypeMismatchError(f"expected BOOLEAN, got {value!r}")


class DateType(DataType):
    """Date type; accepts ``datetime.date``/``datetime.datetime`` or ISO strings."""

    name = "DATE"

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            try:
                return datetime.datetime.fromisoformat(value)
            except ValueError:
                raise TypeMismatchError(f"cannot parse {value!r} as DATE") from None
        raise TypeMismatchError(f"expected DATE, got {type(value).__name__}")


class ClobType(DataType):
    """Character large object; values are strings or LOB locators."""

    name = "CLOB"

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        if isinstance(value, str):
            return value
        if hasattr(value, "read") and hasattr(value, "lob_id"):
            return value
        raise TypeMismatchError(f"expected CLOB, got {type(value).__name__}")


class BlobType(DataType):
    """Binary large object; values are bytes or LOB locators."""

    name = "BLOB"

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        if isinstance(value, (bytes, bytearray)):
            return bytes(value)
        if hasattr(value, "read") and hasattr(value, "lob_id"):
            return value
        raise TypeMismatchError(f"expected BLOB, got {type(value).__name__}")


class RowIdType(DataType):
    """Physical row identifier type (``ROWID``)."""

    name = "ROWID"
    _rowid_cls = None  # resolved lazily to avoid an import cycle with storage

    def validate(self, value: Any) -> Any:
        if is_null(value):
            return NULL
        cls = RowIdType._rowid_cls
        if cls is None:
            from repro.storage.heap import RowId
            cls = RowIdType._rowid_cls = RowId
        if isinstance(value, cls):
            return value
        raise TypeMismatchError(f"expected ROWID, got {type(value).__name__}")


class AnyType(DataType):
    """Wildcard type used for operator bindings over object/collection types."""

    name = "ANY"

    def validate(self, value: Any) -> Any:
        return value


#: Shared singleton instances for the unparameterized types.
NUMBER = NumberType()
INTEGER = IntegerType()
VARCHAR2 = VarcharType()
BOOLEAN = BooleanType()
DATE = DateType()
CLOB = ClobType()
BLOB = BlobType()
ROWID = RowIdType()
ANY = AnyType()

_BY_NAME = {
    "NUMBER": NUMBER,
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "SMALLINT": INTEGER,
    "VARCHAR": VARCHAR2,
    "VARCHAR2": VARCHAR2,
    "CHAR": VARCHAR2,
    "BOOLEAN": BOOLEAN,
    "DATE": DATE,
    "CLOB": CLOB,
    "BLOB": BLOB,
    "ROWID": ROWID,
    "ANY": ANY,
    "ANYDATA": ANY,
}


def type_from_name(name: str, length: Optional[int] = None) -> DataType:
    """Resolve a SQL type name (optionally parameterized) to a :class:`DataType`.

    ``type_from_name("VARCHAR2", 128)`` returns a bounded string type;
    unknown names raise :class:`TypeMismatchError`.
    """
    key = name.upper()
    if key in ("VARCHAR", "VARCHAR2", "CHAR") and length is not None:
        return VarcharType(length)
    if key not in _BY_NAME:
        raise TypeMismatchError(f"unknown data type {name!r}")
    if length is not None and key not in ("VARCHAR", "VARCHAR2", "CHAR",
                                          "NUMBER", "INTEGER", "INT"):
        raise TypeMismatchError(f"type {name} does not take a length")
    return _BY_NAME[key]
