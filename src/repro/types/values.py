"""SQL value semantics: NULL, three-valued logic, comparison, and LIKE.

SQL's NULL is not Python's ``None`` in one important way: comparisons with
NULL yield *unknown*, and boolean connectives follow Kleene three-valued
logic.  The executor uses the ``sql_*`` helpers here rather than raw
Python operators so these semantics hold everywhere (WHERE filtering,
join conditions, index-key comparison).
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.errors import TypeMismatchError


class Null:
    """Singleton marker for the SQL NULL value.

    NULL is falsy, compares unknown to everything (including itself), and
    prints as ``NULL``.
    """

    _instance: Optional["Null"] = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (Null, ())


#: The SQL NULL singleton.
NULL = Null()

#: Three-valued truth: True, False, or NULL (unknown).
TriBool = Any


def is_null(value: Any) -> bool:
    """True when ``value`` is the SQL NULL (or Python None at the boundary)."""
    return value is NULL or value is None


def _comparable(left: Any, right: Any) -> None:
    numeric = (int, float)
    if isinstance(left, bool) or isinstance(right, bool):
        if type(left) is not type(right):
            raise TypeMismatchError(
                f"cannot compare {type(left).__name__} with {type(right).__name__}")
        return
    if isinstance(left, numeric) and isinstance(right, numeric):
        return
    if type(left) is type(right):
        return
    raise TypeMismatchError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}")


def sql_compare(left: Any, right: Any) -> TriBool:
    """Return -1/0/+1 ordering of two SQL values, or NULL when either is NULL."""
    if is_null(left) or is_null(right):
        return NULL
    _comparable(left, right)
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def sql_eq(left: Any, right: Any) -> TriBool:
    """SQL equality: NULL when either side is NULL, else boolean."""
    cmp = sql_compare(left, right)
    if is_null(cmp):
        return NULL
    return cmp == 0


def sql_and(left: TriBool, right: TriBool) -> TriBool:
    """Kleene AND: false dominates, unknown otherwise propagates."""
    if left is False or right is False:
        return False
    if is_null(left) or is_null(right):
        return NULL
    return bool(left) and bool(right)


def sql_or(left: TriBool, right: TriBool) -> TriBool:
    """Kleene OR: true dominates, unknown otherwise propagates."""
    if left is True or right is True:
        return True
    if is_null(left) or is_null(right):
        return NULL
    return bool(left) or bool(right)


def sql_not(value: TriBool) -> TriBool:
    """Kleene NOT: unknown stays unknown."""
    if is_null(value):
        return NULL
    return not value


def sql_truth(value: Any) -> TriBool:
    """Predicate truth of a SQL value (TRUE/FALSE/NULL).

    A number in boolean position is true when non-zero — the paper's
    relaxed ``Contains(...)`` notation for ``Contains(...) = 1``.  The
    single definition is shared by the interpreter
    (:meth:`~repro.sql.expressions.Evaluator.truth`) and the expression
    compiler (:mod:`repro.sql.compile`) so both paths agree.
    """
    if is_null(value):
        return NULL
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def sql_like(value: Any, pattern: Any) -> TriBool:
    """SQL LIKE with ``%`` (any run) and ``_`` (single char) wildcards."""
    if is_null(value) or is_null(pattern):
        return NULL
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise TypeMismatchError("LIKE requires string operands")
    regex = _like_regex(pattern)
    return regex.fullmatch(value) is not None


def _like_regex(pattern: str) -> "re.Pattern[str]":
    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts), re.DOTALL)
